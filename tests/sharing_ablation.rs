//! The block-sharing ablation must be output-transparent: eager-copy forks
//! (contiguous-system behaviour) produce exactly the same tokens as
//! copy-on-write sharing, while allocating more blocks and issuing more
//! copies.

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn run(sharing: bool) -> (Vec<Vec<Vec<u32>>>, u64, usize) {
    let cache = CacheConfig::new(4, 128, 64).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    e.set_block_sharing(sharing);
    e.add_request(
        "parallel",
        (1..=10).collect(),
        SamplingParams::parallel(3, 6).with_seed(9),
    )
    .unwrap();
    e.add_request_at(
        "beam",
        (20..=33).collect(),
        SamplingParams::beam(3, 6),
        1e-6,
    )
    .unwrap();

    let mut peak_allocated = 0usize;
    let mut outs = Vec::new();
    while e.has_unfinished() {
        outs.extend(e.step().unwrap());
        peak_allocated =
            peak_allocated.max(e.scheduler().block_manager().num_allocated_gpu_blocks());
    }
    outs.sort_by_key(|o| o.request_id.clone());
    let tokens: Vec<Vec<Vec<u32>>> = outs
        .into_iter()
        .map(|o| {
            let mut seqs: Vec<Vec<u32>> = o.outputs.into_iter().map(|c| c.tokens).collect();
            seqs.sort();
            seqs
        })
        .collect();
    let copies = e.executor().cache().num_block_copies;
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 128);
    (tokens, copies, peak_allocated)
}

#[test]
fn eager_fork_is_output_transparent() {
    let (shared_tokens, shared_copies, shared_peak) = run(true);
    let (eager_tokens, eager_copies, eager_peak) = run(false);
    assert_eq!(
        shared_tokens, eager_tokens,
        "sharing must not change tokens"
    );
    assert!(
        eager_copies > shared_copies,
        "eager mode must copy more ({eager_copies} vs {shared_copies})"
    );
    assert!(
        eager_peak > shared_peak,
        "eager mode must allocate more blocks ({eager_peak} vs {shared_peak})"
    );
}

#[test]
fn fork_eager_respects_pool_accounting() {
    use vllm::core::{BlockSpaceManager, Sequence, SequenceGroup};
    let cfg = CacheConfig::new(4, 16, 0)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let mut m = BlockSpaceManager::new(&cfg);
    let seq = Sequence::new(0, (0..10).collect(), 4);
    let group = SequenceGroup::new("r", seq, SamplingParams::greedy(4), 0.0);
    m.allocate(&group).unwrap();
    assert_eq!(m.num_allocated_gpu_blocks(), 3);

    let copies = m.fork_eager(0, 1).unwrap();
    assert_eq!(copies.len(), 3);
    assert_eq!(m.num_allocated_gpu_blocks(), 6);
    // Tables are disjoint.
    let t0 = m.gpu_block_ids(0).unwrap();
    let t1 = m.gpu_block_ids(1).unwrap();
    assert!(t0.iter().all(|b| !t1.contains(b)));
    // Copies map parent block i to child block i.
    for (c, (s, d)) in copies.iter().map(|c| (c.src, c.dst)).enumerate() {
        assert_eq!(s, t0[c]);
        assert_eq!(d, t1[c]);
    }
    m.free(0).unwrap();
    m.free(1).unwrap();
    assert_eq!(m.num_free_gpu_blocks(), 16);
}
