//! Integration tests reproducing the paper's worked examples (Figs. 6–10)
//! on the real numeric engine.

use vllm::core::{CacheConfig, Device, LlmEngine, SamplingParams, SchedulerConfig, SequenceStatus};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn engine(block_size: usize, gpu_blocks: usize) -> LlmEngine<CpuModelExecutor> {
    let cache = CacheConfig::new(block_size, gpu_blocks, gpu_blocks).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    LlmEngine::new(exec, cache, sched)
}

/// Fig. 6: a 7-token prompt maps two logical blocks onto (arbitrary)
/// physical blocks; the 8th token fills the last slot, the 9th allocates a
/// third block.
#[test]
fn fig6_block_table_growth() {
    let mut e = engine(4, 64);
    e.add_request("r", (10..17).collect(), SamplingParams::greedy(8))
        .unwrap();
    // Prompt step: 7 tokens → 2 blocks; the first output token fills slot 8.
    e.step().unwrap();
    {
        let bm = e.scheduler().block_manager();
        let table = bm.block_table(0).unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.iter().all(|b| b.device == Device::Gpu));
    }
    // Decode step 1: token 8 lands in the last slot of block 1 (no growth).
    e.step().unwrap();
    assert_eq!(
        e.scheduler().block_manager().block_table(0).unwrap().len(),
        2
    );
    // Decode step 2: token 9 opens logical block 2 → physical block 3.
    e.step().unwrap();
    assert_eq!(
        e.scheduler().block_manager().block_table(0).unwrap().len(),
        3
    );
}

/// Fig. 7: two concurrent requests hold disjoint physical blocks from one
/// pool; logical adjacency does not imply physical adjacency.
#[test]
fn fig7_two_requests_disjoint_blocks() {
    let mut e = engine(4, 64);
    e.add_request("a", (0..7).collect(), SamplingParams::greedy(4))
        .unwrap();
    e.add_request("b", (20..25).collect(), SamplingParams::greedy(4))
        .unwrap();
    e.step().unwrap();
    let bm = e.scheduler().block_manager();
    let ta = bm.gpu_block_ids(0).unwrap();
    let tb = bm.gpu_block_ids(1).unwrap();
    for x in &ta {
        assert!(!tb.contains(x), "requests must not share blocks");
    }
    assert_eq!(bm.num_allocated_gpu_blocks(), ta.len() + tb.len());
}

/// Fig. 8: parallel sampling shares the prompt blocks with reference count
/// 2 and copy-on-write splits only the last (partial) block.
#[test]
fn fig8_parallel_sampling_copy_on_write() {
    let mut e = engine(4, 64);
    // 7-token prompt: blocks 0 (full) and 1 (3/4 filled).
    e.add_request("r", (0..7).collect(), SamplingParams::parallel(2, 6))
        .unwrap();
    e.step().unwrap(); // Prefill + fork; each sample appended one token.
    {
        let bm = e.scheduler().block_manager();
        // Both sequences map the same two physical blocks.
        assert_eq!(bm.block_table(0).unwrap(), bm.block_table(1).unwrap());
        assert_eq!(bm.num_allocated_gpu_blocks(), 2);
    }
    // The next decode step writes into the shared partial block → CoW.
    e.step().unwrap();
    let bm = e.scheduler().block_manager();
    let t0 = bm.block_table(0).unwrap();
    let t1 = bm.block_table(1).unwrap();
    assert_eq!(t0[0], t1[0], "full prompt block stays shared");
    assert_ne!(t0[1], t1[1], "partial block split by copy-on-write");
    assert_eq!(bm.num_cow_copies(), 1);
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs[0].outputs.len(), 2);
}

/// Fig. 9: beam search frees dropped candidates' blocks and new candidates
/// fork from the surviving ones; everything is reclaimed at the end.
#[test]
fn fig9_beam_search_block_lifecycle() {
    let mut e = engine(4, 128);
    e.add_request("r", (0..16).collect(), SamplingParams::beam(4, 12))
        .unwrap();
    let mut saw_drop = false;
    let mut peak_sharing = 0.0f64;
    while e.has_unfinished() {
        e.step().unwrap();
        peak_sharing = peak_sharing.max(e.scheduler().block_manager().sharing_savings());
        if let Some(g) = e.scheduler().group("r") {
            saw_drop |= g
                .seqs()
                .iter()
                .any(|s| s.status == SequenceStatus::FinishedDropped);
        }
    }
    assert!(peak_sharing > 0.3, "beam candidates must share blocks");
    assert!(saw_drop, "beam search must drop candidates");
    assert_eq!(
        e.scheduler().block_manager().num_free_gpu_blocks(),
        128,
        "all blocks reclaimed"
    );
}

/// Fig. 10: two nested system prompts; requests match the longest
/// registered prefix.
#[test]
fn fig10_nested_shared_prefixes() {
    let mut e = engine(4, 128);
    let short: Vec<u32> = (0..8).collect();
    let mut long = short.clone();
    long.extend(50..62);
    e.register_prefix(short.clone()).unwrap();
    e.register_prefix(long.clone()).unwrap();

    // A prompt extending the long prefix matches it.
    let mut p_long = long.clone();
    p_long.extend([100, 101, 102]);
    e.add_request("long", p_long, SamplingParams::greedy(3))
        .unwrap();
    // A prompt extending only the short prefix matches the short one.
    let mut p_short = short.clone();
    p_short.extend([110, 111]);
    e.add_request("short", p_short, SamplingParams::greedy(3))
        .unwrap();
    e.step().unwrap();
    let g_long = e.scheduler().group("long").unwrap();
    let g_short = e.scheduler().group("short").unwrap();
    assert_eq!(g_long.cached_prefix_len, long.len());
    assert_eq!(g_short.cached_prefix_len, short.len());
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs.len(), 2);
}

/// §4.5: the number of blocks in the CPU swap pool never exceeds the GPU
/// pool's (swap space bounded by the KV budget).
#[test]
fn swap_space_bound_invariant() {
    use vllm::core::config::PreemptionMode;
    let cache = CacheConfig::new(4, 8, 8).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512)
        .unwrap()
        .with_preemption_mode(PreemptionMode::Swap);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    for i in 0..4 {
        e.add_request_at(
            format!("r{i}"),
            (0..8).map(|t| t + i * 10).collect(),
            SamplingParams::greedy(10),
            i as f64 * 1e-6,
        )
        .unwrap();
    }
    while e.has_unfinished() {
        e.step().unwrap();
        let bm = e.scheduler().block_manager();
        let cpu_used = 8 - bm.num_free_cpu_blocks();
        assert!(cpu_used <= 8, "swap usage bounded by the GPU pool size");
    }
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 8);
    assert_eq!(e.scheduler().block_manager().num_free_cpu_blocks(), 8);
}
