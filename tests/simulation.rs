//! End-to-end simulation invariants: the headline claims of the paper must
//! hold as *orderings* in the simulator, and the driver must conserve
//! requests across all systems.

use vllm::baselines::SimRequest;
use vllm::core::config::PreemptionMode;
use vllm::sim::{run_trace, trace_to_requests, CostModel, ServerConfig, VllmSimSystem};
use vllm::workloads::{synthesize_chat_trace, Dataset, PrefixKind, Trace};

fn server() -> ServerConfig {
    // A shrunk OPT-13B server so tests run in seconds.
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.gpu.mem_bytes_per_gpu = 30e9;
    cfg
}

fn latency_for(kind: vllm_bench::SystemKind, reqs: &[SimRequest], server: ServerConfig) -> f64 {
    let cost = CostModel::contiguous(server);
    let mut system = kind.build(server, 16);
    let report = run_trace(system.as_mut(), reqs, &cost, 0.0);
    assert_eq!(
        report.num_finished,
        reqs.len(),
        "{}: all requests must finish",
        report.system
    );
    report.mean_normalized_latency
}

#[test]
fn fig12_ordering_holds_under_load() {
    // Needs enough KV memory that Orca(Max) and FT batch more than one
    // request (otherwise they degenerate to the same system).
    let mut server = server();
    server.gpu.mem_bytes_per_gpu = 34e9;
    let trace = Trace::synthesize(&Dataset::sharegpt(), 0.9, 180, 3);
    let reqs = trace_to_requests(&trace, 1, false);
    let vllm = latency_for(vllm_bench::SystemKind::Vllm, &reqs, server);
    let oracle = latency_for(vllm_bench::SystemKind::OrcaOracle, &reqs, server);
    let pow2 = latency_for(vllm_bench::SystemKind::OrcaPow2, &reqs, server);
    let max = latency_for(vllm_bench::SystemKind::OrcaMax, &reqs, server);
    let ft = latency_for(vllm_bench::SystemKind::FasterTransformer, &reqs, server);
    assert!(vllm < oracle, "vLLM {vllm} !< Oracle {oracle}");
    assert!(oracle < pow2 * 1.02, "Oracle {oracle} !< Pow2 {pow2}");
    assert!(pow2 < max * 1.02, "Pow2 {pow2} !< Max {max}");
    assert!(max < ft, "Max {max} !< FT {ft}");
}

#[test]
fn beam_sharing_grows_with_width() {
    let server = server();
    let cost = CostModel::contiguous(server);
    let mut savings = Vec::new();
    for width in [2usize, 4, 6] {
        let trace = Trace::synthesize(&Dataset::alpaca(), 3.0, 90, 9);
        let reqs = trace_to_requests(&trace, width, true);
        let mut sys = VllmSimSystem::new(server, 16, PreemptionMode::Swap);
        let report = run_trace(&mut sys, &reqs, &cost, 3.0);
        savings.push(report.avg_sharing_savings);
    }
    assert!(savings[0] > 0.2, "beam 2 savings {}", savings[0]);
    assert!(
        savings.windows(2).all(|w| w[0] < w[1]),
        "savings {savings:?}"
    );
}

#[test]
fn prefix_caching_improves_latency() {
    let server = server();
    let cost = CostModel::contiguous(server);
    let prefix = PrefixKind::FiveShot;
    let trace = vllm::workloads::synthesize_translation_trace(prefix, 10.0, 250, 4);
    let reqs = trace_to_requests(&trace.trace, 1, false);

    let run = |cached: bool| {
        let mut sys = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        sys.set_shared_prefix(prefix.tokens(50_000), cached);
        run_trace(&mut sys, &reqs, &cost, 10.0).mean_normalized_latency
    };
    let with_cache = run(true);
    let without = run(false);
    assert!(
        with_cache < without,
        "cached {with_cache} !< uncached {without}"
    );
}

#[test]
fn chatbot_orca_variants_collapse() {
    let server = server();
    let trace = synthesize_chat_trace(0.6, 90, 5);
    let reqs = trace_to_requests(&trace, 1, false);
    let oracle = latency_for(vllm_bench::SystemKind::OrcaOracle, &reqs, server);
    let _pow2 = latency_for(vllm_bench::SystemKind::OrcaPow2, &reqs, server);
    let max = latency_for(vllm_bench::SystemKind::OrcaMax, &reqs, server);
    let vllm = latency_for(vllm_bench::SystemKind::Vllm, &reqs, server);
    // §6.5: the three Orca variants behave (nearly) identically on the
    // chatbot workload; vLLM clearly beats them.
    let spread = (oracle - max).abs() / max.max(1e-9);
    assert!(spread < 0.25, "Orca variants spread {spread}");
    assert!(vllm < oracle * 0.8, "vLLM {vllm} vs Orca {oracle}");
}

#[test]
fn driver_memory_fractions_are_consistent() {
    let server = server();
    let cost = CostModel::contiguous(server);
    let trace = Trace::synthesize(&Dataset::sharegpt(), 0.6, 80, 11);
    let reqs = trace_to_requests(&trace, 1, false);
    for kind in vllm_bench::SystemKind::fig12_set() {
        let mut sys = kind.build(server, 16);
        let r = run_trace(sys.as_mut(), &reqs, &cost, 0.6);
        let total = r.mem.used + r.mem.reserved + r.mem.internal + r.mem.external + r.mem.free;
        assert!(
            (total - 1.0).abs() < 0.05,
            "{}: fractions sum to {total}",
            r.system
        );
        assert!(r.mem.used > 0.0);
    }
}

#[test]
fn recompute_and_swap_both_complete_under_overload() {
    let server = server();
    let cost = CostModel::contiguous(server);
    let trace = Trace::synthesize(&Dataset::sharegpt(), 1.5, 150, 13);
    let reqs = trace_to_requests(&trace, 1, false);
    for mode in [PreemptionMode::Recompute, PreemptionMode::Swap] {
        let mut sys = VllmSimSystem::new(server, 16, mode);
        let r = run_trace(&mut sys, &reqs, &cost, 1.5);
        assert_eq!(r.num_finished, reqs.len(), "{mode:?}");
        assert!(r.preemptions > 0, "{mode:?}: overload must preempt");
        match mode {
            PreemptionMode::Recompute => assert!(r.recompute_preemptions > 0),
            PreemptionMode::Swap => {
                assert!(r.swap_preemptions > 0);
                assert!(r.swapped_blocks > 0);
            }
        }
    }
}
