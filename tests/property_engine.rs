//! Property-based tests over the serving engine: random request mixes
//! (prompt lengths, output budgets, parallel sampling, beam search) against
//! random pool sizes must always complete, never leak or double-free KV
//! blocks, and respect output-length contracts.

use proptest::prelude::*;

use vllm::core::config::PreemptionMode;
use vllm::core::mock::MockExecutor;
use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, SequenceStatus};

#[derive(Debug, Clone)]
struct ReqSpec {
    prompt_len: usize,
    max_tokens: usize,
    n: usize,
    beam: bool,
}

fn req_strategy() -> impl Strategy<Value = ReqSpec> {
    (1usize..40, 1usize..24, 1usize..5, proptest::bool::ANY).prop_map(
        |(prompt_len, max_tokens, n, beam)| ReqSpec {
            prompt_len,
            max_tokens,
            n,
            beam,
        },
    )
}

fn build_engine(
    block_size: usize,
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(block_size, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(256, 32, 256)
        .unwrap()
        .with_preemption_mode(mode);
    LlmEngine::new(MockExecutor::new(500), cache, sched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_workloads_complete_and_free_all_blocks(
        reqs in proptest::collection::vec(req_strategy(), 1..10),
        block_size in 1usize..9,
        gpu_blocks in 24usize..96,
        swap in proptest::bool::ANY,
    ) {
        let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
        let mut engine = build_engine(block_size, gpu_blocks, gpu_blocks, mode);
        let mut expected_done = 0usize;
        for (i, r) in reqs.iter().enumerate() {
            let params = if r.beam {
                SamplingParams::beam(r.n, r.max_tokens)
            } else {
                SamplingParams::parallel(r.n, r.max_tokens)
            };
            let prompt: Vec<u32> = (0..r.prompt_len as u32).collect();
            // Requests whose prompt alone exceeds the pool are rejected by
            // the scheduler (AllocStatus::Never) — they still produce an
            // (empty) output.
            engine
                .add_request_at(format!("r{i}"), prompt, params, i as f64 * 1e-3)
                .unwrap();
            expected_done += 1;
        }
        let mut outputs = Vec::new();
        let mut guard = 0u32;
        while engine.has_unfinished() {
            outputs.extend(engine.step().unwrap());
            guard += 1;
            prop_assert!(guard < 50_000, "engine failed to make progress");
            engine.scheduler().block_manager().assert_consistent();
        }
        prop_assert_eq!(outputs.len(), expected_done, "every request finishes exactly once");

        // No leaks: both pools fully free.
        let bm = engine.scheduler().block_manager();
        prop_assert_eq!(bm.num_free_gpu_blocks(), gpu_blocks);
        prop_assert_eq!(bm.num_free_cpu_blocks(), gpu_blocks);

        // Outputs arrive in completion order; re-align with request order.
        outputs.sort_by_key(|o| o.request_id[1..].parse::<usize>().unwrap());
        for (out, spec) in outputs.iter().zip(reqs.iter()) {
            // Ignored (oversized) requests have no outputs; completed ones
            // respect n and max_tokens.
            if out.outputs.is_empty() {
                continue;
            }
            prop_assert!(out.outputs.len() <= spec.n);
            for c in &out.outputs {
                prop_assert!(c.tokens.len() <= spec.max_tokens);
                prop_assert!(!c.tokens.is_empty());
                prop_assert!(matches!(
                    c.finish_reason,
                    SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                ));
            }
            if !spec.beam {
                prop_assert_eq!(out.outputs.len(), spec.n, "parallel sampling returns n outputs");
                for c in &out.outputs {
                    prop_assert_eq!(c.tokens.len(), spec.max_tokens);
                }
            }
        }
    }

    #[test]
    fn eos_always_respected(
        prompt_len in 1usize..30,
        period in 1usize..12,
        max_tokens in 1usize..30,
    ) {
        let mut engine = build_engine(4, 64, 0, PreemptionMode::Recompute);
        engine.executor_mut().eos_token = Some((3, period));
        let prompt: Vec<u32> = (10..10 + prompt_len as u32).collect();
        engine
            .add_request("r", prompt, SamplingParams::greedy(max_tokens).with_eos(3))
            .unwrap();
        let outs = engine.run_to_completion().unwrap();
        let c = &outs[0].outputs[0];
        prop_assert!(c.tokens.len() <= max_tokens);
        // No eos token anywhere except possibly the last position.
        for &t in &c.tokens[..c.tokens.len().saturating_sub(1)] {
            prop_assert_ne!(t, 3);
        }
        if c.finish_reason == SequenceStatus::FinishedStopped {
            prop_assert_eq!(*c.tokens.last().unwrap(), 3);
        }
    }

    #[test]
    fn interleaved_arrivals_conserve_requests(
        arrivals in proptest::collection::vec((1usize..30, 1usize..16), 1..12),
    ) {
        let mut engine = build_engine(4, 48, 48, PreemptionMode::Swap);
        let mut added = 0;
        let mut outputs = Vec::new();
        for (i, (prompt_len, max_tokens)) in arrivals.iter().enumerate() {
            let prompt: Vec<u32> = (0..*prompt_len as u32).collect();
            engine
                .add_request(format!("r{i}"), prompt, SamplingParams::greedy(*max_tokens))
                .unwrap();
            added += 1;
            // Interleave: run a couple of steps between arrivals.
            for _ in 0..2 {
                outputs.extend(engine.step().unwrap());
            }
        }
        while engine.has_unfinished() {
            outputs.extend(engine.step().unwrap());
        }
        prop_assert_eq!(outputs.len(), added);
        prop_assert_eq!(engine.scheduler().block_manager().num_free_gpu_blocks(), 48);
    }
}
