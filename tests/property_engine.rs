//! Property-based tests over the serving engine: random request mixes
//! (prompt lengths, output budgets, parallel sampling, beam search) against
//! random pool sizes must always complete, never leak or double-free KV
//! blocks, and respect output-length contracts.
//!
//! A second suite runs the real CPU model: batched decode must be
//! indistinguishable from per-sequence decode (tokens identical, logprobs
//! within 1e-5) across decode batch widths and under recompute/swap
//! preemption.

use proptest::prelude::*;

use vllm::core::config::PreemptionMode;
use vllm::core::mock::MockExecutor;
use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, SequenceStatus};
use vllm::model::{CpuModelExecutor, DecodeInput, KvPool, ModelConfig, Transformer};

#[derive(Debug, Clone)]
struct ReqSpec {
    prompt_len: usize,
    max_tokens: usize,
    n: usize,
    beam: bool,
}

fn req_strategy() -> impl Strategy<Value = ReqSpec> {
    (1usize..40, 1usize..24, 1usize..5, proptest::bool::ANY).prop_map(
        |(prompt_len, max_tokens, n, beam)| ReqSpec {
            prompt_len,
            max_tokens,
            n,
            beam,
        },
    )
}

fn build_engine(
    block_size: usize,
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(block_size, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(256, 32, 256)
        .unwrap()
        .with_preemption_mode(mode);
    LlmEngine::new(MockExecutor::new(500), cache, sched)
}

/// Engine with the configuration the pre-pipeline (monolithic `step()`)
/// engine used when the golden outputs below were captured.
fn golden_engine(gpu: usize, cpu: usize, mode: PreemptionMode) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(4, gpu, cpu)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048)
        .unwrap()
        .with_preemption_mode(mode);
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

/// `(request_id, per-output token streams)` sorted by request id.
fn collect_sorted(outs: Vec<vllm::core::engine::RequestOutput>) -> Vec<(String, Vec<Vec<u32>>)> {
    let mut v: Vec<(String, Vec<Vec<u32>>)> = outs
        .into_iter()
        .map(|o| {
            (
                o.request_id,
                o.outputs.into_iter().map(|c| c.tokens).collect(),
            )
        })
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Golden outputs captured from the seed engine (pre staged-pipeline) on
/// mixed greedy/parallel/beam workloads, under no contention, recompute
/// preemption, and swap preemption. The staged pipeline must reproduce them
/// token for token.
#[test]
fn staged_pipeline_matches_seed_engine_golden_outputs() {
    // W1: mixed decoding modes, uncontended.
    let mut e = golden_engine(64, 0, PreemptionMode::Recompute);
    e.add_request_at("r0", (0..5).collect(), SamplingParams::greedy(8), 0.0)
        .unwrap();
    e.add_request_at(
        "r1",
        (10..20).collect(),
        SamplingParams::parallel(3, 6),
        0.01,
    )
    .unwrap();
    e.add_request_at("r2", (30..38).collect(), SamplingParams::beam(3, 5), 0.02)
        .unwrap();
    let got = collect_sorted(e.run_to_completion().unwrap());
    let want: Vec<(String, Vec<Vec<u32>>)> = vec![
        (
            "r0".into(),
            vec![vec![270, 383, 381, 658, 651, 705, 822, 452]],
        ),
        (
            "r1".into(),
            vec![
                vec![78, 689, 551, 90, 16, 115],
                vec![925, 308, 830, 675, 349, 418],
                vec![168, 249, 63, 802, 856, 891],
            ],
        ),
        (
            "r2".into(),
            vec![
                vec![168, 165, 423, 756, 46],
                vec![655, 119, 445, 394, 608],
                vec![168, 165, 423, 756, 445],
            ],
        ),
    ];
    assert_eq!(got, want);

    // W2: contended pool, recompute preemption.
    let mut e = golden_engine(8, 0, PreemptionMode::Recompute);
    e.add_request_at("a", (0..8).collect(), SamplingParams::greedy(12), 0.0)
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    e.add_request_at("c", (200..204).collect(), SamplingParams::greedy(6), 0.2)
        .unwrap();
    let got = collect_sorted(e.run_to_completion().unwrap());
    let want: Vec<(String, Vec<Vec<u32>>)> = vec![
        (
            "a".into(),
            vec![vec![
                463, 246, 904, 787, 221, 596, 70, 337, 35, 858, 141, 975,
            ]],
        ),
        (
            "b".into(),
            vec![vec![
                920, 37, 191, 188, 174, 227, 909, 458, 356, 593, 246, 656,
            ]],
        ),
        ("c".into(), vec![vec![826, 772, 449, 355, 480, 253]]),
    ];
    assert_eq!(got, want);
    assert_eq!(e.scheduler().stats().num_preemptions, 8);

    // W3: contended pool, swap preemption.
    let mut e = golden_engine(6, 16, PreemptionMode::Swap);
    e.add_request_at("a", (0..8).collect(), SamplingParams::greedy(12), 0.0)
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    let got = collect_sorted(e.run_to_completion().unwrap());
    let want: Vec<(String, Vec<Vec<u32>>)> = vec![
        (
            "a".into(),
            vec![vec![
                463, 246, 904, 787, 221, 596, 70, 337, 35, 858, 141, 975,
            ]],
        ),
        (
            "b".into(),
            vec![vec![
                920, 37, 191, 188, 174, 227, 909, 458, 356, 593, 246, 656,
            ]],
        ),
    ];
    assert_eq!(got, want);
    assert_eq!(e.scheduler().stats().num_swap_preemptions, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The staged pipeline is deterministic on mixed prefill/decode/beam
    /// workloads: the same request stream replayed through a fresh engine
    /// yields identical outputs.
    #[test]
    fn mixed_workloads_are_deterministic(
        reqs in proptest::collection::vec(req_strategy(), 1..8),
        swap in proptest::bool::ANY,
    ) {
        let run = || {
            let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
            let mut engine = build_engine(4, 32, 32, mode);
            for (i, r) in reqs.iter().enumerate() {
                let params = if r.beam {
                    SamplingParams::beam(r.n, r.max_tokens)
                } else {
                    SamplingParams::parallel(r.n, r.max_tokens)
                };
                let prompt: Vec<u32> = (0..r.prompt_len as u32).collect();
                engine
                    .add_request_at(format!("r{i}"), prompt, params, i as f64 * 1e-3)
                    .unwrap();
            }
            collect_sorted(engine.run_to_completion().unwrap())
        };
        prop_assert_eq!(run(), run());
    }

    /// Greedy single-sequence outputs are invariant under memory pressure:
    /// a contended pool (with either preemption mode) produces exactly the
    /// tokens of an uncontended run.
    #[test]
    fn greedy_outputs_invariant_under_contention(
        arrivals in proptest::collection::vec((1usize..24, 1usize..12), 1..8),
        gpu_blocks in 10usize..24,
        swap in proptest::bool::ANY,
    ) {
        let run = |gpu: usize, cpu: usize, mode: PreemptionMode| {
            let mut engine = build_engine(4, gpu, cpu, mode);
            for (i, (prompt_len, max_tokens)) in arrivals.iter().enumerate() {
                let prompt: Vec<u32> = (0..*prompt_len as u32).collect();
                engine
                    .add_request_at(
                        format!("r{i}"),
                        prompt,
                        SamplingParams::greedy(*max_tokens),
                        i as f64 * 1e-3,
                    )
                    .unwrap();
            }
            collect_sorted(engine.run_to_completion().unwrap())
        };
        let uncontended = run(256, 256, PreemptionMode::Recompute);
        let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
        let contended = run(gpu_blocks, gpu_blocks, mode);
        prop_assert_eq!(uncontended, contended);
    }

    #[test]
    fn random_workloads_complete_and_free_all_blocks(
        reqs in proptest::collection::vec(req_strategy(), 1..10),
        block_size in 1usize..9,
        gpu_blocks in 24usize..96,
        swap in proptest::bool::ANY,
    ) {
        let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
        let mut engine = build_engine(block_size, gpu_blocks, gpu_blocks, mode);
        let mut expected_done = 0usize;
        for (i, r) in reqs.iter().enumerate() {
            let params = if r.beam {
                SamplingParams::beam(r.n, r.max_tokens)
            } else {
                SamplingParams::parallel(r.n, r.max_tokens)
            };
            let prompt: Vec<u32> = (0..r.prompt_len as u32).collect();
            // Requests whose prompt alone exceeds the pool are rejected by
            // the scheduler (AllocStatus::Never) — they still produce an
            // (empty) output.
            engine
                .add_request_at(format!("r{i}"), prompt, params, i as f64 * 1e-3)
                .unwrap();
            expected_done += 1;
        }
        let mut outputs = Vec::new();
        let mut guard = 0u32;
        while engine.has_unfinished() {
            outputs.extend(engine.step().unwrap());
            guard += 1;
            prop_assert!(guard < 50_000, "engine failed to make progress");
            engine.scheduler().block_manager().assert_consistent();
        }
        prop_assert_eq!(outputs.len(), expected_done, "every request finishes exactly once");

        // No leaks: both pools fully free.
        let bm = engine.scheduler().block_manager();
        prop_assert_eq!(bm.num_free_gpu_blocks(), gpu_blocks);
        prop_assert_eq!(bm.num_free_cpu_blocks(), gpu_blocks);

        // Outputs arrive in completion order; re-align with request order.
        outputs.sort_by_key(|o| o.request_id[1..].parse::<usize>().unwrap());
        for (out, spec) in outputs.iter().zip(reqs.iter()) {
            // Ignored (oversized) requests have no outputs; completed ones
            // respect n and max_tokens.
            if out.outputs.is_empty() {
                continue;
            }
            prop_assert!(out.outputs.len() <= spec.n);
            for c in &out.outputs {
                prop_assert!(c.tokens.len() <= spec.max_tokens);
                prop_assert!(!c.tokens.is_empty());
                prop_assert!(matches!(
                    c.finish_reason,
                    SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                ));
            }
            if !spec.beam {
                prop_assert_eq!(out.outputs.len(), spec.n, "parallel sampling returns n outputs");
                for c in &out.outputs {
                    prop_assert_eq!(c.tokens.len(), spec.max_tokens);
                }
            }
        }
    }

    #[test]
    fn eos_always_respected(
        prompt_len in 1usize..30,
        period in 1usize..12,
        max_tokens in 1usize..30,
    ) {
        let mut engine = build_engine(4, 64, 0, PreemptionMode::Recompute);
        engine.executor_mut().eos_token = Some((3, period));
        let prompt: Vec<u32> = (10..10 + prompt_len as u32).collect();
        engine
            .add_request("r", prompt, SamplingParams::greedy(max_tokens).with_eos(3))
            .unwrap();
        let outs = engine.run_to_completion().unwrap();
        let c = &outs[0].outputs[0];
        prop_assert!(c.tokens.len() <= max_tokens);
        // No eos token anywhere except possibly the last position.
        for &t in &c.tokens[..c.tokens.len().saturating_sub(1)] {
            prop_assert_ne!(t, 3);
        }
        if c.finish_reason == SequenceStatus::FinishedStopped {
            prop_assert_eq!(*c.tokens.last().unwrap(), 3);
        }
    }

    #[test]
    fn interleaved_arrivals_conserve_requests(
        arrivals in proptest::collection::vec((1usize..30, 1usize..16), 1..12),
    ) {
        let mut engine = build_engine(4, 48, 48, PreemptionMode::Swap);
        let mut added = 0;
        let mut outputs = Vec::new();
        for (i, (prompt_len, max_tokens)) in arrivals.iter().enumerate() {
            let prompt: Vec<u32> = (0..*prompt_len as u32).collect();
            engine
                .add_request(format!("r{i}"), prompt, SamplingParams::greedy(*max_tokens))
                .unwrap();
            added += 1;
            // Interleave: run a couple of steps between arrivals.
            for _ in 0..2 {
                outputs.extend(engine.step().unwrap());
            }
        }
        while engine.has_unfinished() {
            outputs.extend(engine.step().unwrap());
        }
        prop_assert_eq!(outputs.len(), added);
        prop_assert_eq!(engine.scheduler().block_manager().num_free_gpu_blocks(), 48);
    }
}

/// Engine over the real CPU transformer substrate.
fn cpu_engine(
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
    max_seqs: usize,
) -> LlmEngine<CpuModelExecutor> {
    let cache = CacheConfig::new(4, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(256, max_seqs, 256)
        .unwrap()
        .with_preemption_mode(mode);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    LlmEngine::new(exec, cache, sched)
}

/// Per-request completions: `(tokens, cumulative logprob)` per output.
type RunOutputs = Vec<(String, Vec<(Vec<u32>, f64)>)>;

/// `(request_id, per-output (tokens, cumulative logprob))` sorted by id.
fn collect_with_logprobs(outs: Vec<vllm::core::engine::RequestOutput>) -> RunOutputs {
    let mut v: RunOutputs = outs
        .into_iter()
        .map(|o| {
            (
                o.request_id,
                o.outputs
                    .into_iter()
                    .map(|c| (c.tokens, c.cumulative_logprob))
                    .collect(),
            )
        })
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Tokens must match exactly; cumulative logprobs within `tol`.
fn assert_runs_equivalent(a: &RunOutputs, b: &RunOutputs, tol: f64) {
    assert_eq!(a.len(), b.len());
    for ((id_a, outs_a), (id_b, outs_b)) in a.iter().zip(b) {
        assert_eq!(id_a, id_b);
        assert_eq!(outs_a.len(), outs_b.len(), "output count for {id_a}");
        for ((toks_a, lp_a), (toks_b, lp_b)) in outs_a.iter().zip(outs_b) {
            assert_eq!(toks_a, toks_b, "tokens diverged for {id_a}");
            assert!(
                (lp_a - lp_b).abs() <= tol,
                "logprob diverged for {id_a}: {lp_a} vs {lp_b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched decode is transparent at the engine level: staggered
    /// greedy arrivals (whose step plans mix prefill and decode items)
    /// produce the same tokens and logprobs whether the scheduler runs
    /// one sequence per step (`max_num_seqs = 1`, every forward solo) or
    /// batches every runnable sequence.
    #[test]
    fn cpu_model_outputs_invariant_across_decode_batch_widths(
        arrivals in proptest::collection::vec((1usize..12, 1usize..8), 1..5),
    ) {
        let run = |max_seqs: usize| {
            let mut engine = cpu_engine(128, 128, PreemptionMode::Recompute, max_seqs);
            for (i, (prompt_len, max_tokens)) in arrivals.iter().enumerate() {
                let prompt: Vec<u32> = (1..=*prompt_len as u32).collect();
                engine
                    .add_request_at(
                        format!("r{i}"),
                        prompt,
                        SamplingParams::greedy(*max_tokens),
                        i as f64 * 1e-3,
                    )
                    .unwrap();
            }
            collect_with_logprobs(engine.run_to_completion().unwrap())
        };
        let solo = run(1);
        let batched = run(16);
        assert_runs_equivalent(&solo, &batched, 1e-5);
    }

    /// Batched decode stays transparent under preemption: a contended
    /// pool (recompute or swap recovery) yields exactly the uncontended
    /// outputs, even though preemption reshuffles which sequences share
    /// each batched forward.
    #[test]
    fn cpu_model_outputs_invariant_under_preemption(
        arrivals in proptest::collection::vec((1usize..12, 1usize..8), 2..6),
        gpu_blocks in 8usize..16,
        swap in proptest::bool::ANY,
    ) {
        let run = |gpu: usize, cpu: usize, mode: PreemptionMode| {
            let mut engine = cpu_engine(gpu, cpu, mode, 16);
            for (i, (prompt_len, max_tokens)) in arrivals.iter().enumerate() {
                let prompt: Vec<u32> = (1..=*prompt_len as u32).collect();
                engine
                    .add_request_at(
                        format!("r{i}"),
                        prompt,
                        SamplingParams::greedy(*max_tokens),
                        i as f64 * 1e-3,
                    )
                    .unwrap();
            }
            collect_with_logprobs(engine.run_to_completion().unwrap())
        };
        let uncontended = run(256, 256, PreemptionMode::Recompute);
        let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
        let contended = run(gpu_blocks, gpu_blocks, mode);
        assert_runs_equivalent(&uncontended, &contended, 1e-5);
    }

    /// Model-level form of the same property: one batched decode forward
    /// over sequences with random (mixed-length) contexts matches a solo
    /// `forward_paged` call per sequence — logits within 1e-5 (they are
    /// bit-identical by construction) on both position-encoding schemes.
    #[test]
    fn batched_decode_forward_matches_solo_on_random_mixes(
        lens in proptest::collection::vec(1usize..20, 2..6),
        rotary in proptest::bool::ANY,
    ) {
        let config = if rotary { ModelConfig::tiny_rotary() } else { ModelConfig::tiny() };
        let model = Transformer::new(config.clone());
        let block_size = 4usize;
        let blocks_per_seq = 6; // covers a 20-token prompt + 1 decode slot
        let mut kv = KvPool::new(
            config.n_layers,
            lens.len() * blocks_per_seq,
            block_size,
            config.hidden,
        );
        let tables: Vec<Vec<usize>> = (0..lens.len())
            .map(|i| (i * blocks_per_seq..(i + 1) * blocks_per_seq).collect())
            .collect();
        for (i, &len) in lens.iter().enumerate() {
            let prompt: Vec<u32> = (0..len as u32).map(|t| (t * 7 + i as u32) % 128).collect();
            let positions: Vec<usize> = (0..len).collect();
            model.forward_paged(&prompt, &positions, &mut kv, &tables[i], 0);
        }
        let mut kv_solo = kv.clone();

        let inputs: Vec<DecodeInput<'_>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| DecodeInput {
                token: (len as u32 * 3 + i as u32) % 128,
                position: len,
                block_table: &tables[i],
            })
            .collect();
        let batched = model.forward_decode_batch(&inputs, &mut kv);

        let vocab = config.vocab_size;
        for (i, inp) in inputs.iter().enumerate() {
            let solo = model.forward_paged(
                &[inp.token],
                &[inp.position],
                &mut kv_solo,
                inp.block_table,
                inp.position,
            );
            let row = &batched[i * vocab..(i + 1) * vocab];
            for (j, (&b, &s)) in row.iter().zip(&solo).enumerate() {
                prop_assert!(
                    (b - s).abs() <= 1e-5,
                    "seq {i} logit {j}: batched {b} vs solo {s}"
                );
            }
        }
    }
}
