//! Scheduling-transparency tests: whatever the scheduler does — batching,
//! preemption by recomputation or swapping, queueing — greedy outputs must
//! be bit-identical to uncontended runs (the system never alters results,
//! §1: "without affecting the model accuracy at all").

use vllm::core::config::PreemptionMode;
use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, TokenId};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn prompts() -> Vec<Vec<TokenId>> {
    (0..6u32)
        .map(|i| (0..(4 + i * 3)).map(|t| (t * 7 + i) % 100).collect())
        .collect()
}

fn reference_outputs() -> Vec<Vec<TokenId>> {
    prompts()
        .into_iter()
        .enumerate()
        .map(|(i, prompt)| {
            let cache = CacheConfig::new(4, 256, 0).unwrap();
            let sched = SchedulerConfig::new(512, 32, 512).unwrap();
            let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
            let mut e = LlmEngine::new(exec, cache, sched);
            e.add_request(format!("r{i}"), prompt, SamplingParams::greedy(9))
                .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        })
        .collect()
}

fn contended_outputs(
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
    max_num_seqs: usize,
) -> (Vec<Vec<TokenId>>, u64) {
    let cache = CacheConfig::new(4, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(512, max_num_seqs, 512)
        .unwrap()
        .with_preemption_mode(mode);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    for (i, prompt) in prompts().into_iter().enumerate() {
        e.add_request_at(
            format!("r{i}"),
            prompt,
            SamplingParams::greedy(9),
            i as f64 * 1e-6,
        )
        .unwrap();
    }
    let mut outs = e.run_to_completion().unwrap();
    outs.sort_by_key(|o| o.request_id.clone());
    (
        outs.into_iter()
            .map(|o| o.outputs[0].tokens.clone())
            .collect(),
        e.scheduler().stats().num_preemptions,
    )
}

#[test]
fn batched_equals_sequential() {
    let (outs, _) = contended_outputs(256, 0, PreemptionMode::Recompute, 32);
    assert_eq!(outs, reference_outputs());
}

#[test]
fn recompute_contention_equals_sequential() {
    let (outs, preemptions) = contended_outputs(14, 0, PreemptionMode::Recompute, 32);
    assert!(preemptions > 0, "pool must be contended");
    assert_eq!(outs, reference_outputs());
}

#[test]
fn swap_contention_equals_sequential() {
    let (outs, preemptions) = contended_outputs(14, 32, PreemptionMode::Swap, 32);
    assert!(preemptions > 0, "pool must be contended");
    assert_eq!(outs, reference_outputs());
}

#[test]
fn tiny_batch_limit_equals_sequential() {
    let (outs, _) = contended_outputs(256, 0, PreemptionMode::Recompute, 2);
    assert_eq!(outs, reference_outputs());
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = contended_outputs(14, 0, PreemptionMode::Recompute, 32);
    let b = contended_outputs(14, 0, PreemptionMode::Recompute, 32);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn parallel_sampling_stable_under_contention() {
    // Seeded parallel sampling: contention must not change sampled tokens.
    let run = |gpu_blocks: usize| {
        let cache = CacheConfig::new(4, gpu_blocks, 0).unwrap();
        let sched = SchedulerConfig::new(512, 32, 512).unwrap();
        let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
        let mut e = LlmEngine::new(exec, cache, sched);
        e.add_request(
            "p",
            (0..10).collect(),
            SamplingParams::parallel(3, 8).with_seed(99),
        )
        .unwrap();
        e.add_request_at("q", (30..38).collect(), SamplingParams::greedy(8), 1e-6)
            .unwrap();
        let mut outs = e.run_to_completion().unwrap();
        outs.sort_by_key(|o| o.request_id.clone());
        let p = &outs[0];
        let mut token_sets: Vec<Vec<TokenId>> =
            p.outputs.iter().map(|o| o.tokens.clone()).collect();
        token_sets.sort();
        token_sets
    };
    assert_eq!(run(256), run(16));
}
