//! Integration tests for the TCP serving frontend: concurrent clients,
//! every decoding mode, and protocol error handling.

use vllm::core::{CacheConfig, LlmEngine, SchedulerConfig};
use vllm::frontend::{Client, Server};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn spawn_server() -> Server {
    let cache = CacheConfig::new(16, 256, 64).unwrap();
    let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let engine = LlmEngine::new(exec, cache, sched);
    Server::spawn("127.0.0.1:0", engine).expect("server binds")
}

#[test]
fn greedy_request_round_trip() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let outs = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    assert!(!outs[0].text.is_empty() || outs[0].text.is_empty()); // Text may decode specials away.
                                                                  // Greedy is deterministic: a second call matches.
    let outs2 = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs[0].text, outs2[0].text);
    server.shutdown();
}

#[test]
fn sampling_and_beam_modes() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let samples = client.generate("tell me a story", 8, 3, "sample").unwrap();
    assert_eq!(samples.len(), 3);
    let beams = client.generate("tell me a story", 8, 2, "beam").unwrap();
    assert_eq!(beams.len(), 2);
    // Beam outputs sorted by cumulative logprob.
    assert!(beams[0].cumulative_logprob >= beams[1].cumulative_logprob);
    server.shutdown();
}

#[test]
fn concurrent_clients_are_batched() {
    let server = spawn_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let prompt = format!("client {i} says something unique");
                client.generate(&prompt, 16, 1, "greedy").unwrap()
            })
        })
        .collect();
    for h in handles {
        let outs = h.join().expect("client thread");
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn protocol_errors_reported() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown mode.
    let err = client.generate("x", 4, 1, "nucleus").unwrap_err();
    assert!(err.to_string().contains("unknown mode"));
    // Greedy with n > 1.
    let err = client.generate("x", 4, 3, "greedy").unwrap_err();
    assert!(err.to_string().contains("n=1"));
    // The connection stays usable after errors.
    let outs = client.generate("x", 4, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

#[test]
fn many_sequential_requests_one_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..8 {
        let outs = client
            .generate(&format!("request number {i}"), 4, 1, "greedy")
            .unwrap();
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn stats_endpoint_reports_state() {
    use std::io::{BufRead, BufReader, Write};
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("warm up the counters", 6, 1, "greedy")
        .unwrap();

    // Raw protocol query.
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "STATS").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("STATS\t"), "got {line:?}");
    assert!(line.contains("finished=1"), "got {line:?}");
    assert!(line.contains("total_blocks=256"), "got {line:?}");
    assert!(line.contains("\tsteps="), "got {line:?}");
    assert!(line.contains("\tschedule_time="), "got {line:?}");

    // Programmatic accessor agrees.
    let stats = server.stats();
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.total_blocks, 256);
    assert_eq!(stats.free_blocks, 256);
    // Trace-derived pipeline counters: the warm-up request ran real steps.
    assert!(stats.steps > 0);
    assert!(stats.tokens_scheduled > 0);
    assert!(stats.execute_time > 0.0);
    // Latency percentiles from the finished request.
    assert!(line.contains("\tnorm_lat_p50="), "got {line:?}");
    assert!(line.contains("\tttft_p99="), "got {line:?}");
    assert!(stats.norm_lat_mean > 0.0);
    assert!(stats.norm_lat_p50 > 0.0);
    assert!(stats.ttft_mean > 0.0);
    assert!(stats.ttft_p50 <= stats.ttft_p99);
    server.shutdown();
}

/// The snapshot is published on startup, not only after the first step: a
/// fresh server must already report its block pool.
#[test]
fn stats_fresh_before_any_request() {
    let server = spawn_server();
    // The engine thread seeds the snapshot right after spawn; give it a
    // moment on slow machines.
    let mut stats = server.stats();
    for _ in 0..100 {
        if stats.total_blocks != 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        stats = server.stats();
    }
    assert_eq!(stats.total_blocks, 256);
    assert_eq!(stats.free_blocks, 256);
    assert_eq!(stats.finished, 0);
    server.shutdown();
}

/// Reads protocol lines until `END`, returning them without the terminator.
fn read_until_end(reader: &mut impl std::io::BufRead) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read: {e}"),
        }
        let line = line.trim_end().to_string();
        if line == "END" {
            break;
        }
        lines.push(line);
    }
    lines
}

/// `METRICS` (Prometheus text) and `METRICS\tjson` must expose the same
/// snapshot, and both round-trip losslessly through their parsers.
#[test]
fn metrics_endpoint_text_and_json_agree() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::core::telemetry::MetricsSnapshot;

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("warm up the registry", 6, 1, "greedy")
        .unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writeln!(writer, "METRICS").unwrap();
    let text = read_until_end(&mut reader).join("\n") + "\n";
    let from_text = MetricsSnapshot::from_prometheus_text(&text).expect("text exposition parses");

    writeln!(writer, "METRICS\tjson").unwrap();
    let mut json = String::new();
    reader.read_line(&mut json).unwrap();
    let from_json = MetricsSnapshot::from_json(json.trim_end()).expect("JSON exposition parses");

    // The engine is idle between the two queries, so the snapshots match.
    assert_eq!(from_text, from_json);
    assert_eq!(
        from_text.counter("vllm_engine_requests_finished_total"),
        Some(1)
    );
    assert!(from_text.gauge("vllm_block_manager_gpu_blocks_total") == Some(256.0));
    let ttft = from_text.histogram("vllm_request_ttft_seconds").unwrap();
    assert_eq!(ttft.count, 1);
    assert!(ttft.min > 0.0);
    server.shutdown();
}

/// `EVENTS\t<request_id>` replays the request's lifecycle in order.
#[test]
fn events_endpoint_replays_lifecycle() {
    use std::io::{BufReader, Write};

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("trace my lifecycle", 5, 1, "greedy")
        .unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Server-assigned ids start at req-0.
    writeln!(writer, "EVENTS\treq-0").unwrap();
    let lines = read_until_end(&mut reader);
    assert!(!lines.is_empty(), "lifecycle must be recorded");
    let kinds: Vec<&str> = lines
        .iter()
        .map(|l| l.split('\t').nth(2).expect("EVENT kind field"))
        .collect();
    assert_eq!(kinds.first(), Some(&"arrived"));
    assert!(kinds.contains(&"scheduled"));
    assert!(kinds.contains(&"first_token"));
    assert_eq!(kinds.last(), Some(&"finished"));
    for l in &lines {
        assert!(l.starts_with("EVENT\t"), "got {l:?}");
    }

    // Unknown ids yield an empty (but well-formed) reply.
    writeln!(writer, "EVENTS\tno-such-request").unwrap();
    assert!(read_until_end(&mut reader).is_empty());
    server.shutdown();
}
