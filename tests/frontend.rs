//! Integration tests for the TCP serving frontend: concurrent clients,
//! every decoding mode, and protocol error handling.

use vllm::core::{CacheConfig, LlmEngine, SchedulerConfig};
use vllm::frontend::{Client, Server};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn spawn_server() -> Server {
    let cache = CacheConfig::new(16, 256, 64).unwrap();
    let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let engine = LlmEngine::new(exec, cache, sched);
    Server::spawn("127.0.0.1:0", engine).expect("server binds")
}

#[test]
fn greedy_request_round_trip() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let outs = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    assert!(!outs[0].text.is_empty() || outs[0].text.is_empty()); // Text may decode specials away.
                                                                  // Greedy is deterministic: a second call matches.
    let outs2 = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs[0].text, outs2[0].text);
    server.shutdown();
}

#[test]
fn sampling_and_beam_modes() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let samples = client.generate("tell me a story", 8, 3, "sample").unwrap();
    assert_eq!(samples.len(), 3);
    let beams = client.generate("tell me a story", 8, 2, "beam").unwrap();
    assert_eq!(beams.len(), 2);
    // Beam outputs sorted by cumulative logprob.
    assert!(beams[0].cumulative_logprob >= beams[1].cumulative_logprob);
    server.shutdown();
}

#[test]
fn concurrent_clients_are_batched() {
    let server = spawn_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let prompt = format!("client {i} says something unique");
                client.generate(&prompt, 16, 1, "greedy").unwrap()
            })
        })
        .collect();
    for h in handles {
        let outs = h.join().expect("client thread");
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn protocol_errors_reported() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown mode.
    let err = client.generate("x", 4, 1, "nucleus").unwrap_err();
    assert!(err.to_string().contains("unknown mode"));
    // Greedy with n > 1.
    let err = client.generate("x", 4, 3, "greedy").unwrap_err();
    assert!(err.to_string().contains("n=1"));
    // The connection stays usable after errors.
    let outs = client.generate("x", 4, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

#[test]
fn many_sequential_requests_one_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..8 {
        let outs = client
            .generate(&format!("request number {i}"), 4, 1, "greedy")
            .unwrap();
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn stats_endpoint_reports_state() {
    use std::io::{BufRead, BufReader, Write};
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("warm up the counters", 6, 1, "greedy")
        .unwrap();

    // Raw protocol query.
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "STATS").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("STATS\t"), "got {line:?}");
    assert!(line.contains("finished=1"), "got {line:?}");
    assert!(line.contains("total_blocks=256"), "got {line:?}");
    assert!(line.contains("\tsteps="), "got {line:?}");
    assert!(line.contains("\tschedule_time="), "got {line:?}");

    // Programmatic accessor agrees.
    let stats = server.stats();
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.total_blocks, 256);
    assert_eq!(stats.free_blocks, 256);
    // Trace-derived pipeline counters: the warm-up request ran real steps.
    assert!(stats.steps > 0);
    assert!(stats.tokens_scheduled > 0);
    assert!(stats.execute_time > 0.0);
    server.shutdown();
}
