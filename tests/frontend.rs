//! Integration tests for the TCP serving frontend: concurrent clients,
//! every decoding mode, and protocol error handling.

use vllm::core::{CacheConfig, LlmEngine, SchedulerConfig};
use vllm::frontend::{Client, Server};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn spawn_server() -> Server {
    let cache = CacheConfig::new(16, 256, 64).unwrap();
    let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let engine = LlmEngine::new(exec, cache, sched);
    Server::spawn("127.0.0.1:0", engine).expect("server binds")
}

#[test]
fn greedy_request_round_trip() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let outs = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    assert!(!outs[0].text.is_empty() || outs[0].text.is_empty()); // Text may decode specials away.
                                                                  // Greedy is deterministic: a second call matches.
    let outs2 = client.generate("hello world", 12, 1, "greedy").unwrap();
    assert_eq!(outs[0].text, outs2[0].text);
    server.shutdown();
}

#[test]
fn sampling_and_beam_modes() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let samples = client.generate("tell me a story", 8, 3, "sample").unwrap();
    assert_eq!(samples.len(), 3);
    let beams = client.generate("tell me a story", 8, 2, "beam").unwrap();
    assert_eq!(beams.len(), 2);
    // Beam outputs sorted by cumulative logprob.
    assert!(beams[0].cumulative_logprob >= beams[1].cumulative_logprob);
    server.shutdown();
}

#[test]
fn concurrent_clients_are_batched() {
    let server = spawn_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let prompt = format!("client {i} says something unique");
                client.generate(&prompt, 16, 1, "greedy").unwrap()
            })
        })
        .collect();
    for h in handles {
        let outs = h.join().expect("client thread");
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn protocol_errors_reported() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown mode.
    let err = client.generate("x", 4, 1, "nucleus").unwrap_err();
    assert!(err.to_string().contains("unknown mode"));
    // Greedy with n > 1.
    let err = client.generate("x", 4, 3, "greedy").unwrap_err();
    assert!(err.to_string().contains("n=1"));
    // The connection stays usable after errors.
    let outs = client.generate("x", 4, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

#[test]
fn many_sequential_requests_one_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..8 {
        let outs = client
            .generate(&format!("request number {i}"), 4, 1, "greedy")
            .unwrap();
        assert_eq!(outs.len(), 1);
    }
    server.shutdown();
}

#[test]
fn stats_endpoint_reports_state() {
    use std::io::{BufRead, BufReader, Write};
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("warm up the counters", 6, 1, "greedy")
        .unwrap();

    // Raw protocol query.
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "STATS").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("STATS\t"), "got {line:?}");
    assert!(line.contains("finished=1"), "got {line:?}");
    assert!(line.contains("total_blocks=256"), "got {line:?}");
    assert!(line.contains("\tsteps="), "got {line:?}");
    assert!(line.contains("\tschedule_time="), "got {line:?}");

    // Programmatic accessor agrees.
    let stats = server.stats();
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.total_blocks, 256);
    assert_eq!(stats.free_blocks, 256);
    // Trace-derived pipeline counters: the warm-up request ran real steps.
    assert!(stats.steps > 0);
    assert!(stats.tokens_scheduled > 0);
    assert!(stats.execute_time > 0.0);
    // Latency percentiles from the finished request.
    assert!(line.contains("\tnorm_lat_p50="), "got {line:?}");
    assert!(line.contains("\tttft_p99="), "got {line:?}");
    assert!(stats.norm_lat_mean > 0.0);
    assert!(stats.norm_lat_p50 > 0.0);
    assert!(stats.ttft_mean > 0.0);
    assert!(stats.ttft_p50 <= stats.ttft_p99);
    server.shutdown();
}

/// The snapshot is published on startup, not only after the first step: a
/// fresh server must already report its block pool.
#[test]
fn stats_fresh_before_any_request() {
    let server = spawn_server();
    // The engine thread seeds the snapshot right after spawn; give it a
    // moment on slow machines.
    let mut stats = server.stats();
    for _ in 0..100 {
        if stats.total_blocks != 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        stats = server.stats();
    }
    assert_eq!(stats.total_blocks, 256);
    assert_eq!(stats.free_blocks, 256);
    assert_eq!(stats.finished, 0);
    server.shutdown();
}

/// Reads protocol lines until `END`, returning them without the terminator.
fn read_until_end(reader: &mut impl std::io::BufRead) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read: {e}"),
        }
        let line = line.trim_end().to_string();
        if line == "END" {
            break;
        }
        lines.push(line);
    }
    lines
}

/// `METRICS` (Prometheus text) and `METRICS\tjson` must expose the same
/// snapshot, and both round-trip losslessly through their parsers.
#[test]
fn metrics_endpoint_text_and_json_agree() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::core::telemetry::MetricsSnapshot;

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("warm up the registry", 6, 1, "greedy")
        .unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writeln!(writer, "METRICS").unwrap();
    let text = read_until_end(&mut reader).join("\n") + "\n";
    let from_text = MetricsSnapshot::from_prometheus_text(&text).expect("text exposition parses");

    writeln!(writer, "METRICS\tjson").unwrap();
    let mut json = String::new();
    reader.read_line(&mut json).unwrap();
    let from_json = MetricsSnapshot::from_json(json.trim_end()).expect("JSON exposition parses");

    // The engine is idle between the two queries, so the snapshots match.
    assert_eq!(from_text, from_json);
    assert_eq!(
        from_text.counter("vllm_engine_requests_finished_total"),
        Some(1)
    );
    assert!(from_text.gauge("vllm_block_manager_gpu_blocks_total") == Some(256.0));
    let ttft = from_text.histogram("vllm_request_ttft_seconds").unwrap();
    assert_eq!(ttft.count, 1);
    assert!(ttft.min > 0.0);
    server.shutdown();
}

/// `EVENTS\t<request_id>` replays the request's lifecycle in order.
#[test]
fn events_endpoint_replays_lifecycle() {
    use std::io::{BufReader, Write};

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .generate("trace my lifecycle", 5, 1, "greedy")
        .unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Server-assigned ids start at req-0.
    writeln!(writer, "EVENTS\treq-0").unwrap();
    let lines = read_until_end(&mut reader);
    assert!(!lines.is_empty(), "lifecycle must be recorded");
    let kinds: Vec<&str> = lines
        .iter()
        .map(|l| l.split('\t').nth(2).expect("EVENT kind field"))
        .collect();
    assert_eq!(kinds.first(), Some(&"arrived"));
    assert!(kinds.contains(&"scheduled"));
    assert!(kinds.contains(&"first_token"));
    assert_eq!(kinds.last(), Some(&"finished"));
    for l in &lines {
        assert!(l.starts_with("EVENT\t"), "got {l:?}");
    }

    // Unknown ids are distinguished from evicted ones instead of silently
    // yielding an empty reply.
    writeln!(writer, "EVENTS\tno-such-request").unwrap();
    assert_eq!(read_until_end(&mut reader), vec!["NOEVENTS\tunknown"]);
    server.shutdown();
}

#[test]
fn trace_endpoint_serves_request_spans() {
    use std::io::{BufRead, BufReader, Write};

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let read_line = |reader: &mut BufReader<std::net::TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    // Supply the trace context explicitly so the test knows the trace id.
    let trace_id = "00000000000000ab";
    writeln!(
        writer,
        "GENERATE\tmax_tokens=4\tmode=greedy\ttrace={trace_id}-00000000000000cd-1\tping"
    )
    .unwrap();
    loop {
        let line = read_line(&mut reader);
        assert!(!line.starts_with("ERR"), "generate failed: {line}");
        if line == "END" {
            break;
        }
    }

    writeln!(writer, "TRACE\t{trace_id}").unwrap();
    let dump = read_line(&mut reader);
    assert!(dump.starts_with("{\"tracks\":"), "got {dump:?}");
    assert!(
        dump.contains("\"attempt\""),
        "span dump lacks the attempt span"
    );
    assert!(dump.contains(trace_id), "span dump lacks the trace id");

    // A trace nobody recorded yields an empty (but well-formed) dump.
    writeln!(writer, "TRACE\tdeadbeefdeadbeef").unwrap();
    assert_eq!(read_line(&mut reader), "{\"tracks\":[]}");

    // Malformed ids get a structured error.
    writeln!(writer, "TRACE\tnot-hex").unwrap();
    assert!(read_line(&mut reader).starts_with("ERR\t"));

    // Generating without a trace= field mints a context server-side; the
    // connection stays usable after the errors above.
    let outs = client.generate("hello again", 4, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

/// Every malformed request line must get an `ERR\t<message>` reply and
/// leave the connection usable.
#[test]
fn malformed_requests_all_get_err() {
    use std::io::{BufRead, BufReader, Write};

    // (line, substring the error must mention)
    let cases: &[(&str, &str)] = &[
        ("GENERATE", "max_tokens"),
        // The positional v1 form is retired wholesale: any numeric second
        // field maps to a protocol error naming the typed replacement.
        ("GENERATE\t12", "positional GENERATE was removed"),
        ("GENERATE\t12\t1", "positional GENERATE was removed"),
        (
            "GENERATE\t12\t1\tgreedy\thi",
            "positional GENERATE was removed",
        ),
        (
            "GENERATE\t0\t1\tgreedy\thi",
            "positional GENERATE was removed",
        ),
        // Typed form: missing/bad required fields.
        ("GENERATE\tmode=greedy\thi", "max_tokens"),
        ("GENERATE\tmax_tokens=abc\tmode=greedy\thi", "max_tokens"),
        ("GENERATE\tmax_tokens=12\thi", "mode"),
        ("GENERATE\tmax_tokens=12\tn=x\tmode=greedy\thi", "n"),
        ("GENERATE\tmax_tokens=12\tmode=greedy", "prompt"),
        ("GENERATE\tmax_tokens=12\tmode=turbo\thi", "unknown mode"),
        ("GENERATE\tmax_tokens=12\tn=3\tmode=greedy\thi", "n=1"),
        ("GENERATE\tmax_tokens=0\tmode=greedy\thi", "max_tokens"),
        // Sampling fields validate per mode.
        (
            "GENERATE\tmax_tokens=12\tmode=greedy\ttemperature=0.5\thi",
            "sample",
        ),
        (
            "GENERATE\tmax_tokens=12\tn=2\tmode=beam\ttop_p=0.9\thi",
            "sample",
        ),
        (
            "GENERATE\tmax_tokens=12\tmode=sample\ttemperature=abc\thi",
            "temperature",
        ),
        (
            "GENERATE\tmax_tokens=12\tmode=sample\ttop_p=zzz\thi",
            "top_p",
        ),
        ("GENERATE\tmax_tokens=12\tmode=sample\tseed=-1\thi", "seed"),
        (
            "GENERATE\tmax_tokens=12\tmode=sample\ttop_p=1.5\thi",
            "top_p",
        ),
        (
            "GENERATE\tmax_tokens=12\tmode=sample\ttemperature=0\thi",
            "temperature",
        ),
        ("STATS\textra", "STATS"),
        ("METRICS\txml", "METRICS"),
        ("EVENTS", "request id"),
        ("EVENTS\ta\tb", "request id"),
        ("TIER\tnow", "TIER"),
        ("HANDOFF", "payload"),
        ("HANDOFF\tzz-not-hex", "hex"),
        ("HELLO", "version"),
        ("HELLO\tversion=999", "unsupported protocol version"),
        ("SHUTDOWN\tnow", "SHUTDOWN"),
        ("FLUSH", "unknown verb"),
        ("generate\t4\t1\tgreedy\thi", "unknown verb"),
        // Unknown key=value fields are rejected, not swallowed into the
        // prompt.
        (
            "GENERATE\tmax_tokens=12\tmode=sample\ttemprature=0.5\thi",
            "unknown field",
        ),
        (
            "GENERATE\tmax_tokens=12\tn=1\tmode=sample\ttop=0.9\thi",
            "unknown field",
        ),
        // Degradation fields validate too.
        (
            "GENERATE\tmax_tokens=12\tmode=greedy\tdeadline=-1\thi",
            "deadline",
        ),
        (
            "GENERATE\tmax_tokens=12\tmode=greedy\tpriority=soon\thi",
            "priority",
        ),
    ];

    let server = spawn_server();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for (line, needle) in cases {
        writeln!(writer, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = reply.trim_end();
        assert!(reply.starts_with("ERR\t"), "{line:?} => {reply:?}");
        assert!(
            reply.contains(needle),
            "{line:?} => {reply:?} (wanted {needle:?})"
        );
    }
    // The connection survives the whole gauntlet.
    writeln!(writer, "GENERATE\tmax_tokens=4\tmode=greedy\tstill alive").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("OK\t"), "got {reply:?}");
    server.shutdown();
}

/// Explicit `seed=` makes sampling reproducible across connections; the
/// optional `temperature=`/`top_p=` fields are accepted for mode `sample`.
#[test]
fn sampling_seed_is_reproducible() {
    use vllm::frontend::GenerateOptions;

    let server = spawn_server();
    let opts = GenerateOptions {
        temperature: Some(0.8),
        top_p: Some(0.95),
        seed: Some(7),
        ..GenerateOptions::default()
    };
    let mut a = Client::connect(server.addr()).unwrap();
    let first = a.generate_with("same seed", 10, 2, "sample", opts).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    let second = b.generate_with("same seed", 10, 2, "sample", opts).unwrap();
    assert_eq!(first, second, "seeded sampling must be deterministic");
    server.shutdown();
}

/// `SHUTDOWN` mid-generation drains: the in-flight request still completes
/// and is delivered before the server exits.
#[test]
fn shutdown_drains_in_flight_requests() {
    let server = spawn_server();
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.generate("a long running generation", 192, 1, "greedy")
    });
    // Wait until the request is actually on the engine.
    for _ in 0..500 {
        let s = server.stats();
        if s.running + s.waiting > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(admin.shutdown_server().unwrap(), "OK\tshutdown");
    let outs = worker
        .join()
        .expect("client thread")
        .expect("generation completes");
    assert_eq!(outs.len(), 1);
    let stats = server.stats();
    assert_eq!(stats.finished, 1, "the in-flight request must finish");
    drop(server);
}

/// `ERR` replies are typed: `ERR\t<kind>\t<retryable>\t<message>`, so
/// clients can mechanically split "fix the request" from "retry later".
#[test]
fn err_replies_carry_kind_and_retryability() {
    use std::io::{BufRead, BufReader, Write};

    let server = spawn_server();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writeln!(writer, "GENERATE\tmax_tokens=12\tmode=nucleus\thi").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = reply.trim_end();
    let fields: Vec<&str> = reply.splitn(4, '\t').collect();
    assert_eq!(fields[0], "ERR", "got {reply:?}");
    assert_eq!(fields[1], "request", "got {reply:?}");
    assert_eq!(fields[2], "false", "got {reply:?}");
    assert!(fields[3].contains("unknown mode"), "got {reply:?}");

    // Unknown fields carry the same taxonomy.
    writeln!(writer, "GENERATE\tmax_tokens=12\tmode=sample\tzzz=1\thi").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = reply.trim_end();
    assert!(reply.starts_with("ERR\trequest\tfalse\t"), "got {reply:?}");
    assert!(reply.contains("unknown field"), "got {reply:?}");

    // Frame-shape problems are `protocol` kind: the retired positional
    // form, and unknown verbs.
    writeln!(writer, "GENERATE\t12\t1\tgreedy\thi").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = reply.trim_end();
    assert!(reply.starts_with("ERR\tprotocol\tfalse\t"), "got {reply:?}");
    assert!(
        reply.contains("positional GENERATE was removed"),
        "got {reply:?}"
    );
    writeln!(writer, "FLUSH").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.trim_end().starts_with("ERR\tprotocol\tfalse\t"),
        "got {reply:?}"
    );
    server.shutdown();
}

/// The typed `key=value` `GENERATE` form (what `Client` now emits) serves
/// requests end to end, including the new deadline/priority fields.
#[test]
fn typed_generate_form_round_trips_with_deadline_and_priority() {
    use vllm::frontend::GenerateOptions;

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let opts = GenerateOptions {
        deadline: Some(30.0), // Generous: the request finishes well within.
        priority: Some(2),
        ..GenerateOptions::default()
    };
    let outs = client
        .generate_with("typed form request", 6, 1, "greedy", opts)
        .unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

/// A request whose deadline expires mid-decode is cancelled: the reply is
/// well-formed but carries no outputs, and the engine counts the miss.
#[test]
fn missed_deadline_cancels_request() {
    use vllm::frontend::GenerateOptions;

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let opts = GenerateOptions {
        deadline: Some(1e-6), // Expires after the first engine step.
        ..GenerateOptions::default()
    };
    let outs = client
        .generate_with(
            "this cannot finish in a microsecond",
            128,
            1,
            "greedy",
            opts,
        )
        .unwrap();
    assert!(outs.is_empty(), "expired deadline must cancel: {outs:?}");
    let snap = server.telemetry().registry().snapshot();
    assert_eq!(
        snap.counter("vllm_engine_deadline_cancellations_total"),
        Some(1)
    );
    let miss = snap
        .histogram("vllm_request_deadline_miss_seconds")
        .expect("miss histogram registered");
    assert_eq!(miss.count, 1);
    server.shutdown();
}

/// Killing a replica mid-generation loses nothing: the in-flight request is
/// re-routed to a surviving replica and still completes, and the cluster
/// keeps serving afterwards.
#[test]
fn killed_replica_requests_are_rerouted() {
    use vllm::cluster::{ClusterConfig, RoutePolicy};

    let engines: Vec<_> = (0..2)
        .map(|_| {
            let cache = CacheConfig::new(16, 256, 64).unwrap();
            let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
            let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
            LlmEngine::new(exec, cache, sched)
        })
        .collect();
    let server = Server::spawn_cluster(
        "127.0.0.1:0",
        engines,
        ClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin),
    )
    .expect("server binds");
    let addr = server.addr();

    // Round-robin sends the first request to replica 0; let it get going,
    // then kill that replica under it.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.generate("a long generation to interrupt", 192, 1, "greedy")
    });
    for _ in 0..500 {
        let s = &server.replica_stats()[0];
        if s.running + s.waiting > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    server.kill_replica(0);

    // The client still gets its answer (re-routed, or finished pre-kill).
    let outs = worker
        .join()
        .expect("client thread")
        .expect("request survives the kill");
    assert_eq!(outs.len(), 1);

    // The surviving replica keeps serving new requests.
    let mut client = Client::connect(addr).unwrap();
    let outs = client.generate("after the kill", 8, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    server.shutdown();
}

/// Multi-replica server: requests spread across replicas, `STATS` reports
/// the aggregate plus per-replica `RSTATS` lines, and `METRICS` merges the
/// per-replica registries under `{replica="i"}` labels plus the router's
/// own counters — losslessly in both expositions.
#[test]
fn cluster_server_round_robin_end_to_end() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::cluster::{ClusterConfig, RoutePolicy};
    use vllm::core::telemetry::MetricsSnapshot;

    let engines: Vec<_> = (0..2)
        .map(|_| {
            let cache = CacheConfig::new(16, 256, 64).unwrap();
            let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
            let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
            LlmEngine::new(exec, cache, sched)
        })
        .collect();
    let server = Server::spawn_cluster(
        "127.0.0.1:0",
        engines,
        ClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin),
    )
    .expect("server binds");
    let addr = server.addr();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let prompt = format!("cluster client {i}");
                client.generate(&prompt, 8, 1, "greedy").unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("client thread").len(), 1);
    }

    // Aggregate stats count all four requests across both replicas.
    assert_eq!(server.stats().finished, 4);
    let per_replica = server.replica_stats();
    assert_eq!(per_replica.len(), 2);
    assert_eq!(per_replica.iter().map(|s| s.finished).sum::<u64>(), 4);
    // Round-robin with one request at a time lands on both replicas.
    assert!(
        per_replica.iter().all(|s| s.finished > 0),
        "{per_replica:?}"
    );

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // STATS: aggregate line, one RSTATS per replica, END.
    writeln!(writer, "STATS").unwrap();
    let mut agg = String::new();
    reader.read_line(&mut agg).unwrap();
    assert!(agg.starts_with("STATS\t"), "got {agg:?}");
    assert!(agg.contains("finished=4"), "got {agg:?}");
    let rstats = read_until_end(&mut reader);
    assert_eq!(rstats.len(), 2, "got {rstats:?}");
    assert!(rstats[0].starts_with("RSTATS\t0\t"), "got {:?}", rstats[0]);
    assert!(rstats[1].starts_with("RSTATS\t1\t"), "got {:?}", rstats[1]);

    // METRICS: labeled per-replica names plus router counters, identical
    // through both expositions.
    writeln!(writer, "METRICS").unwrap();
    let text = read_until_end(&mut reader).join("\n") + "\n";
    let from_text = MetricsSnapshot::from_prometheus_text(&text).expect("text exposition parses");
    writeln!(writer, "METRICS\tjson").unwrap();
    let mut json = String::new();
    reader.read_line(&mut json).unwrap();
    let from_json = MetricsSnapshot::from_json(json.trim_end()).expect("JSON exposition parses");
    assert_eq!(from_text, from_json);
    assert_eq!(
        from_text.counter("vllm_cluster_requests_routed_total"),
        Some(4)
    );
    let labeled_finished: u64 = (0..2)
        .map(|i| {
            from_text
                .counter(&format!(
                    "vllm_engine_requests_finished_total{{replica=\"{i}\"}}"
                ))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(labeled_finished, 4);
    let routed: u64 = (0..2)
        .map(|i| {
            from_text
                .counter(&format!(
                    "vllm_cluster_replica_routed_total{{replica=\"{i}\"}}"
                ))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(routed, 4);
    server.shutdown();
}

/// `HELLO` negotiates the protocol version: matching versions get the
/// server's `HELLO` back, mismatches get a non-retryable `protocol` error,
/// and the connection stays usable either way.
#[test]
fn hello_negotiates_protocol_version() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::protocol::PROTOCOL_VERSION;

    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.hello().unwrap(), PROTOCOL_VERSION);

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "HELLO\tversion=1").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = reply.trim_end();
    assert!(reply.starts_with("ERR\tprotocol\tfalse\t"), "got {reply:?}");
    assert!(
        reply.contains(&format!("server speaks {PROTOCOL_VERSION}")),
        "got {reply:?}"
    );
    // Skew is reported, not fatal: the same connection still serves.
    writeln!(writer, "HELLO\tversion={PROTOCOL_VERSION}").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(
        reply.trim_end(),
        format!("HELLO\tversion={PROTOCOL_VERSION}")
    );
    server.shutdown();
}

/// Spawns a 1 prefill + 1 decode fleet with a shared prefix tier.
fn spawn_disaggregated() -> Server {
    use vllm::cluster::ClusterConfig;

    let engines: Vec<_> = (0..2)
        .map(|_| {
            let cache = CacheConfig::new(16, 256, 64).unwrap();
            let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
            let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
            LlmEngine::new(exec, cache, sched)
        })
        .collect();
    let cfg = ClusterConfig::disaggregated(1, 1).with_prefix_tier_blocks(128);
    Server::spawn_cluster("127.0.0.1:0", engines, cfg).expect("server binds")
}

/// Disaggregated serving is an implementation detail of the fleet, not a
/// semantics change: a greedy request through the prefill→handoff→decode
/// path yields the same tokens as the same request on a unified server,
/// repeated requests hit the shared prefix tier, and the handoff counters
/// and `TIER` snapshot expose the mechanics.
#[test]
fn disaggregated_serving_matches_unified_output() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::cluster::ReplicaRole;

    let prompt = "the quick brown fox jumps over the lazy dog";

    let unified = spawn_server();
    let mut c = Client::connect(unified.addr()).unwrap();
    let expect = c.generate(prompt, 24, 1, "greedy").unwrap();
    unified.shutdown();
    assert_eq!(expect.len(), 1);

    let server = spawn_disaggregated();
    assert_eq!(server.roles(), &[ReplicaRole::Prefill, ReplicaRole::Decode]);
    let mut client = Client::connect(server.addr()).unwrap();
    client.hello().unwrap();
    for round in 0..2 {
        let outs = client.generate(prompt, 24, 1, "greedy").unwrap();
        assert_eq!(outs.len(), 1, "round {round}");
        assert_eq!(
            outs[0].text, expect[0].text,
            "disaggregated greedy must be token-identical (round {round})"
        );
        // Stitched stub+decode logprob sums the same per-token terms in a
        // different association order; allow float slack.
        assert!(
            (outs[0].cumulative_logprob - expect[0].cumulative_logprob).abs() < 1e-3,
            "round {round}: {} vs {}",
            outs[0].cumulative_logprob,
            expect[0].cumulative_logprob
        );
    }

    // The prefill phase ran on replica 0, the decode continuation on
    // replica 1.
    let per_replica = server.replica_stats();
    assert!(per_replica[0].finished >= 2, "{per_replica:?}");
    assert!(per_replica[1].finished >= 2, "{per_replica:?}");

    // Round 1 registered and published the prompt's block-aligned prefix;
    // round 2 found it in the tier.
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "TIER").unwrap();
    let mut tier = String::new();
    reader.read_line(&mut tier).unwrap();
    let tier = tier.trim_end();
    assert!(tier.starts_with("TIER\tentries="), "got {tier:?}");
    assert!(tier.contains("capacity=128"), "got {tier:?}");
    let field = |k: &str| -> u64 {
        tier.split('\t')
            .filter_map(|p| p.split_once('='))
            .find(|(key, _)| *key == k)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("field {k} in {tier:?}"))
    };
    assert!(field("insertions") >= 1, "got {tier:?}");
    assert!(field("hits") >= 1, "got {tier:?}");
    assert!(field("entries") >= 1, "got {tier:?}");

    // The frontend's handoff instruments counted both two-phase flows.
    writeln!(writer, "METRICS\tjson").unwrap();
    let mut json = String::new();
    reader.read_line(&mut json).unwrap();
    let snap = vllm::core::telemetry::MetricsSnapshot::from_json(json.trim_end()).unwrap();
    assert!(
        snap.counter("vllm_cluster_handoffs_total").unwrap_or(0) >= 2,
        "handoffs must be counted"
    );
    assert!(
        snap.counter("vllm_cluster_handoff_blocks_total")
            .unwrap_or(0)
            >= 1,
        "shipped blocks must be counted"
    );
    server.shutdown();
}

/// The `HANDOFF` verb installs an externally serialized KV prefix into the
/// decode pool and publishes it to the tier, so a later `GENERATE`
/// extending those tokens reuses it.
#[test]
fn handoff_verb_preseeds_the_decode_pool() {
    use std::io::{BufRead, BufReader, Write};
    use vllm::core::HandoffPayload;
    use vllm::model::ByteTokenizer;

    // Export a real prefix from a standalone engine with the same model
    // and block size as the server fleet.
    let cache = CacheConfig::new(16, 256, 64).unwrap();
    let sched = SchedulerConfig::new(2048, 64, 1024).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(exec, cache, sched);
    let prefix_text = "a shared system preamble that spans blocks!"; // 44 bytes
    let tokens: Vec<u32> = ByteTokenizer.encode(prefix_text)[..32].to_vec();
    let id = engine.register_prefix(tokens.clone()).unwrap();
    let (ptokens, blocks) = engine.export_prefix(id).unwrap();
    assert_eq!(ptokens, tokens);
    let payload = HandoffPayload {
        request_id: "preseed".into(),
        tokens: tokens.clone(),
        first_token: None,
        seed: 0,
        block_size: 16,
        blocks,
    };
    let server = spawn_disaggregated();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "HANDOFF\t{}", payload.encode_wire()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = reply.trim_end();
    assert!(reply.starts_with("HANDOFF\treplica="), "got {reply:?}");
    assert!(reply.contains("blocks=2"), "got {reply:?}");
    // The payload routed to the decode pool.
    assert!(reply.contains("replica=1"), "got {reply:?}");

    // The tier now holds the pre-seeded entry...
    writeln!(writer, "TIER").unwrap();
    let mut tier = String::new();
    reader.read_line(&mut tier).unwrap();
    assert!(
        tier.contains("insertions=1") && tier.contains("blocks=2"),
        "got {tier:?}"
    );

    // ...and a request extending the pre-seeded tokens finds it there
    // (tier hit on the prefill side of the two-phase flow).
    let mut client = Client::connect(server.addr()).unwrap();
    let outs = client.generate(prefix_text, 8, 1, "greedy").unwrap();
    assert_eq!(outs.len(), 1);
    writeln!(writer, "TIER").unwrap();
    let mut tier = String::new();
    reader.read_line(&mut tier).unwrap();
    assert!(tier.contains("hits=1"), "got {tier:?}");
    server.shutdown();
}
