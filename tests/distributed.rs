//! Tensor-parallel integration tests (§4.6): Megatron-style sharded
//! execution must be invisible in outputs across parallel degrees, for
//! every decoding algorithm, including under preemption.

use vllm::core::config::PreemptionMode;
use vllm::core::{CacheConfig, LlmEngine, RequestOutput, SamplingParams, SchedulerConfig};
use vllm::model::{CpuModelExecutor, ModelConfig, TensorParallelExecutor, Transformer};

fn cache(gpu_blocks: usize) -> CacheConfig {
    CacheConfig::new(4, gpu_blocks, gpu_blocks).unwrap()
}

fn sched(mode: PreemptionMode) -> SchedulerConfig {
    SchedulerConfig::new(512, 32, 512)
        .unwrap()
        .with_preemption_mode(mode)
}

fn add_mixed_workload<E: vllm::core::ModelExecutor>(e: &mut LlmEngine<E>) {
    e.add_request("greedy", (1..=9).collect(), SamplingParams::greedy(7))
        .unwrap();
    e.add_request_at(
        "parallel",
        (20..=30).collect(),
        SamplingParams::parallel(3, 6).with_seed(5),
        1e-6,
    )
    .unwrap();
    e.add_request_at(
        "beam",
        (40..=52).collect(),
        SamplingParams::beam(3, 6),
        2e-6,
    )
    .unwrap();
}

fn normalize(mut outs: Vec<RequestOutput>) -> Vec<(String, Vec<Vec<u32>>)> {
    outs.sort_by_key(|o| o.request_id.clone());
    outs.into_iter()
        .map(|o| {
            let mut seqs: Vec<Vec<u32>> = o.outputs.into_iter().map(|c| c.tokens).collect();
            seqs.sort();
            (o.request_id, seqs)
        })
        .collect()
}

fn run_serial(gpu_blocks: usize, mode: PreemptionMode) -> Vec<(String, Vec<Vec<u32>>)> {
    let cache = cache(gpu_blocks);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched(mode));
    add_mixed_workload(&mut e);
    normalize(e.run_to_completion().unwrap())
}

fn run_tp(workers: usize, gpu_blocks: usize, mode: PreemptionMode) -> Vec<(String, Vec<Vec<u32>>)> {
    let cache = cache(gpu_blocks);
    let exec = TensorParallelExecutor::new(Transformer::new(ModelConfig::tiny()), workers, &cache);
    let mut e = LlmEngine::new(exec, cache, sched(mode));
    add_mixed_workload(&mut e);
    normalize(e.run_to_completion().unwrap())
}

#[test]
fn tp_matches_serial_mixed_decoding() {
    let reference = run_serial(256, PreemptionMode::Recompute);
    assert_eq!(reference.len(), 3);
    for workers in [1, 2, 4] {
        assert_eq!(
            run_tp(workers, 256, PreemptionMode::Recompute),
            reference,
            "TP={workers} diverged"
        );
    }
}

#[test]
fn tp_transparent_under_swap_preemption() {
    // Small pool: preemption kicks in; the multi-seq groups force swapping.
    let reference = run_serial(256, PreemptionMode::Swap);
    let contended = run_tp(2, 24, PreemptionMode::Swap);
    assert_eq!(contended, reference);
}

#[test]
fn tp_transparent_under_recompute_preemption() {
    let reference = run_serial(256, PreemptionMode::Recompute);
    let contended = run_tp(2, 24, PreemptionMode::Recompute);
    assert_eq!(contended, reference);
}

#[test]
fn tp_prefix_cache_matches_serial() {
    let prefix: Vec<u32> = (60..76).collect();
    let run = |workers: Option<usize>| {
        let cache = cache(128);
        let mut outs = match workers {
            None => {
                let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
                let mut e = LlmEngine::new(exec, cache, sched(PreemptionMode::Recompute));
                e.register_prefix(prefix.clone()).unwrap();
                let mut prompt = prefix.clone();
                prompt.extend([5, 6, 7]);
                e.add_request("r", prompt, SamplingParams::greedy(6))
                    .unwrap();
                e.run_to_completion().unwrap()
            }
            Some(w) => {
                let exec =
                    TensorParallelExecutor::new(Transformer::new(ModelConfig::tiny()), w, &cache);
                let mut e = LlmEngine::new(exec, cache, sched(PreemptionMode::Recompute));
                e.register_prefix(prefix.clone()).unwrap();
                let mut prompt = prefix.clone();
                prompt.extend([5, 6, 7]);
                e.add_request("r", prompt, SamplingParams::greedy(6))
                    .unwrap();
                e.run_to_completion().unwrap()
            }
        };
        outs.pop().unwrap().outputs[0].tokens.clone()
    };
    let serial = run(None);
    assert_eq!(run(Some(2)), serial);
    assert_eq!(run(Some(4)), serial);
}
