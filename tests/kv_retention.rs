//! Tests for the conversation KV-retention extension: promoting a finished
//! request's blocks into the prefix cache without copy or recompute.

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, TokenId};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn engine(gpu_blocks: usize) -> LlmEngine<CpuModelExecutor> {
    let cache = CacheConfig::new(4, gpu_blocks, 0).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512).unwrap();
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    LlmEngine::new(exec, cache, sched)
}

#[test]
fn retained_kv_skips_history_prefill() {
    let mut e = engine(128);
    let prompt: Vec<TokenId> = (1..=14).collect();
    e.add_request("r0", prompt.clone(), SamplingParams::greedy(6))
        .unwrap();
    e.retain_kv("r0");
    let outs = e.run_to_completion().unwrap();
    let reply = outs[0].outputs[0].tokens.clone();
    let tokens_round0 = e.executor().tokens_processed;

    // The promoted prefix pins the computed blocks.
    let pid = e.promoted_prefix("r0").expect("promotion happened");
    assert!(e.scheduler().block_manager().num_allocated_gpu_blocks() > 0);

    // A follow-up prompt extending the conversation skips its prefill.
    let mut follow_up = prompt.clone();
    follow_up.extend(&reply);
    follow_up.extend([90, 91, 92]);
    e.add_request("r1", follow_up.clone(), SamplingParams::greedy(4))
        .unwrap();
    e.step().unwrap();
    // The new tokens computed this round: suffix (< full prompt) + decodes.
    e.run_to_completion().unwrap();
    let tokens_round1 = e.executor().tokens_processed - tokens_round0;
    assert!(
        (tokens_round1 as usize) < follow_up.len(),
        "round 1 computed {tokens_round1} tokens, full prefill would be {}",
        follow_up.len()
    );

    // Releasing the prefix returns every block.
    e.release_prefix(pid).unwrap();
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 128);
}

#[test]
fn retained_reply_matches_unretained() {
    let run = |retain: bool| {
        let mut e = engine(128);
        let prompt: Vec<TokenId> = (1..=10).collect();
        e.add_request("a", prompt.clone(), SamplingParams::greedy(5))
            .unwrap();
        if retain {
            e.retain_kv("a");
        }
        let first = e.run_to_completion().unwrap()[0].outputs[0].tokens.clone();
        let mut follow = prompt;
        follow.extend(&first);
        follow.extend([70, 71]);
        e.add_request("b", follow, SamplingParams::greedy(5))
            .unwrap();
        let second = e.run_to_completion().unwrap()[0].outputs[0].tokens.clone();
        (first, second)
    };
    assert_eq!(run(false), run(true), "retention must not change outputs");
}

#[test]
fn promotion_skipped_when_not_requested() {
    let mut e = engine(64);
    e.add_request("r", (1..=8).collect(), SamplingParams::greedy(3))
        .unwrap();
    e.run_to_completion().unwrap();
    assert!(e.promoted_prefix("r").is_none());
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
}

#[test]
fn release_unknown_prefix_errors() {
    let mut e = engine(64);
    assert!(e.release_prefix(7).is_err());
}

#[test]
fn chained_promotions_release_cleanly() {
    let mut e = engine(256);
    let mut history: Vec<TokenId> = (1..=6).collect();
    let mut prev = None;
    for round in 0..4 {
        let rid = format!("round{round}");
        e.add_request(&*rid, history.clone(), SamplingParams::greedy(4))
            .unwrap();
        e.retain_kv(&*rid);
        let outs = e.run_to_completion().unwrap();
        history.extend(&outs[0].outputs[0].tokens);
        history.push(40 + round as u32);
        if let Some(id) = prev.take() {
            e.release_prefix(id).unwrap();
        }
        prev = e.promoted_prefix(&rid);
        assert!(prev.is_some(), "round {round} must promote");
    }
    e.release_prefix(prev.unwrap()).unwrap();
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 256);
    // Double release fails.
    assert!(e.release_prefix(0).is_err());
}

/// Promotion must survive recompute preemption of the promoting sequence:
/// the keeper is added last so `LatestArrival` evicts it under memory
/// pressure, it re-prefills, finishes, and still promotes blocks that a
/// later release fully returns.
#[test]
fn promotion_survives_recompute_preemption() {
    use vllm::core::{PreemptionMode, VictimPolicy};
    let gpu_blocks = 10;
    let cache = CacheConfig::new(4, gpu_blocks, 0).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512)
        .unwrap()
        .with_preemption_mode(PreemptionMode::Recompute)
        .with_victim_policy(VictimPolicy::LatestArrival);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);

    let filler: Vec<TokenId> = (1..=16).collect();
    e.add_request(
        "filler",
        filler,
        SamplingParams::greedy(16).with_ignore_eos(),
    )
    .unwrap();
    let keeper_prompt: Vec<TokenId> = (101..=112).collect();
    e.add_request(
        "keeper",
        keeper_prompt.clone(),
        SamplingParams::greedy(8).with_ignore_eos(),
    )
    .unwrap();
    e.retain_kv("keeper");

    let outs = e.run_to_completion().unwrap();
    let keeper = outs.iter().find(|o| o.request_id == "keeper").unwrap();
    assert!(
        keeper.num_preemptions > 0,
        "test must exercise preemption of the promoting sequence"
    );
    assert!(e.scheduler().stats().num_recompute_preemptions > 0);

    // Promotion happened despite the preemption and pins blocks.
    let pid = e.promoted_prefix("keeper").expect("keeper promotes");
    assert!(e.scheduler().block_manager().num_allocated_gpu_blocks() > 0);

    // The promoted prefix is usable: a follow-up skips part of its prefill.
    let before = e.executor().tokens_processed;
    let mut follow = keeper_prompt;
    follow.extend(&keeper.outputs[0].tokens);
    follow.extend([90, 91, 92]);
    let follow_len = follow.len();
    e.add_request("followup", follow, SamplingParams::greedy(2))
        .unwrap();
    e.run_to_completion().unwrap();
    let computed = e.executor().tokens_processed - before;
    assert!(
        (computed as usize) < follow_len,
        "follow-up computed {computed} tokens, full prefill would be {follow_len}"
    );

    // Releasing the promoted prefix returns every pinned block.
    e.release_prefix(pid).unwrap();
    assert_eq!(
        e.scheduler().block_manager().num_free_gpu_blocks(),
        gpu_blocks
    );
}

/// Same shape under swap-based preemption: the keeper's blocks go to CPU
/// and back, and promotion still pins the (re-mapped) GPU blocks.
#[test]
fn promotion_survives_swap_preemption() {
    use vllm::core::{PreemptionMode, VictimPolicy};
    let gpu_blocks = 10;
    let cache = CacheConfig::new(4, gpu_blocks, 32).unwrap();
    let sched = SchedulerConfig::new(512, 32, 512)
        .unwrap()
        .with_preemption_mode(PreemptionMode::Swap)
        .with_victim_policy(VictimPolicy::LatestArrival);
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);

    e.add_request(
        "filler",
        (1..=16).collect::<Vec<TokenId>>(),
        SamplingParams::greedy(16).with_ignore_eos(),
    )
    .unwrap();
    e.add_request(
        "keeper",
        (101..=112).collect::<Vec<TokenId>>(),
        SamplingParams::greedy(8).with_ignore_eos(),
    )
    .unwrap();
    e.retain_kv("keeper");

    let outs = e.run_to_completion().unwrap();
    let keeper = outs.iter().find(|o| o.request_id == "keeper").unwrap();
    assert!(keeper.num_preemptions > 0, "keeper must get swapped out");
    assert!(e.scheduler().stats().num_swap_preemptions > 0);

    let pid = e.promoted_prefix("keeper").expect("keeper promotes");
    assert!(e.scheduler().block_manager().num_allocated_gpu_blocks() > 0);
    e.release_prefix(pid).unwrap();
    assert_eq!(
        e.scheduler().block_manager().num_free_gpu_blocks(),
        gpu_blocks
    );
    // Swap space fully drained too.
    assert_eq!(e.scheduler().block_manager().num_free_cpu_blocks(), 32);
}
