//! Parallel sampling (Fig. 8): one prompt, several sampled continuations
//! sharing the prompt's KV blocks with copy-on-write on the last block.
//!
//! Run with: `cargo run --release --example parallel_sampling`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig};

fn main() {
    let cache = CacheConfig::new(16, 256, 0).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let executor = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);

    let tokenizer = ByteTokenizer;
    let prompt = "The quick brown fox jumps over the lazy dog; meanwhile the";
    let n = 4;
    engine
        .add_request(
            "parallel-0",
            tokenizer.encode(prompt),
            SamplingParams::parallel(n, 32).with_seed(7),
        )
        .expect("request accepted");

    // After the prompt step the request forks into `n` sequences that share
    // every prompt block; inspect the sharing before finishing the run.
    engine.step().expect("prompt step");
    let bm = engine.scheduler().block_manager();
    println!(
        "after prefill+fork: {} logical blocks mapped onto {} physical blocks",
        bm.num_logical_gpu_blocks(),
        bm.num_allocated_gpu_blocks()
    );
    println!(
        "block sharing saves {:.1}% of KV memory (Fig. 15 metric)",
        bm.sharing_savings() * 100.0
    );

    let outputs = engine.run_to_completion().expect("generation succeeds");
    for output in &outputs {
        println!(
            "\n{} samples for prompt {:?}:",
            output.outputs.len(),
            prompt
        );
        for (i, completion) in output.outputs.iter().enumerate() {
            println!("  sample {i}: {:?}", tokenizer.decode(&completion.tokens));
        }
    }
    let bm = engine.scheduler().block_manager();
    println!(
        "\ncopy-on-write events: {} (samples diverged out of the shared last block)",
        bm.num_cow_copies()
    );
}
