//! Beam search (Fig. 9): candidates fork and die every step; their KV
//! blocks are shared via reference counts and reclaimed as beams are
//! dropped.
//!
//! Run with: `cargo run --release --example beam_search`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig};

fn main() {
    let cache = CacheConfig::new(16, 256, 0).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let executor = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);

    let tokenizer = ByteTokenizer;
    let prompt = "It is a truth universally acknowledged, that a single";
    let width = 4;
    engine
        .add_request(
            "beam-0",
            tokenizer.encode(prompt),
            SamplingParams::beam(width, 24),
        )
        .expect("request accepted");

    // Track sharing while the beams evolve.
    let mut max_sharing = 0.0f64;
    let mut outputs = Vec::new();
    while engine.has_unfinished() {
        outputs.extend(engine.step().expect("step succeeds"));
        let bm = engine.scheduler().block_manager();
        max_sharing = max_sharing.max(bm.sharing_savings());
    }

    for output in &outputs {
        println!("beam search (k={width}) hypotheses for {prompt:?}, best first:");
        for (i, completion) in output.outputs.iter().enumerate() {
            println!(
                "  #{i} (cum logprob {:8.3}): {:?}",
                completion.cumulative_logprob,
                tokenizer.decode(&completion.tokens)
            );
        }
    }

    let bm = engine.scheduler().block_manager();
    println!(
        "\npeak block sharing: {:.1}% of logical blocks saved (paper reports \
         37.6%-66.3% for beam search workloads)",
        max_sharing * 100.0
    );
    println!("copy-on-write events: {}", bm.num_cow_copies());
    println!(
        "all {} blocks returned to the pool",
        bm.num_free_gpu_blocks()
    );
}
