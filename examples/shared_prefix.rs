//! Shared prefix (§4.4, Fig. 10): a long system prompt is prefilled once,
//! pinned in the prefix cache, and every request mapping it skips the
//! prefix computation and shares its blocks.
//!
//! Run with: `cargo run --release --example shared_prefix`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig};

fn main() {
    let cache = CacheConfig::new(16, 512, 0).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let executor = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);

    let tokenizer = ByteTokenizer;
    let system_prompt = "Translate English to German. Example: sea otter => \
                         Seeotter. peppermint => Pfefferminze. plush girafe => \
                         Plueschgiraffe. Now translate: ";
    let prefix_tokens = tokenizer.encode(system_prompt);
    println!(
        "registering a {}-token shared prefix (provider-side prefill)",
        prefix_tokens.len()
    );
    engine
        .register_prefix(prefix_tokens.clone())
        .expect("prefix pinned");
    let warmup_tokens = engine.executor().tokens_processed;
    println!("prefix warm-up computed {warmup_tokens} tokens once");

    let tasks = ["cheese", "black holes", "the paged attention algorithm"];
    for (i, task) in tasks.iter().enumerate() {
        let mut prompt = prefix_tokens.clone();
        prompt.extend(tokenizer.encode(task).into_iter().skip(1)); // Skip BOS.
        engine
            .add_request(format!("translate-{i}"), prompt, SamplingParams::greedy(16))
            .expect("request accepted");
    }

    let outputs = engine.run_to_completion().expect("generation succeeds");
    for output in &outputs {
        println!(
            "{}: generated {:?}",
            output.request_id,
            tokenizer.decode(&output.outputs[0].tokens)
        );
    }

    let per_request_tokens =
        (engine.executor().tokens_processed - warmup_tokens) as f64 / tasks.len() as f64;
    println!(
        "\nper-request computed tokens: {per_request_tokens:.1} \
         (vs {} if the prefix were recomputed per request)",
        prefix_tokens.len()
    );
    println!(
        "the prefix prefill was skipped on every request; its blocks are \
         shared read-only and split copy-on-write only at the boundary block"
    );
}
