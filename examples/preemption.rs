//! Preemption and recovery (§4.5): run two requests through a KV pool too
//! small for both, once with recomputation and once with swapping, and show
//! that outputs are identical to an uncontended run.
//!
//! Run with: `cargo run --release --example preemption`

use vllm::core::config::PreemptionMode;
use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, TokenId};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn run(
    mode: PreemptionMode,
    gpu_blocks: usize,
    cpu_blocks: usize,
) -> (Vec<Vec<TokenId>>, u64, u64) {
    let cache = CacheConfig::new(4, gpu_blocks, cpu_blocks).expect("valid cache config");
    let sched = SchedulerConfig::new(512, 32, 512)
        .expect("valid scheduler config")
        .with_preemption_mode(mode);
    let executor = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);
    engine
        .add_request("a", (1..=10).collect(), SamplingParams::greedy(12))
        .expect("accepted");
    engine
        .add_request_at("b", (20..=27).collect(), SamplingParams::greedy(12), 1e-6)
        .expect("accepted");
    let mut outs = engine.run_to_completion().expect("completes");
    outs.sort_by(|x, y| x.request_id.cmp(&y.request_id));
    let stats = engine.scheduler().stats();
    (
        outs.into_iter()
            .map(|o| o.outputs[0].tokens.clone())
            .collect(),
        stats.num_recompute_preemptions,
        stats.num_swap_preemptions,
    )
}

fn main() {
    // Uncontended reference: a large pool, no preemption possible.
    let (reference, _, _) = run(PreemptionMode::Recompute, 64, 0);
    println!("reference outputs (no contention): {reference:?}");

    // 7 blocks of 4 slots = 28 KV slots; two requests totalling 42 slots.
    let (recomputed, recomputes, _) = run(PreemptionMode::Recompute, 7, 0);
    println!(
        "\nrecompute mode: {recomputes} recompute-preemptions, outputs \
         identical: {}",
        recomputed == reference
    );

    let (swapped, _, swaps) = run(PreemptionMode::Swap, 7, 16);
    println!(
        "swap mode:      {swaps} swap-preemptions,      outputs \
         identical: {}",
        swapped == reference
    );

    assert_eq!(recomputed, reference, "recomputation must be transparent");
    assert_eq!(swapped, reference, "swapping must be transparent");
    println!(
        "\nboth recovery mechanisms are exact: preemption is invisible in \
         the generated tokens (§4.5)."
    );
}
