//! Mixed decoding methods in one batch (§4.4): vLLM batches requests with
//! different decoding preferences — greedy, parallel sampling, beam search —
//! in the same iterations, because the block-table indirection hides all
//! sharing patterns from the kernel.
//!
//! Run with: `cargo run --release --example mixed_decoding`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, SequenceStatus};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig};

fn main() {
    let cache = CacheConfig::new(16, 256, 64).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(exec, cache, sched);
    let tokenizer = ByteTokenizer;

    engine
        .add_request(
            "greedy",
            tokenizer.encode("the capital of France is"),
            SamplingParams::greedy(16),
        )
        .expect("accepted");
    engine
        .add_request(
            "samples",
            tokenizer.encode("my favorite color is"),
            SamplingParams::parallel(3, 16).with_seed(1),
        )
        .expect("accepted");
    engine
        .add_request(
            "beams",
            tokenizer.encode("in the beginning there was"),
            SamplingParams::beam(4, 16),
        )
        .expect("accepted");

    // Watch one decode iteration carry all three decoding modes at once.
    let mut peak_seqs = 0;
    let mut outputs = Vec::new();
    while engine.has_unfinished() {
        outputs.extend(engine.step().expect("step"));
        let live: usize = engine
            .scheduler()
            .running_groups()
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum();
        peak_seqs = peak_seqs.max(live);
    }

    outputs.sort_by_key(|o| o.request_id.clone());
    for out in &outputs {
        println!("{} ({} outputs):", out.request_id, out.outputs.len());
        for c in &out.outputs {
            println!("  {:?}", tokenizer.decode(&c.tokens));
        }
    }
    println!(
        "\npeak sequences decoded per iteration: {peak_seqs} (1 greedy + 3 \
         samples + 4 beams batched together; existing systems cannot \
         efficiently mix these, §4.4)"
    );
    assert!(peak_seqs >= 8);
}
