//! End-to-end serving demo: start the TCP frontend over the CPU engine,
//! run a few clients against it (greedy, sampling, beam search), then shut
//! down.
//!
//! Run with: `cargo run --release --example server`

use vllm::core::{CacheConfig, LlmEngine, SchedulerConfig};
use vllm::frontend::{Client, Server};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn main() {
    let cache = CacheConfig::new(16, 512, 128).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let engine = LlmEngine::new(exec, cache, sched);

    let server = Server::spawn("127.0.0.1:0", engine).expect("server binds");
    println!("serving on {}", server.addr());

    // Concurrent clients with different decoding modes; the engine batches
    // them through the same iterations.
    let addr = server.addr();
    let clients: Vec<_> = [
        ("greedy", 1, "the meaning of life is"),
        ("sample", 3, "once upon a time"),
        ("beam", 2, "to be or not to be"),
    ]
    .into_iter()
    .map(|(mode, n, prompt)| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let outs = client.generate(prompt, 24, n, mode).expect("generate");
            (mode, prompt, outs)
        })
    })
    .collect();

    for c in clients {
        let (mode, prompt, outs) = c.join().expect("client thread");
        println!("\nmode={mode} prompt={prompt:?}:");
        for o in outs {
            println!(
                "  [{}] (logprob {:8.3}) {:?}",
                o.index, o.cumulative_logprob, o.text
            );
        }
    }
    server.shutdown();
    println!("\nserver shut down cleanly");
}
