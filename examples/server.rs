//! End-to-end serving demo: start the TCP frontend over one or more CPU
//! engine replicas, run a few clients against it (greedy, sampling, beam
//! search), then shut down.
//!
//! Run with: `cargo run --release --example server -- [--replicas N] [--policy NAME]`
//! where NAME is one of `round-robin`, `jsq`, `prefix-affinity`.

use vllm::cluster::{ClusterConfig, RoutePolicy};
use vllm::core::{CacheConfig, LlmEngine, SchedulerConfig};
use vllm::frontend::{Client, GenerateOptions, Server};
use vllm::model::{CpuModelExecutor, ModelConfig};

fn parse_args() -> (usize, RoutePolicy) {
    let mut replicas = 1;
    let mut policy = RoutePolicy::RoundRobin;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--replicas" => {
                let v = args.next().expect("--replicas needs a value");
                replicas = v.parse().expect("--replicas must be a positive integer");
                assert!(replicas >= 1, "--replicas must be at least 1");
            }
            "--policy" => {
                let v = args.next().expect("--policy needs a value");
                policy = v.parse().expect("unknown policy");
            }
            other => panic!("unknown argument {other:?} (use --replicas N / --policy NAME)"),
        }
    }
    (replicas, policy)
}

fn main() {
    let (replicas, policy) = parse_args();
    let engines: Vec<_> = (0..replicas)
        .map(|_| {
            let cache = CacheConfig::new(16, 512, 128).expect("valid cache config");
            let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
            let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
            LlmEngine::new(exec, cache, sched)
        })
        .collect();

    // The typed fleet builder; VLLM_REPLICA_ROLES / VLLM_PREFIX_TIER_BLOCKS
    // layer disaggregated roles and a shared prefix tier on top.
    let cfg = ClusterConfig::new(replicas)
        .with_policy(policy)
        .with_env()
        .expect("valid cluster env");
    let server = Server::spawn_cluster("127.0.0.1:0", engines, cfg).expect("server binds");
    println!(
        "serving on {} ({replicas} replica(s), policy {policy})",
        server.addr()
    );

    // Concurrent clients with different decoding modes; each engine batches
    // its share through the same iterations.
    let addr = server.addr();
    let clients: Vec<_> = [
        ("greedy", 1, "the meaning of life is"),
        ("sample", 3, "once upon a time"),
        ("beam", 2, "to be or not to be"),
    ]
    .into_iter()
    .map(|(mode, n, prompt)| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.hello().expect("protocol negotiation");
            let opts = if mode == "sample" {
                GenerateOptions {
                    temperature: Some(0.8),
                    top_p: Some(0.95),
                    seed: Some(42),
                    ..GenerateOptions::default()
                }
            } else {
                GenerateOptions::default()
            };
            let outs = client
                .generate_with(prompt, 24, n, mode, opts)
                .expect("generate");
            (mode, prompt, outs)
        })
    })
    .collect();

    for c in clients {
        let (mode, prompt, outs) = c.join().expect("client thread");
        println!("\nmode={mode} prompt={prompt:?}:");
        for o in outs {
            println!(
                "  [{}] (logprob {:8.3}) {:?}",
                o.index, o.cumulative_logprob, o.text
            );
        }
    }
    server.shutdown();
    println!("\nserver shut down cleanly");
}
