//! Quickstart: serve a prompt end-to-end on the CPU transformer with paged
//! KV cache management.
//!
//! Run with: `cargo run --release --example quickstart`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig, Transformer};

fn main() {
    // A paged KV cache of 256 blocks × 16 tokens, plus a CPU swap pool.
    let cache = CacheConfig::new(16, 256, 256).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");

    // A small byte-level model with deterministic random weights. The model
    // is untrained — the point is the serving machinery, not the prose.
    let model = Transformer::new(ModelConfig::small());
    let executor = CpuModelExecutor::new(model, &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);

    let tokenizer = ByteTokenizer;
    let prompt = "Four score and seven years ago our";
    println!("prompt: {prompt:?}");

    engine
        .add_request(
            "quickstart-0",
            tokenizer.encode(prompt),
            SamplingParams::parallel(1, 48).with_seed(42),
        )
        .expect("request accepted");

    // The engine runs one iteration per step: a prompt (prefill) step first,
    // then one generation step per output token.
    let outputs = engine.run_to_completion().expect("generation succeeds");
    for output in &outputs {
        for completion in &output.outputs {
            println!(
                "generated {} tokens: {:?}",
                completion.tokens.len(),
                tokenizer.decode(&completion.tokens)
            );
        }
        println!(
            "finished at t={:.3}s after {} preemptions",
            output.finish_time, output.num_preemptions
        );
    }

    let bm = engine.scheduler().block_manager();
    println!(
        "KV pool: {} blocks total, {} free after completion (all returned)",
        bm.num_total_gpu_blocks(),
        bm.num_free_gpu_blocks()
    );
    println!(
        "executor processed {} tokens over {} iterations",
        engine.executor().tokens_processed,
        engine.executor().steps
    );
}
