//! Chatbot serving (§6.5): multi-round conversations where each round's
//! prompt is the truncated history plus the new query. The KV cache is not
//! kept across rounds (as in the paper), so every round is a fresh request
//! against the shared engine.
//!
//! Run with: `cargo run --release --example chatbot`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm::model::{ByteTokenizer, CpuModelExecutor, ModelConfig};

const PROMPT_LIMIT: usize = 256;

fn main() {
    let cache = CacheConfig::new(16, 512, 128).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let exec = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(exec, cache, sched);
    let tokenizer = ByteTokenizer;

    let user_turns = [
        "Hello! What is paged attention?",
        "How does copy-on-write help?",
        "And what happens when memory runs out?",
    ];

    let mut history = String::new();
    for (round, query) in user_turns.iter().enumerate() {
        history.push_str("User: ");
        history.push_str(query);
        history.push_str("\nAssistant: ");

        // Truncate the prompt to the last PROMPT_LIMIT tokens (§6.5 keeps
        // the last 1024; the demo model is smaller).
        let mut prompt = tokenizer.encode(&history);
        if prompt.len() > PROMPT_LIMIT {
            prompt = prompt[prompt.len() - PROMPT_LIMIT..].to_vec();
        }
        let prompt_len = prompt.len();

        engine
            .add_request(
                format!("round-{round}"),
                prompt,
                SamplingParams::parallel(1, 32).with_seed(round as u64),
            )
            .expect("request accepted");
        let outputs = engine.run_to_completion().expect("round completes");
        let reply = tokenizer.decode(&outputs[0].outputs[0].tokens);
        println!("round {round}: prompt {prompt_len} tokens");
        println!("  user:      {query}");
        println!("  assistant: {reply:?}");
        history.push_str(&reply);
        history.push('\n');
    }

    let bm = engine.scheduler().block_manager();
    println!(
        "\nKV pool after the conversation: {}/{} blocks free (nothing kept \
         between rounds, as in the paper)",
        bm.num_free_gpu_blocks(),
        bm.num_total_gpu_blocks()
    );
}
