//! Tensor-parallel serving (§4.6): Megatron-style head sharding with a
//! single centralized block table; per-worker KV pools hold only their
//! heads' slice. Outputs are identical across parallel degrees.
//!
//! Run with: `cargo run --release --example tensor_parallel`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, TokenId};
use vllm::model::{
    ByteTokenizer, CpuModelExecutor, ModelConfig, TensorParallelExecutor, Transformer,
};

fn generate_tp(workers: usize, prompt: &[TokenId]) -> (Vec<TokenId>, u64) {
    let cache = CacheConfig::new(16, 128, 16).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 32, 1024).expect("valid scheduler config");
    let executor =
        TensorParallelExecutor::new(Transformer::new(ModelConfig::small()), workers, &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);
    engine
        .add_request("tp", prompt.to_vec(), SamplingParams::greedy(24))
        .expect("accepted");
    let outs = engine.run_to_completion().expect("completes");
    let all_reduces = engine.executor().num_all_reduces;
    (outs[0].outputs[0].tokens.clone(), all_reduces)
}

fn main() {
    let tokenizer = ByteTokenizer;
    let prompt = tokenizer.encode("We hold these truths to be self-evident");

    // Serial reference.
    let cache = CacheConfig::new(16, 128, 16).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 32, 1024).expect("valid scheduler config");
    let executor = CpuModelExecutor::from_config(ModelConfig::small(), &cache);
    let mut engine = LlmEngine::new(executor, cache, sched);
    engine
        .add_request("serial", prompt.clone(), SamplingParams::greedy(24))
        .expect("accepted");
    let serial = engine.run_to_completion().expect("completes")[0].outputs[0]
        .tokens
        .clone();
    println!("serial executor:   {:?}", tokenizer.decode(&serial));

    for workers in [1, 2, 4, 8] {
        let (tokens, all_reduces) = generate_tp(workers, &prompt);
        println!(
            "TP={workers} workers:   {:?}  (all-reduces: {all_reduces}, identical: {})",
            tokenizer.decode(&tokens),
            tokens == serial
        );
        assert_eq!(
            tokens, serial,
            "tensor-parallel output must match the serial executor"
        );
    }
    println!(
        "\nevery worker saw the same physical block ids (one centralized \
         block table, §4.6) but stored only its attention heads' KV slice."
    );
}
