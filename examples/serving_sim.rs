//! Trace-driven serving simulation: OPT-13B on 1×A100 (Table 1) serving a
//! ShareGPT-like Poisson trace, comparing vLLM against the Orca variants
//! and FasterTransformer (the Fig. 12a setup at two request rates).
//!
//! Run with: `cargo run --release --example serving_sim`

use vllm::baselines::{BatchSystem, FasterTransformerSystem, OrcaSystem, ReservationPolicy};
use vllm::core::config::PreemptionMode;
use vllm::sim::{run_trace, trace_to_requests, CostModel, ServerConfig, VllmSimSystem};
use vllm::workloads::{Dataset, Trace};

fn main() {
    let server = ServerConfig::opt_13b_1gpu();
    println!(
        "server: {} on {}x{} | KV budget {:.1} GB = {} slots",
        server.model.name,
        server.gpu.num_gpus,
        server.gpu.name,
        server.kv_cache_bytes() / 1e9,
        server.max_kv_slots()
    );

    let dataset = Dataset::sharegpt();
    let cost = CostModel::contiguous(server);
    println!(
        "\n{:<20} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "system", "rate", "norm-lat(s)", "p90(s)", "batched", "mem-used%"
    );
    for &rate in &[1.0, 2.0] {
        let trace = Trace::synthesize(&dataset, rate, (rate * 240.0) as usize, 42);
        let requests = trace_to_requests(&trace, 1, false);

        let mut systems: Vec<Box<dyn BatchSystem>> = vec![
            Box::new(VllmSimSystem::new(server, 16, PreemptionMode::Recompute)),
            Box::new(OrcaSystem::new(
                ReservationPolicy::Oracle,
                server.max_kv_slots(),
                2048,
                256,
            )),
            Box::new(OrcaSystem::new(
                ReservationPolicy::Pow2,
                server.max_kv_slots(),
                2048,
                256,
            )),
            Box::new(OrcaSystem::new(
                ReservationPolicy::Max,
                server.max_kv_slots(),
                2048,
                256,
            )),
            Box::new(FasterTransformerSystem::new(server.max_kv_slots(), 2048)),
        ];
        for system in &mut systems {
            let report = run_trace(system.as_mut(), &requests, &cost, rate);
            println!(
                "{:<20} {:>8.1} {:>12.3} {:>12.3} {:>10.1} {:>9.1}%",
                report.system,
                rate,
                report.mean_normalized_latency,
                report.p90_normalized_latency,
                report.avg_running_requests,
                report.mem.used * 100.0
            );
        }
        println!();
    }
    println!(
        "expected shape (Fig. 12a): vLLM sustains the highest rate at low \
         normalized latency; Orca degrades Oracle -> Pow2 -> Max; \
         FasterTransformer saturates first."
    );
}
