//! Extension experiment: keeping the KV cache across chat rounds.
//!
//! The paper's chatbot workload (§6.5) deliberately drops the KV cache
//! between conversation rounds. With the prefix-cache machinery this repo
//! can keep it: after each round, the conversation-so-far is registered as
//! a shared prefix, so the next round's prefill only computes the new user
//! query. This example compares computed prefill tokens and wall time with
//! and without cross-round reuse.
//!
//! Run with: `cargo run --release --example chatbot_kv_reuse`

use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig, TokenId};
use vllm::model::{CpuModelExecutor, ModelConfig};

const ROUNDS: usize = 5;
const QUERY_LEN: usize = 24;
const REPLY_LEN: usize = 16;

fn make_engine() -> LlmEngine<CpuModelExecutor> {
    let cache = CacheConfig::new(16, 512, 128).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 1024).expect("valid scheduler config");
    let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
    LlmEngine::new(exec, cache, sched)
}

fn query_tokens(round: usize) -> Vec<TokenId> {
    (0..QUERY_LEN as u32)
        .map(|i| 1 + (round as u32 * 31 + i) % 100)
        .collect()
}

fn run(reuse: bool) -> (u64, Vec<Vec<TokenId>>) {
    let mut engine = make_engine();
    let mut history: Vec<TokenId> = Vec::new();
    let mut replies = Vec::new();
    let mut prev_prefix = None;
    for round in 0..ROUNDS {
        history.extend(query_tokens(round));
        let request_id = format!("round-{round}");
        engine
            .add_request(
                &*request_id,
                history.clone(),
                SamplingParams::greedy(REPLY_LEN),
            )
            .expect("request accepted");
        if reuse {
            // Promote this round's KV in place when it finishes: no copy,
            // no recompute — the next round's prefill starts where this
            // one ended.
            engine.retain_kv(&*request_id);
        }
        let outs = engine.run_to_completion().expect("round completes");
        let reply = outs[0].outputs[0].tokens.clone();
        history.extend(&reply);
        replies.push(reply);
        if reuse {
            if let Some(id) = prev_prefix.take() {
                engine.release_prefix(id).expect("release prefix");
            }
            prev_prefix = engine.promoted_prefix(&request_id);
        }
    }
    (engine.executor().tokens_processed, replies)
}

fn main() {
    let (tokens_drop, replies_drop) = run(false);
    let (tokens_reuse, replies_reuse) = run(true);

    println!("chat with {ROUNDS} rounds, {QUERY_LEN}-token queries, {REPLY_LEN}-token replies");
    println!("  KV dropped between rounds (paper §6.5): {tokens_drop:>6} computed tokens");
    println!("  KV reused via prefix cache (extension): {tokens_reuse:>6} computed tokens");
    println!(
        "  compute reduction: {:.1}%",
        (1.0 - tokens_reuse as f64 / tokens_drop as f64) * 100.0
    );
    assert_eq!(
        replies_drop, replies_reuse,
        "KV reuse must not change the conversation"
    );
    println!("  replies identical across both modes: true");
    println!(
        "\nnote: the paper declines this optimization because pinned \
         conversation KV competes with other requests for block space; the \
         release_prefix API bounds that cost to one conversation's history."
    );
}
