//! GPU and model profiles reproducing the paper's server configurations
//! (Table 1).

/// Hardware profile of one GPU class (effective, not peak, rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Label, e.g. `"A100-40GB"`.
    pub name: &'static str,
    /// Number of GPUs in the server (tensor-parallel degree).
    pub num_gpus: usize,
    /// Device memory per GPU in bytes.
    pub mem_bytes_per_gpu: f64,
    /// Effective HBM bandwidth per GPU (bytes/s).
    pub hbm_bw: f64,
    /// Effective FP16 throughput per GPU (FLOP/s).
    pub flops: f64,
    /// Effective host↔device bandwidth (bytes/s) for swapping.
    pub pcie_bw: f64,
    /// Fixed latency per host↔device transfer (seconds); small KV blocks
    /// make swaps latency-bound (§7.3).
    pub pcie_latency: f64,
    /// Latency of one all-reduce across the server's GPUs (seconds).
    pub allreduce_latency: f64,
}

/// `n` × A100-40GB (Table 1: OPT-13B and OPT-66B servers).
#[must_use]
pub fn a100_40g(num_gpus: usize) -> GpuSpec {
    GpuSpec {
        name: "A100-40GB",
        num_gpus,
        mem_bytes_per_gpu: 40e9,
        hbm_bw: 1.3e12,
        flops: 140e12,
        pcie_bw: 12e9,
        pcie_latency: 15e-6,
        allreduce_latency: 20e-6,
    }
}

/// `n` × A100-80GB (Table 1: the OPT-175B server).
#[must_use]
pub fn a100_80g(num_gpus: usize) -> GpuSpec {
    GpuSpec {
        name: "A100-80GB",
        num_gpus,
        mem_bytes_per_gpu: 80e9,
        hbm_bw: 1.6e12,
        flops: 140e12,
        pcie_bw: 12e9,
        pcie_latency: 15e-6,
        allreduce_latency: 20e-6,
    }
}

/// `n` × H100-80GB: ~2.3× the FLOPS of an A100 but the same 80 GB memory
/// (§3: "from NVIDIA A100 to H100, the FLOPS increases by more than 2x, but
/// the GPU memory stays at 80GB maximum"). Used by the memory-wall
/// projection experiment.
#[must_use]
pub fn h100_80g(num_gpus: usize) -> GpuSpec {
    GpuSpec {
        name: "H100-80GB",
        num_gpus,
        mem_bytes_per_gpu: 80e9,
        hbm_bw: 2.7e12,
        flops: 320e12,
        pcie_bw: 20e9,
        pcie_latency: 15e-6,
        allreduce_latency: 15e-6,
    }
}

/// Architecture profile of a served model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Label, e.g. `"OPT-13B"`.
    pub name: &'static str,
    /// Parameter count.
    pub n_params: f64,
    /// Decoder layers.
    pub n_layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl ModelProfile {
    /// FP16 weight footprint in bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        2.0 * self.n_params
    }

    /// KV cache bytes per token: `2 (K,V) × hidden × layers × 2 bytes`
    /// (§3: 800 KB/token for OPT-13B).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> f64 {
        2.0 * 2.0 * self.hidden as f64 * self.n_layers as f64
    }
}

/// OPT-13B (Table 1 column 1).
#[must_use]
pub fn opt_13b() -> ModelProfile {
    ModelProfile {
        name: "OPT-13B",
        n_params: 13e9,
        n_layers: 40,
        hidden: 5120,
        max_len: 2048,
    }
}

/// OPT-66B (Table 1 column 2).
#[must_use]
pub fn opt_66b() -> ModelProfile {
    ModelProfile {
        name: "OPT-66B",
        n_params: 66e9,
        n_layers: 64,
        hidden: 9216,
        max_len: 2048,
    }
}

/// OPT-175B (Table 1 column 3).
#[must_use]
pub fn opt_175b() -> ModelProfile {
    ModelProfile {
        name: "OPT-175B",
        n_params: 175e9,
        n_layers: 96,
        hidden: 12288,
        max_len: 2048,
    }
}

/// LLaMA-13B (§6.4's multilingual model; same shape class as OPT-13B).
#[must_use]
pub fn llama_13b() -> ModelProfile {
    ModelProfile {
        name: "LLaMA-13B",
        n_params: 13e9,
        n_layers: 40,
        hidden: 5120,
        max_len: 2048,
    }
}

/// A Table 1 row: model + server pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// The served model.
    pub model: ModelProfile,
    /// The GPU server.
    pub gpu: GpuSpec,
}

/// Fraction of total GPU memory reserved for activations and runtime
/// overhead; the remainder after weights is the KV cache budget (Fig. 1
/// left: weights ~65%, KV ~30%, activations small).
pub const ACTIVATION_RESERVE_FRACTION: f64 = 0.05;

impl ServerConfig {
    /// OPT-13B on 1×A100 (Table 1).
    #[must_use]
    pub fn opt_13b_1gpu() -> Self {
        Self {
            model: opt_13b(),
            gpu: a100_40g(1),
        }
    }

    /// OPT-66B on 4×A100 (Table 1).
    #[must_use]
    pub fn opt_66b_4gpu() -> Self {
        Self {
            model: opt_66b(),
            gpu: a100_40g(4),
        }
    }

    /// OPT-175B on 8×A100-80GB (Table 1).
    #[must_use]
    pub fn opt_175b_8gpu() -> Self {
        Self {
            model: opt_175b(),
            gpu: a100_80g(8),
        }
    }

    /// OPT-66B on 2×H100-80GB (memory-wall projection; same memory as
    /// 4×A100-40GB but ~2.3× the compute).
    #[must_use]
    pub fn opt_66b_2xh100() -> Self {
        Self {
            model: opt_66b(),
            gpu: h100_80g(2),
        }
    }

    /// LLaMA-13B on 1×A100 (§6.4).
    #[must_use]
    pub fn llama_13b_1gpu() -> Self {
        Self {
            model: llama_13b(),
            gpu: a100_40g(1),
        }
    }

    /// Total server memory in bytes.
    #[must_use]
    pub fn total_mem_bytes(&self) -> f64 {
        self.gpu.mem_bytes_per_gpu * self.gpu.num_gpus as f64
    }

    /// Memory budget for the KV cache (Table 1 "Memory for KV cache").
    #[must_use]
    pub fn kv_cache_bytes(&self) -> f64 {
        let total = self.total_mem_bytes();
        (total - self.model.weight_bytes() - ACTIVATION_RESERVE_FRACTION * total).max(0.0)
    }

    /// Maximum number of KV token slots (Table 1 "Max. # KV cache slots").
    #[must_use]
    pub fn max_kv_slots(&self) -> usize {
        (self.kv_cache_bytes() / self.model.kv_bytes_per_token()) as usize
    }

    /// Number of paged KV blocks for a given block size.
    #[must_use]
    pub fn num_gpu_blocks(&self, block_size: usize) -> usize {
        self.max_kv_slots() / block_size
    }

    /// Bytes of one KV block.
    #[must_use]
    pub fn block_bytes(&self, block_size: usize) -> f64 {
        block_size as f64 * self.model.kv_bytes_per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_13b_kv_bytes_matches_paper() {
        // §3: "the KV cache of a single token demands 800 KB" for OPT-13B.
        assert_eq!(opt_13b().kv_bytes_per_token(), 819_200.0);
    }

    #[test]
    fn table1_weight_sizes() {
        assert!((opt_13b().weight_bytes() - 26e9).abs() < 1e6);
        assert!((opt_66b().weight_bytes() - 132e9).abs() < 1e6);
        // Paper lists 346 GB for 175B; 2 bytes × 175e9 = 350 GB (2% off).
        assert!((opt_175b().weight_bytes() - 350e9).abs() < 1e6);
    }

    #[test]
    fn table1_kv_slot_counts_within_tolerance() {
        // Paper: 15.7K / 9.7K / 60.1K slots. Our byte-level derivation with
        // a 5% activation reserve lands within ~15%.
        let s13 = ServerConfig::opt_13b_1gpu().max_kv_slots();
        assert!((13_000..=17_000).contains(&s13), "13B slots {s13}");
        let s66 = ServerConfig::opt_66b_4gpu().max_kv_slots();
        assert!((8_000..=11_000).contains(&s66), "66B slots {s66}");
        let s175 = ServerConfig::opt_175b_8gpu().max_kv_slots();
        assert!((51_000..=66_000).contains(&s175), "175B slots {s175}");
    }

    #[test]
    fn kv_budget_positive_and_bounded() {
        for cfg in [
            ServerConfig::opt_13b_1gpu(),
            ServerConfig::opt_66b_4gpu(),
            ServerConfig::opt_175b_8gpu(),
            ServerConfig::llama_13b_1gpu(),
        ] {
            assert!(cfg.kv_cache_bytes() > 0.0);
            assert!(cfg.kv_cache_bytes() < cfg.total_mem_bytes());
            assert!(cfg.num_gpu_blocks(16) > 100);
        }
    }
}
