//! The vLLM side of the simulation: the *real* engine (scheduler, block
//! manager, copy-on-write, preemption, beam planner) driven by a cost-model
//! executor that scripts token values and models iteration latency.
//!
//! Memory behaviour is therefore exact — every block allocation, fork,
//! copy-on-write and swap happens in the same code the numeric backend
//! uses — and only the iteration *duration* is modeled.

use vllm_baselines::types::{
    BatchSystem, FinishedRequest, MemorySnapshot, SimRequest, StepWork, SystemExtra, SystemStep,
};
use vllm_core::config::{CacheConfig, PreemptionMode, SchedulerConfig};
use vllm_core::engine::LlmEngine;
use vllm_core::error::Result;
use vllm_core::executor::{KernelTiming, ModelExecutor, SeqStepOutput, StepResult};
use vllm_core::plan::StepPlan;
use vllm_core::sampling::{SamplingParams, TokenId};
use vllm_core::sequence::SequenceStatus;

use crate::cost::CostModel;
use crate::gpu::ServerConfig;

/// Vocabulary used for scripted tokens.
const SIM_VOCAB: u64 = 50_000;

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(21) ^ c.rotate_left(43) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic prompt tokens for a simulated request.
#[must_use]
pub fn sim_prompt_tokens(request_id: u64, len: usize) -> Vec<TokenId> {
    (0..len as u64)
        .map(|i| (hash3(request_id, i, 7) % SIM_VOCAB) as TokenId)
        .collect()
}

/// Cached telemetry handles for the simulated executor.
#[derive(Debug, Clone)]
struct SimExecutorTelemetry {
    forward_seconds: vllm_telemetry::Histogram,
    tokens_total: vllm_telemetry::Counter,
    steps_total: vllm_telemetry::Counter,
}

/// Executor that models latency and scripts token values.
#[derive(Debug)]
pub struct SimExecutor {
    /// The latency model.
    pub cost: CostModel,
    /// Work content of the most recent step (inspected by the adapter).
    pub last_work: StepWork,
    /// Cumulative modeled GPU time.
    pub busy_time: f64,
    telemetry: Option<SimExecutorTelemetry>,
}

impl SimExecutor {
    /// Creates an executor over a cost model.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        Self {
            cost,
            last_work: StepWork::default(),
            busy_time: 0.0,
            telemetry: None,
        }
    }
}

impl ModelExecutor for SimExecutor {
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult> {
        let mut work = StepWork::default();
        // Chunked-prefill plans mix prompt chunks with decode items, so the
        // step-wide `is_prompt_run` flag no longer classifies items; charge
        // each item by its own shape (a chunk costs only its new rows, not
        // the whole prompt). Plans without chunks keep the legacy step-wide
        // classification bit-for-bit.
        let has_chunks = plan.items.iter().any(|item| item.chunked);
        for item in &plan.items {
            let suffix = item.tokens.len() - item.num_cached_tokens.min(item.tokens.len() - 1);
            let is_prefill = if has_chunks {
                item.chunked || suffix > 1
            } else {
                plan.is_prompt_run
            };
            if is_prefill {
                work.prefill_tokens.push(suffix);
                if has_chunks {
                    // Charge chunk rows against the context they attend to
                    // (legacy plans keep the n × n convention untouched).
                    work.prefill_contexts.push(item.tokens.len());
                }
            } else {
                work.decode_contexts.push(item.context_len());
            }
        }
        // Defragmentation migrations cost one block copy each, same as CoW.
        work.copied_tokens =
            (plan.cache_ops.copies.len() + plan.cache_ops.moves.len()) * plan.block_size;
        // KV-handoff installs move one block over the interconnect each,
        // modeled at swap-transfer cost.
        work.swapped_blocks = plan.cache_ops.swap_in.len()
            + plan.cache_ops.swap_out.len()
            + plan.cache_ops.installs.len();
        let elapsed = self.cost.step_latency(&work);
        self.busy_time += elapsed;

        let outputs = plan
            .items
            .iter()
            .map(|item| {
                let pos = item.context_len() as u64;
                let mut candidates: Vec<(TokenId, f32)> = (0..item.num_candidates as u64)
                    .map(|c| {
                        let token = (hash3(item.seq_id, pos, c) % SIM_VOCAB) as TokenId;
                        // Pseudo-random candidate scores drive realistic
                        // beam reshuffling (Fig. 9 dynamics).
                        let u = (hash3(item.seq_id ^ 0xabcd, pos, c) % 10_000) as f32 / 10_000.0;
                        (token, -0.05 - 2.0 * u * u)
                    })
                    .collect();
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                SeqStepOutput {
                    seq_id: item.seq_id,
                    candidates,
                }
            })
            .collect();
        self.last_work = work;
        if let Some(t) = &self.telemetry {
            t.forward_seconds.observe(elapsed);
            t.tokens_total.inc_by(plan.num_tokens() as u64);
            t.steps_total.inc();
        }
        Ok(StepResult {
            outputs,
            elapsed,
            kernels: vec![KernelTiming {
                name: "forward".to_string(),
                seconds: elapsed,
            }],
        })
    }

    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<vllm_telemetry::Telemetry>) {
        let r = telemetry.registry();
        self.telemetry = Some(SimExecutorTelemetry {
            forward_seconds: r.histogram(
                "vllm_executor_forward_seconds",
                "Modeled GPU time per executed step (simulated backend).",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            tokens_total: r.counter(
                "vllm_executor_tokens_total",
                "Tokens run through the model executor.",
            ),
            steps_total: r.counter(
                "vllm_executor_steps_total",
                "Iterations executed by the model executor.",
            ),
        });
    }

    fn backend_label(&self) -> &str {
        "sim"
    }
}

/// vLLM under simulation: the real engine behind the [`BatchSystem`] driver
/// interface.
#[derive(Debug)]
pub struct VllmSimSystem {
    engine: LlmEngine<SimExecutor>,
    label: String,
    /// Tokens every incoming prompt starts with (§6.4 translation
    /// workload); requests are built as `prefix + per-request tokens`.
    shared_prefix: Vec<TokenId>,
}

impl VllmSimSystem {
    /// Builds a simulated vLLM server for a Table 1 configuration.
    ///
    /// The CPU swap pool is sized at the GPU pool (the §4.5 bound makes a
    /// larger pool pointless).
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields no KV blocks.
    #[must_use]
    pub fn new(server: ServerConfig, block_size: usize, preemption: PreemptionMode) -> Self {
        Self::with_watermark(
            server,
            block_size,
            preemption,
            vllm_core::config::DEFAULT_WATERMARK,
        )
    }

    /// Builds a simulated vLLM server with a custom admission watermark
    /// (ablation; see `CacheConfig::watermark`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_watermark(
        server: ServerConfig,
        block_size: usize,
        preemption: PreemptionMode,
        watermark: f64,
    ) -> Self {
        Self::with_options(
            server,
            block_size,
            preemption,
            watermark,
            vllm_core::config::VictimPolicy::LatestArrival,
        )
    }

    /// Builds a simulated vLLM server with every scheduler knob exposed
    /// (watermark and preemption-victim policy ablations).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_options(
        server: ServerConfig,
        block_size: usize,
        preemption: PreemptionMode,
        watermark: f64,
        victim_policy: vllm_core::config::VictimPolicy,
    ) -> Self {
        let num_blocks = server.num_gpu_blocks(block_size);
        let cache = CacheConfig::new(block_size, num_blocks, num_blocks)
            .expect("valid cache config")
            .with_watermark(watermark)
            .expect("valid watermark");
        let max_len = server.model.max_len;
        let sched = SchedulerConfig::new(max_len.max(2560), 256, max_len)
            .expect("valid scheduler config")
            .with_preemption_mode(preemption)
            .with_victim_policy(victim_policy);
        let exec = SimExecutor::new(CostModel::paged(server, block_size));
        Self {
            engine: LlmEngine::new(exec, cache, sched),
            label: "vLLM".to_string(),
            shared_prefix: Vec::new(),
        }
    }

    /// Overrides the display label (ablation runs).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Disables block sharing between forked sequences (ablation): forks
    /// copy blocks eagerly, as a contiguous-KV system must.
    #[must_use]
    pub fn without_sharing(mut self) -> Self {
        self.engine.set_block_sharing(false);
        self.label = "vLLM (no sharing)".to_string();
        self
    }

    /// Enables scheduler-budgeted chunked prefill: each step carries at most
    /// `budget` prompt tokens on top of the running decodes, so long prompts
    /// stream in as chunks instead of monopolizing whole iterations.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn with_chunked_prefill(mut self, budget: usize) -> Self {
        assert!(budget > 0, "step token budget must be positive");
        self.engine.set_step_token_budget(Some(budget));
        self.label = "vLLM (chunked)".to_string();
        self
    }

    /// Turns the fixed pool into an elastic one: the GPU pool starts
    /// deflated at `min_fraction` of the configured budget and an
    /// [`vllm_core::elastic::ElasticController`] inflates/deflates it
    /// between that floor and the full budget as pressure shifts.
    ///
    /// # Panics
    ///
    /// Panics if `min_fraction` yields an invalid elastic band.
    #[must_use]
    pub fn with_elastic(mut self, min_fraction: f64) -> Self {
        use vllm_core::elastic::{ElasticConfig, ElasticController};
        let total = self.engine.cache_config().num_gpu_blocks;
        let cpu = self.engine.cache_config().num_cpu_blocks;
        let min = ((total as f64 * min_fraction.clamp(0.0, 1.0)) as usize).max(1);
        let cfg = ElasticConfig::new(min, total).expect("valid elastic band");
        self.engine
            .resize_pools(min, cpu)
            .expect("deflate fresh pool");
        self.engine.set_elastic(Some(ElasticController::new(cfg)));
        self.label = "vLLM (elastic)".to_string();
        self
    }

    /// The wrapped engine (metrics, prefix registration).
    #[must_use]
    pub fn engine(&self) -> &LlmEngine<SimExecutor> {
        &self.engine
    }

    /// The wrapped engine, mutably.
    pub fn engine_mut(&mut self) -> &mut LlmEngine<SimExecutor> {
        &mut self.engine
    }

    /// Registers a shared prefix (§6.4 experiments).
    ///
    /// # Panics
    ///
    /// Panics if the prefix cannot be pinned.
    pub fn register_prefix(&mut self, tokens: Vec<TokenId>) {
        self.engine.register_prefix(tokens).expect("prefix fits");
    }

    /// Makes every future request's prompt start with `tokens`. When
    /// `cached` is true, the prefix is also pinned in the prefix cache so
    /// requests share its blocks and skip its prefill (§6.4; the uncached
    /// variant measures the same workload without the optimization).
    pub fn set_shared_prefix(&mut self, tokens: Vec<TokenId>, cached: bool) {
        if cached {
            self.register_prefix(tokens.clone());
        }
        self.shared_prefix = tokens;
    }
}

impl BatchSystem for VllmSimSystem {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn enqueue(&mut self, req: SimRequest) {
        let mut params = if req.is_beam {
            SamplingParams::beam(req.n_seqs, req.output_len)
        } else if req.n_seqs > 1 {
            SamplingParams::parallel(req.n_seqs, req.output_len)
        } else {
            SamplingParams::greedy(req.output_len)
        };
        params = params.with_ignore_eos().with_seed(req.id);
        let prompt = if self.shared_prefix.is_empty() {
            sim_prompt_tokens(req.id, req.prompt_len)
        } else {
            // `prompt_len` covers prefix + task input (§6.4 traces).
            let task_len = req
                .prompt_len
                .saturating_sub(self.shared_prefix.len())
                .max(1);
            let mut p = self.shared_prefix.clone();
            p.extend(sim_prompt_tokens(req.id, task_len));
            p
        };
        self.engine
            .add_request_at(req.id.to_string(), prompt, params, req.arrival)
            .expect("valid request");
    }

    fn step(&mut self, now: f64, _cost: &mut dyn FnMut(&StepWork) -> f64) -> Option<SystemStep> {
        if !self.engine.has_unfinished() {
            return None;
        }
        self.engine.advance_clock_to(now);
        let before = self.engine.clock();
        let outs = self.engine.step().expect("engine step");
        let elapsed = self.engine.clock() - before;
        let finished = outs
            .into_iter()
            .map(|o| FinishedRequest {
                id: o.request_id.parse().unwrap_or(u64::MAX),
                arrival: o.arrival_time,
                finish: o.finish_time,
                output_len: o.mean_output_len().round() as usize,
            })
            .collect();
        Some(SystemStep {
            elapsed,
            finished,
            work: self.engine.executor().last_work.clone(),
        })
    }

    fn memory_snapshot(&self) -> MemorySnapshot {
        let bm = self.engine.scheduler().block_manager();
        let bs = bm.block_size();
        let seqs = self
            .engine
            .scheduler()
            .running_groups()
            .iter()
            .flat_map(|g| g.seqs().into_iter());
        let used = bm.used_gpu_slots(seqs);
        let capacity = bm.num_total_gpu_blocks() * bs;
        let allocated = bm.num_allocated_gpu_blocks() * bs;
        MemorySnapshot {
            used,
            reserved: 0,
            internal_frag: allocated.saturating_sub(used),
            external_frag: 0,
            free: capacity - allocated,
            capacity,
        }
    }

    fn num_running_requests(&self) -> usize {
        self.engine.scheduler().num_running()
    }

    fn num_running_seqs(&self) -> usize {
        self.engine
            .scheduler()
            .running_groups()
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum()
    }

    fn has_unfinished(&self) -> bool {
        self.engine.has_unfinished()
    }

    fn extra(&self) -> SystemExtra {
        let stats = self.engine.scheduler().stats();
        SystemExtra {
            preemptions: stats.num_preemptions,
            swap_preemptions: stats.num_swap_preemptions,
            recompute_preemptions: stats.num_recompute_preemptions,
            sharing_savings: self.engine.scheduler().block_manager().sharing_savings(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_server() -> ServerConfig {
        // Shrink the real config so tests run fast.
        let mut cfg = ServerConfig::opt_13b_1gpu();
        cfg.gpu.mem_bytes_per_gpu = 28.5e9; // ~1.3K KV slots.
        cfg
    }

    #[test]
    fn single_request_completes() {
        let mut sys = VllmSimSystem::new(small_server(), 16, PreemptionMode::Recompute);
        sys.enqueue(SimRequest::basic(0, 0.0, 100, 20));
        let mut cost = |_: &StepWork| 0.0;
        let mut now = 0.0;
        let mut finished = Vec::new();
        while sys.has_unfinished() {
            let step = sys.step(now, &mut cost).expect("work pending");
            now += step.elapsed;
            finished.extend(step.finished);
        }
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].output_len, 20);
        assert!(finished[0].finish > 0.0);
        // Pool drained.
        assert_eq!(sys.memory_snapshot().free, sys.memory_snapshot().capacity);
    }

    #[test]
    fn beam_request_shares_blocks() {
        let mut sys = VllmSimSystem::new(small_server(), 16, PreemptionMode::Swap);
        sys.enqueue(SimRequest {
            id: 0,
            arrival: 0.0,
            prompt_len: 200,
            output_len: 40,
            n_seqs: 4,
            is_beam: true,
        });
        let mut cost = |_: &StepWork| 0.0;
        let mut now = 0.0;
        let mut max_sharing = 0.0f64;
        while sys.has_unfinished() {
            let step = sys.step(now, &mut cost).expect("work pending");
            now += step.elapsed;
            max_sharing = max_sharing.max(sys.extra().sharing_savings);
        }
        // 4 beams over a 200-token shared prompt: strong sharing.
        assert!(max_sharing > 0.4, "sharing {max_sharing}");
    }

    #[test]
    fn overload_triggers_preemption() {
        let mut sys = VllmSimSystem::new(small_server(), 16, PreemptionMode::Recompute);
        // ~1.6K slots; 8 requests of 190+1500 ≈ 13K slots needed.
        for i in 0..8 {
            sys.enqueue(SimRequest::basic(i, 0.0, 190, 1500));
        }
        let mut cost = |_: &StepWork| 0.0;
        let mut now = 0.0;
        let mut finished = 0;
        while sys.has_unfinished() {
            let step = sys.step(now, &mut cost).expect("work pending");
            now += step.elapsed.max(1e-9);
            finished += step.finished.len();
        }
        assert_eq!(finished, 8, "all requests must eventually finish");
        assert!(sys.extra().preemptions > 0, "overload must preempt");
    }

    #[test]
    fn chunked_prefill_long_prompt_completes() {
        let mut sys = VllmSimSystem::new(small_server(), 16, PreemptionMode::Recompute)
            .with_chunked_prefill(128);
        sys.enqueue(SimRequest::basic(0, 0.0, 1000, 10));
        let mut cost = |_: &StepWork| 0.0;
        let mut now = 0.0;
        let mut finished = Vec::new();
        let mut prefill_steps = 0;
        while sys.has_unfinished() {
            let step = sys.step(now, &mut cost).expect("work pending");
            if !step.work.prefill_tokens.is_empty() {
                prefill_steps += 1;
                // Each step's prompt work respects the 128-token budget.
                assert!(step.work.prefill_tokens.iter().sum::<usize>() <= 128);
            }
            now += step.elapsed.max(1e-9);
            finished.extend(step.finished);
        }
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].output_len, 10);
        assert_eq!(prefill_steps, 1000usize.div_ceil(128));
        // Pool drained: no leaked blocks after the chunked prefill.
        assert_eq!(sys.memory_snapshot().free, sys.memory_snapshot().capacity);
    }

    #[test]
    fn chunked_prefill_interleaves_decodes_with_chunks() {
        // A short request admitted first keeps decoding while a long
        // prompt's chunks stream in behind it.
        let mut sys = VllmSimSystem::new(small_server(), 16, PreemptionMode::Recompute)
            .with_chunked_prefill(64);
        sys.enqueue(SimRequest::basic(0, 0.0, 32, 200));
        sys.enqueue(SimRequest::basic(1, 0.0, 600, 10));
        let mut cost = |_: &StepWork| 0.0;
        let mut now = 0.0;
        let mut mixed_steps = 0;
        let mut finished = 0;
        while sys.has_unfinished() {
            let step = sys.step(now, &mut cost).expect("work pending");
            if !step.work.prefill_tokens.is_empty() && !step.work.decode_contexts.is_empty() {
                mixed_steps += 1;
            }
            now += step.elapsed.max(1e-9);
            finished += step.finished.len();
        }
        assert_eq!(finished, 2);
        assert!(mixed_steps > 0, "chunks must co-batch with decodes");
        assert_eq!(sys.memory_snapshot().free, sys.memory_snapshot().capacity);
    }

    #[test]
    fn prompt_tokens_deterministic() {
        assert_eq!(sim_prompt_tokens(5, 32), sim_prompt_tokens(5, 32));
        assert_ne!(sim_prompt_tokens(5, 32), sim_prompt_tokens(6, 32));
    }
}
