//! # vllm-sim
//!
//! A discrete-event simulator of the paper's serving testbed (Table 1):
//! A100 server profiles, an analytic per-iteration latency model (weight
//! read, KV read with paged-kernel overhead, compute, all-reduce, PCIe
//! swaps), the *real* vLLM engine driven by a cost-model executor, and a
//! trace driver that aggregates the evaluation's metrics.
//!
//! Memory behaviour in the vLLM path is exact — the same scheduler and
//! block manager as the numeric backend — so capacity effects (who fits how
//! many requests) are reproduced faithfully; only iteration duration is
//! modeled. See DESIGN.md for the substitution argument.

#![warn(missing_docs)]

pub mod cost;
pub mod driver;
pub mod gpu;
pub mod vllm_system;

pub use cost::{CostModel, FIXED_STEP_OVERHEAD, PAGED_KERNEL_OVERHEAD};
pub use driver::{
    run_trace, run_trace_instrumented, run_trace_with_timeline, trace_to_requests, MemFractions,
    RunReport, TimelinePoint,
};
pub use gpu::{
    a100_40g, a100_80g, h100_80g, llama_13b, opt_13b, opt_175b, opt_66b, GpuSpec, ModelProfile,
    ServerConfig, ACTIVATION_RESERVE_FRACTION,
};
pub use vllm_system::{sim_prompt_tokens, SimExecutor, VllmSimSystem};
