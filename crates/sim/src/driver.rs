//! The discrete-event trace driver: injects Poisson arrivals into a
//! [`BatchSystem`], advances virtual time by each iteration's modeled
//! latency, and aggregates the paper's metrics (normalized latency,
//! batch occupancy, memory-waste breakdown).

use vllm_baselines::types::{BatchSystem, SimRequest, StepWork};
use vllm_core::metrics::LatencyTracker;
use vllm_telemetry::{BucketSpec, Counter, Gauge, Histogram, Telemetry};

use crate::cost::CostModel;

/// Cached driver-level telemetry handles (`vllm_sim_*` namespace).
#[derive(Debug)]
struct DriverMetrics {
    steps_total: Counter,
    requests_enqueued_total: Counter,
    requests_finished_total: Counter,
    swapped_blocks_total: Counter,
    copied_tokens_total: Counter,
    step_seconds: Histogram,
    normalized_latency_seconds: Histogram,
    mem_used_fraction: Gauge,
    mem_allocated_fraction: Gauge,
    running_requests: Gauge,
}

impl DriverMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        Self {
            steps_total: r.counter(
                "vllm_sim_steps_total",
                "Simulated iterations driven through the system.",
            ),
            requests_enqueued_total: r.counter(
                "vllm_sim_requests_enqueued_total",
                "Trace requests injected into the system.",
            ),
            requests_finished_total: r.counter(
                "vllm_sim_requests_finished_total",
                "Trace requests that completed.",
            ),
            swapped_blocks_total: r.counter(
                "vllm_sim_swapped_blocks_total",
                "KV blocks moved over the modeled PCIe link.",
            ),
            copied_tokens_total: r.counter(
                "vllm_sim_copied_tokens_total",
                "KV token states copied on device (copy-on-write).",
            ),
            step_seconds: r.histogram(
                "vllm_sim_step_seconds",
                "Modeled latency of each simulated iteration.",
                BucketSpec::seconds(),
            ),
            normalized_latency_seconds: r.histogram(
                "vllm_sim_normalized_latency_seconds",
                "Per-request normalized latency (end-to-end seconds per output token, paper SS6.1).",
                BucketSpec::seconds(),
            ),
            mem_used_fraction: r.gauge(
                "vllm_sim_mem_used_fraction",
                "Fraction of KV capacity holding token states (latest sample).",
            ),
            mem_allocated_fraction: r.gauge(
                "vllm_sim_mem_allocated_fraction",
                "Fraction of KV capacity allocated to requests (latest sample).",
            ),
            running_requests: r.gauge(
                "vllm_sim_running_requests",
                "Requests currently batched (latest sample).",
            ),
        }
    }
}

/// Time-weighted average memory breakdown, as fractions of KV capacity
/// (the Fig. 2 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemFractions {
    /// Token states (the useful part).
    pub used: f64,
    /// Reserved for future tokens.
    pub reserved: f64,
    /// Internal fragmentation.
    pub internal: f64,
    /// External fragmentation.
    pub external: f64,
    /// Unallocated.
    pub free: f64,
}

/// One sampled point of the memory/batch timeline (Fig. 1 right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Virtual time of the sample.
    pub t: f64,
    /// Fraction of KV capacity holding token states.
    pub used_frac: f64,
    /// Fraction of KV capacity allocated to requests (any category).
    pub allocated_frac: f64,
    /// Requests currently running.
    pub running_requests: usize,
}

/// Aggregated outcome of one trace run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System label.
    pub system: String,
    /// Offered request rate (req/s) recorded by the caller.
    pub rate: f64,
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Number that completed.
    pub num_finished: usize,
    /// Mean normalized latency (s/token, §6.1).
    pub mean_normalized_latency: f64,
    /// Median normalized latency.
    pub p50_normalized_latency: f64,
    /// 90th percentile normalized latency.
    pub p90_normalized_latency: f64,
    /// 99th percentile normalized latency.
    pub p99_normalized_latency: f64,
    /// Completed requests per second of makespan.
    pub throughput: f64,
    /// Virtual makespan of the run.
    pub duration: f64,
    /// Time-weighted average number of batched requests (Fig. 13a).
    pub avg_running_requests: f64,
    /// Time-weighted average number of batched sequences.
    pub avg_running_seqs: f64,
    /// Memory breakdown averaged over busy time (Fig. 2).
    pub mem: MemFractions,
    /// Time-weighted average block-sharing savings (Fig. 15; vLLM only).
    pub avg_sharing_savings: f64,
    /// Preemption counters (vLLM only).
    pub preemptions: u64,
    /// Swap-recovered preemptions.
    pub swap_preemptions: u64,
    /// Recompute-recovered preemptions.
    pub recompute_preemptions: u64,
    /// Total KV blocks moved over PCIe.
    pub swapped_blocks: u64,
    /// Total KV token-states copied on device.
    pub copied_tokens: u64,
    /// Periodic memory/batch samples (empty unless requested).
    pub timeline: Vec<TimelinePoint>,
}

/// Upper bound on iterations per run (runaway guard).
const MAX_STEPS: u64 = 50_000_000;

/// Replays `requests` (sorted by arrival) against `system`, modeling
/// iteration latency with `cost`.
///
/// The vLLM adapter carries its own cost model and ignores the closure;
/// baselines use it directly. The run ends when every request finishes.
///
/// # Panics
///
/// Panics if the system stalls without finishing its work (driver bug
/// guard).
pub fn run_trace(
    system: &mut dyn BatchSystem,
    requests: &[SimRequest],
    cost: &CostModel,
    rate: f64,
) -> RunReport {
    run_trace_with_timeline(system, requests, cost, rate, f64::INFINITY)
}

/// Like [`run_trace`], additionally sampling the memory/batch state every
/// `sample_dt` virtual seconds into [`RunReport::timeline`] (Fig. 1 right's
/// growth curves).
///
/// # Panics
///
/// Panics if the system stalls without finishing its work.
pub fn run_trace_with_timeline(
    system: &mut dyn BatchSystem,
    requests: &[SimRequest],
    cost: &CostModel,
    rate: f64,
    sample_dt: f64,
) -> RunReport {
    run_trace_instrumented(system, requests, cost, rate, sample_dt, None)
}

/// Like [`run_trace_with_timeline`], additionally streaming driver-level
/// metrics (`vllm_sim_*` counters, per-step latency histograms, and memory
/// gauges) into `telemetry` as the run progresses.
///
/// # Panics
///
/// Panics if the system stalls without finishing its work.
pub fn run_trace_instrumented(
    system: &mut dyn BatchSystem,
    requests: &[SimRequest],
    cost: &CostModel,
    rate: f64,
    sample_dt: f64,
    telemetry: Option<&Telemetry>,
) -> RunReport {
    let tm = telemetry.map(DriverMetrics::register);
    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut latency = LatencyTracker::new();
    let mut steps: u64 = 0;

    // Time-weighted accumulators.
    let mut busy_time = 0.0f64;
    let mut w_used = 0.0;
    let mut w_reserved = 0.0;
    let mut w_internal = 0.0;
    let mut w_external = 0.0;
    let mut w_free = 0.0;
    let mut w_running_reqs = 0.0;
    let mut w_running_seqs = 0.0;
    let mut w_sharing = 0.0;
    let mut total_time = 0.0;
    let mut swapped_blocks = 0u64;
    let mut copied_tokens = 0u64;
    let mut timeline = Vec::new();
    let mut next_sample = 0.0f64;

    let mut cost_fn = |w: &StepWork| cost.step_latency(w);
    loop {
        while next < requests.len() && requests[next].arrival <= clock {
            system.enqueue(requests[next]);
            next += 1;
            if let Some(tm) = &tm {
                tm.requests_enqueued_total.inc();
            }
        }
        match system.step(clock, &mut cost_fn) {
            Some(step) => {
                steps += 1;
                assert!(steps < MAX_STEPS, "simulation exceeded step budget");
                let dt = step.elapsed.max(1e-9);
                clock += step.elapsed;
                total_time += dt;
                for f in &step.finished {
                    latency.record(f.arrival, f.finish, f.output_len as f64);
                    if let Some(tm) = &tm {
                        tm.requests_finished_total.inc();
                        let per_token = (f.finish - f.arrival) / (f.output_len.max(1) as f64);
                        tm.normalized_latency_seconds.observe(per_token);
                    }
                }
                swapped_blocks += step.work.swapped_blocks as u64;
                copied_tokens += step.work.copied_tokens as u64;

                let snap = system.memory_snapshot();
                let cap = snap.capacity.max(1) as f64;
                if let Some(tm) = &tm {
                    tm.steps_total.inc();
                    tm.step_seconds.observe(step.elapsed);
                    tm.swapped_blocks_total
                        .inc_by(step.work.swapped_blocks as u64);
                    tm.copied_tokens_total
                        .inc_by(step.work.copied_tokens as u64);
                    tm.mem_used_fraction.set(snap.used as f64 / cap);
                    tm.mem_allocated_fraction
                        .set((snap.capacity - snap.free) as f64 / cap);
                    tm.running_requests
                        .set(system.num_running_requests() as f64);
                }
                if clock >= next_sample && sample_dt.is_finite() {
                    timeline.push(TimelinePoint {
                        t: clock,
                        used_frac: snap.used as f64 / cap,
                        allocated_frac: (snap.capacity - snap.free) as f64 / cap,
                        running_requests: system.num_running_requests(),
                    });
                    next_sample = clock + sample_dt;
                }
                if snap.capacity > snap.free {
                    busy_time += dt;
                    w_used += dt * snap.used as f64 / cap;
                    w_reserved += dt * snap.reserved as f64 / cap;
                    w_internal += dt * snap.internal_frag as f64 / cap;
                    w_external += dt * snap.external_frag as f64 / cap;
                    w_free += dt * snap.free as f64 / cap;
                    w_sharing += dt * system.extra().sharing_savings;
                }
                w_running_reqs += dt * system.num_running_requests() as f64;
                w_running_seqs += dt * system.num_running_seqs() as f64;
            }
            None => {
                if next < requests.len() {
                    clock = clock.max(requests[next].arrival);
                } else {
                    break;
                }
            }
        }
    }

    if let Some(t) = telemetry {
        // One untraced envelope span over the whole run, so sim runs show up
        // on the exported timeline next to engine-level spans.
        t.spans().record(vllm_telemetry::Span {
            trace_id: 0,
            span_id: 0,
            parent_span_id: 0,
            name: "sim.run".to_string(),
            start: 0.0,
            end: clock,
            attrs: vec![
                ("system".to_string(), system.name().to_string()),
                ("requests".to_string(), requests.len().to_string()),
            ],
        });
    }

    let extra = system.extra();
    let busy = busy_time.max(1e-12);
    let total = total_time.max(1e-12);
    RunReport {
        system: system.name(),
        rate,
        num_requests: requests.len(),
        num_finished: latency.num_requests(),
        mean_normalized_latency: latency.mean_normalized_latency().unwrap_or(0.0),
        p50_normalized_latency: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
        p90_normalized_latency: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
        p99_normalized_latency: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
        throughput: latency.num_requests() as f64 / clock.max(1e-12),
        duration: clock,
        avg_running_requests: w_running_reqs / total,
        avg_running_seqs: w_running_seqs / total,
        mem: MemFractions {
            used: w_used / busy,
            reserved: w_reserved / busy,
            internal: w_internal / busy,
            external: w_external / busy,
            free: w_free / busy,
        },
        avg_sharing_savings: w_sharing / busy,
        preemptions: extra.preemptions,
        swap_preemptions: extra.swap_preemptions,
        recompute_preemptions: extra.recompute_preemptions,
        swapped_blocks,
        copied_tokens,
        timeline,
    }
}

/// Converts a workload trace into driver requests.
#[must_use]
pub fn trace_to_requests(
    trace: &vllm_workloads::Trace,
    n_seqs: usize,
    is_beam: bool,
) -> Vec<SimRequest> {
    trace
        .requests
        .iter()
        .map(|r| SimRequest {
            id: r.id,
            arrival: r.arrival,
            prompt_len: r.input_len,
            output_len: r.output_len,
            n_seqs,
            is_beam,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::ServerConfig;
    use crate::vllm_system::VllmSimSystem;
    use vllm_baselines::{FasterTransformerSystem, OrcaSystem, ReservationPolicy};
    use vllm_core::config::PreemptionMode;
    use vllm_workloads::{Dataset, Trace};

    fn small_server() -> ServerConfig {
        let mut cfg = ServerConfig::opt_13b_1gpu();
        cfg.gpu.mem_bytes_per_gpu = 30e9; // ~4.6K KV slots → fast tests.
        cfg
    }

    fn small_trace(rate: f64, n: usize) -> Vec<SimRequest> {
        let trace = Trace::synthesize(&Dataset::alpaca(), rate, n, 42);
        trace_to_requests(&trace, 1, false)
    }

    #[test]
    fn all_systems_complete_a_light_trace() {
        let server = small_server();
        let reqs = small_trace(2.0, 60);
        let cost = CostModel::contiguous(server);

        let mut vllm = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        let r = run_trace(&mut vllm, &reqs, &cost, 2.0);
        assert_eq!(r.num_finished, 60);
        assert!(r.mean_normalized_latency > 0.0);

        let slots = server.max_kv_slots();
        for policy in [
            ReservationPolicy::Oracle,
            ReservationPolicy::Pow2,
            ReservationPolicy::Max,
        ] {
            let mut orca = OrcaSystem::new(policy, slots, 2048, 256);
            let r = run_trace(&mut orca, &reqs, &cost, 2.0);
            assert_eq!(r.num_finished, 60, "{policy:?}");
        }

        let mut ft = FasterTransformerSystem::new(slots, 2048);
        let r = run_trace(&mut ft, &reqs, &cost, 2.0);
        assert_eq!(r.num_finished, 60);
    }

    #[test]
    fn vllm_beats_baselines_at_load() {
        // At a rate that saturates Orca (Max), vLLM keeps latency lower.
        let server = small_server();
        let trace = Trace::synthesize(&Dataset::sharegpt(), 0.6, 120, 7);
        let reqs = trace_to_requests(&trace, 1, false);
        let cost = CostModel::contiguous(server);

        let mut vllm = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        let rv = run_trace(&mut vllm, &reqs, &cost, 0.6);

        let mut orca_max =
            OrcaSystem::new(ReservationPolicy::Max, server.max_kv_slots(), 2048, 256);
        let rm = run_trace(&mut orca_max, &reqs, &cost, 0.6);

        let mut ft = FasterTransformerSystem::new(server.max_kv_slots(), 2048);
        let rf = run_trace(&mut ft, &reqs, &cost, 0.6);

        assert!(
            rv.mean_normalized_latency < rm.mean_normalized_latency,
            "vLLM {:.3} vs Orca(Max) {:.3}",
            rv.mean_normalized_latency,
            rm.mean_normalized_latency
        );
        assert!(
            rm.mean_normalized_latency <= rf.mean_normalized_latency * 1.05,
            "Orca(Max) {:.3} vs FT {:.3}",
            rm.mean_normalized_latency,
            rf.mean_normalized_latency
        );
        // vLLM's memory utilization of allocated space must be near 1.
        assert!(rv.mem.used / (rv.mem.used + rv.mem.internal) > 0.85);
        // Orca(Max) wastes most of its allocation.
        assert!(rm.mem.used < (rm.mem.used + rm.mem.reserved + rm.mem.internal) * 0.6);
    }

    #[test]
    fn capacity_curves_paged_elastic_contiguous() {
        // Fig. 12-style replay at one rate: fixed-pool paged, elastic paged,
        // and the vAttention-style contiguous baseline over the same trace
        // and memory budget.
        let server = small_server();
        let reqs = small_trace(2.0, 60);
        let cost = CostModel::contiguous(server);

        let mut paged = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        let rp = run_trace_with_timeline(&mut paged, &reqs, &cost, 2.0, 5.0);
        assert_eq!(rp.num_finished, 60);

        let mut elastic =
            VllmSimSystem::new(server, 16, PreemptionMode::Recompute).with_elastic(0.25);
        let re = run_trace_with_timeline(&mut elastic, &reqs, &cost, 2.0, 5.0);
        assert_eq!(re.num_finished, 60);
        assert!(re.system.contains("elastic"));

        let mut contig =
            vllm_baselines::ContiguousSystem::new(server.max_kv_slots(), 128, 2048, 256);
        let rc = run_trace_with_timeline(&mut contig, &reqs, &cost, 2.0, 5.0);
        assert_eq!(rc.num_finished, 60);
        // Commit-on-demand has no allocator holes; all waste is
        // page-rounding internal fragmentation.
        assert!(rc.mem.external.abs() < 1e-12);
        assert!(rc.mem.internal > 0.0);

        // The elastic pool starts deflated and inflates under load, so the
        // same workload runs at an equal-or-smaller committed footprint.
        assert!(!rp.timeline.is_empty() && !re.timeline.is_empty());
        // Both paged systems batch comparably on a light trace.
        assert!(re.avg_running_requests > 0.0);
    }

    #[test]
    fn idle_gaps_fast_forward() {
        let server = small_server();
        let cost = CostModel::contiguous(server);
        let reqs = vec![
            SimRequest::basic(0, 0.0, 20, 5),
            SimRequest::basic(1, 1000.0, 20, 5),
        ];
        let mut vllm = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        let r = run_trace(&mut vllm, &reqs, &cost, 0.001);
        assert_eq!(r.num_finished, 2);
        assert!(r.duration >= 1000.0);
    }
}
