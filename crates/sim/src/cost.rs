//! Analytic per-iteration latency model for the simulated servers.
//!
//! One iteration's time is the maximum of its memory traffic (weight read +
//! KV cache read) and its compute (linear layers + attention), plus fixed
//! scheduling overhead, tensor-parallel all-reduce latency, KV copy time,
//! and PCIe swap time. The paged-attention kernel overhead measured in
//! §7.1 (20–26% on the attention/KV portion) and the small-block
//! inefficiency of §7.2 apply only to the vLLM configuration; the
//! contiguous baselines read KV at full bandwidth.

use vllm_baselines::types::StepWork;

use crate::gpu::ServerConfig;

/// Relative slowdown of the paged attention kernel at the default block
/// size (Fig. 18a: 20–26% higher latency than FasterTransformer's fused
/// kernel; we use the midpoint).
pub const PAGED_KERNEL_OVERHEAD: f64 = 1.22;

/// Block size at which the paged kernel reaches full memory parallelism
/// (§7.2: 16 is "large enough to efficiently utilize the GPU").
pub const FULL_UTILIZATION_BLOCK_SIZE: f64 = 16.0;

/// Fixed per-iteration overhead (scheduler, sampling, kernel launches).
pub const FIXED_STEP_OVERHEAD: f64 = 5e-3;

/// Latency cost model for one server configuration.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// The modeled server.
    pub server: ServerConfig,
    /// KV block size in tokens (vLLM; baselines ignore it except for swap
    /// granularity).
    pub block_size: usize,
    /// Whether KV reads pay the paged-kernel overhead.
    pub paged: bool,
}

impl CostModel {
    /// A vLLM-style model (paged KV reads).
    #[must_use]
    pub fn paged(server: ServerConfig, block_size: usize) -> Self {
        Self {
            server,
            block_size,
            paged: true,
        }
    }

    /// A contiguous-KV model (Orca / FasterTransformer baselines).
    #[must_use]
    pub fn contiguous(server: ServerConfig) -> Self {
        Self {
            server,
            block_size: 16,
            paged: false,
        }
    }

    /// Multiplier on KV read time from block-table indirection and
    /// reduced memory parallelism at small block sizes (§7.1–7.2).
    #[must_use]
    pub fn paged_kv_factor(&self) -> f64 {
        if !self.paged {
            return 1.0;
        }
        let bs = self.block_size as f64;
        let small_block_penalty = (FULL_UTILIZATION_BLOCK_SIZE / bs - 1.0).max(0.0);
        PAGED_KERNEL_OVERHEAD * (1.0 + 0.8 * small_block_penalty)
    }

    /// Duration of one iteration with the given work content.
    #[must_use]
    pub fn step_latency(&self, work: &StepWork) -> f64 {
        if work.is_empty() {
            return 0.0;
        }
        let t = self.server.gpu.num_gpus as f64;
        let m = &self.server.model;
        let g = &self.server.gpu;

        // Memory traffic: every iteration streams the weight shard once and
        // reads the KV cache of each decoding sequence.
        let weight_time = m.weight_bytes() / t / g.hbm_bw;
        let kv_bytes: f64 = work
            .decode_contexts
            .iter()
            .map(|&c| c as f64 * m.kv_bytes_per_token())
            .sum();
        let kv_time = kv_bytes / t / g.hbm_bw * self.paged_kv_factor();
        let mem_time = weight_time + kv_time;

        // Compute: 2 FLOPs per parameter per new token (linear layers) plus
        // causal-attention FLOPs for prompt runs.
        let new_tokens = work.new_tokens() as f64;
        let lin_flops = 2.0 * m.n_params * new_tokens;
        // Prefill attention: each row attends to its full KV prefix. For
        // whole prompts the context is the prompt itself (n × n, the Orca
        // convention); chunked prefills report the context each chunk's rows
        // actually reach, so splitting a prompt never deflates its
        // attention cost.
        let attn_flops: f64 = work
            .prefill_tokens
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let ctx = work.prefill_contexts.get(i).copied().unwrap_or(n);
                2.0 * (n as f64) * (ctx as f64) * m.hidden as f64 * m.n_layers as f64
            })
            .sum();
        let compute_time = (lin_flops + attn_flops) / t / g.flops;

        // Tensor-parallel synchronization: two all-reduces per layer.
        let comm_time = if self.server.gpu.num_gpus > 1 {
            2.0 * m.n_layers as f64 * g.allreduce_latency
        } else {
            0.0
        };

        // On-device KV copies (copy-on-write, baseline beam copies).
        let copy_time = work.copied_tokens as f64 * m.kv_bytes_per_token() * 2.0 / t / g.hbm_bw;

        mem_time.max(compute_time)
            + comm_time
            + copy_time
            + self.swap_time(work.swapped_blocks)
            + FIXED_STEP_OVERHEAD
    }

    /// PCIe time to move `n` KV blocks (§7.3). Each block holds separate K
    /// and V tensors per layer, so one block costs `2 × layers` transfers;
    /// with small block sizes the fixed per-transfer latency dominates and
    /// the effective PCIe bandwidth collapses — exactly the §7.3 finding.
    #[must_use]
    pub fn swap_time(&self, n_blocks: usize) -> f64 {
        if n_blocks == 0 {
            return 0.0;
        }
        let t = self.server.gpu.num_gpus as f64;
        let bw_time = n_blocks as f64 * self.server.block_bytes(self.block_size)
            / t
            / self.server.gpu.pcie_bw;
        let n_transfers = n_blocks as f64 * 2.0 * self.server.model.n_layers as f64;
        bw_time + n_transfers * self.server.gpu.pcie_latency
    }

    /// Time to swap a whole sequence of `context_len` tokens out or in
    /// (Fig. 19a microbenchmark).
    #[must_use]
    pub fn swap_sequence_time(&self, context_len: usize) -> f64 {
        self.swap_time(context_len.div_ceil(self.block_size))
    }

    /// Time to recompute the KV cache of `context_len` tokens as one
    /// prompt-phase iteration (Fig. 19a; §4.5 recomputation).
    #[must_use]
    pub fn recompute_time(&self, context_len: usize) -> f64 {
        self.step_latency(&StepWork {
            prefill_tokens: vec![context_len],
            ..Default::default()
        })
    }

    /// Latency of one decode attention read of `context_len` tokens
    /// (Fig. 18a kernel microbenchmark analog).
    #[must_use]
    pub fn attention_kernel_time(&self, batch: usize, context_len: usize) -> f64 {
        let kv_bytes = batch as f64 * context_len as f64 * self.server.model.kv_bytes_per_token();
        kv_bytes / self.server.gpu.num_gpus as f64 / self.server.gpu.hbm_bw * self.paged_kv_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::ServerConfig;

    fn decode_work(batch: usize, ctx: usize) -> StepWork {
        StepWork {
            decode_contexts: vec![ctx; batch],
            ..Default::default()
        }
    }

    #[test]
    fn empty_work_is_free() {
        let m = CostModel::paged(ServerConfig::opt_13b_1gpu(), 16);
        assert_eq!(m.step_latency(&StepWork::default()), 0.0);
    }

    #[test]
    fn decode_step_in_realistic_range() {
        // OPT-13B decode with ~14 sequences: tens of milliseconds.
        let m = CostModel::paged(ServerConfig::opt_13b_1gpu(), 16);
        let t = m.step_latency(&decode_work(14, 400));
        assert!((0.015..0.1).contains(&t), "step time {t}");
    }

    #[test]
    fn latency_grows_with_batch_and_context() {
        let m = CostModel::paged(ServerConfig::opt_13b_1gpu(), 16);
        let small = m.step_latency(&decode_work(4, 100));
        let more_batch = m.step_latency(&decode_work(32, 100));
        let more_ctx = m.step_latency(&decode_work(4, 1600));
        assert!(more_batch > small);
        assert!(more_ctx > small);
    }

    #[test]
    fn paged_overhead_applies_only_to_vllm() {
        let cfg = ServerConfig::opt_13b_1gpu();
        let paged = CostModel::paged(cfg, 16);
        let flat = CostModel::contiguous(cfg);
        let w = decode_work(64, 1500);
        let tp = paged.step_latency(&w);
        let tf = flat.step_latency(&w);
        assert!(tp > tf, "paged {tp} must exceed contiguous {tf}");
        // The end-to-end step difference stays modest (the overhead only
        // affects the attention term, §7.1).
        assert!(tp < tf * 1.35);
    }

    #[test]
    fn small_blocks_slow_the_kernel() {
        let cfg = ServerConfig::opt_13b_1gpu();
        let t1 = CostModel::paged(cfg, 1).attention_kernel_time(8, 512);
        let t16 = CostModel::paged(cfg, 16).attention_kernel_time(8, 512);
        let t128 = CostModel::paged(cfg, 128).attention_kernel_time(8, 512);
        assert!(t1 > 5.0 * t16, "bs=1 must be much slower");
        assert!((t128 / t16 - 1.0).abs() < 0.05, "large blocks plateau");
    }

    #[test]
    fn prefill_compute_bound_for_long_prompts() {
        let m = CostModel::paged(ServerConfig::opt_13b_1gpu(), 16);
        let t = m.step_latency(&StepWork {
            prefill_tokens: vec![2048],
            ..Default::default()
        });
        // 2×13e9×2048 FLOPs at 140 TFLOP/s ≈ 0.38 s (+ attention).
        assert!((0.3..0.8).contains(&t), "prefill time {t}");
    }

    #[test]
    fn swap_small_blocks_latency_bound() {
        let cfg = ServerConfig::opt_13b_1gpu();
        // Whole-sequence swap of 512 tokens.
        let t_bs1 = CostModel::paged(cfg, 1).swap_sequence_time(512);
        let t_bs64 = CostModel::paged(cfg, 64).swap_sequence_time(512);
        assert!(t_bs1 > 2.0 * t_bs64, "bs=1 swap {t_bs1} vs bs=64 {t_bs64}");
    }

    #[test]
    fn recompute_constant_across_block_sizes() {
        let cfg = ServerConfig::opt_13b_1gpu();
        let r1 = CostModel::paged(cfg, 1).recompute_time(512);
        let r64 = CostModel::paged(cfg, 64).recompute_time(512);
        assert!((r1 - r64).abs() < 1e-9, "recompute must not depend on bs");
    }

    #[test]
    fn tensor_parallel_speeds_up_decode() {
        let one = CostModel::paged(ServerConfig::opt_13b_1gpu(), 16);
        let mut four_cfg = ServerConfig::opt_13b_1gpu();
        four_cfg.gpu.num_gpus = 4;
        let four = CostModel::paged(four_cfg, 16);
        let w = decode_work(16, 500);
        assert!(four.step_latency(&w) < one.step_latency(&w));
    }
}
