//! Chunked-vs-unchunked prefill bit identity across every kernel backend.
//!
//! Splitting a prompt's prefill into arbitrary chunks (the scheduler-budget
//! path, `forward_prefill_chunk`) must be *bit-identical* to the monolithic
//! `forward_paged` prefill: every chunk runs the contiguous-gather causal
//! kernel whose per-row accumulation order depends only on the reduction
//! index, so the split point cannot move a single ulp. Verified at two
//! levels:
//!
//! - **Model level** (property test): random prompt splits — final-chunk
//!   logits and the logits of a decode step performed on the resulting KV
//!   cache must equal the unchunked run's bit for bit.
//! - **Engine level**: random step-token budgets — greedy token streams and
//!   cumulative logprobs (compared by bit pattern) must match the
//!   unchunked engine on prompts that do not hit the prefix cache.

use proptest::prelude::*;

use vllm_core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm_model::backend::BackendKind;
use vllm_model::{CpuModelExecutor, KvPool, ModelConfig, PositionEncoding};

const BLOCK_SIZE: usize = 16;
const BACKENDS: [BackendKind; 3] = [
    BackendKind::Scalar,
    BackendKind::Simd,
    BackendKind::QuantKv8,
];

fn small_config(kind: BackendKind) -> ModelConfig {
    ModelConfig {
        vocab_size: 211,
        hidden: 48,
        n_layers: 2,
        n_heads: 4,
        max_position: 96,
        eos_token_id: 0,
        seed: 0x00d5_eed5,
        position_encoding: PositionEncoding::Learned,
        backend: kind,
    }
}

fn tok(pos: usize, vocab: usize) -> u32 {
    ((pos * 65_537 + 9).wrapping_mul(2_654_435_761) % vocab) as u32
}

/// Splits `prompt_len` into chunk lengths derived from `seed`: every split
/// is valid (chunks ≥ 1, sum = prompt_len) and the seed sweeps uneven,
/// block-straddling boundaries.
fn chunk_lens(prompt_len: usize, seed: u64) -> Vec<usize> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut lens = Vec::new();
    let mut left = prompt_len;
    while left > 0 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let take = (1 + (s as usize) % 9).min(left);
        lens.push(take);
        left -= take;
    }
    lens
}

/// Prefills `prompt_len` tokens either monolithically or in the given
/// chunks, then runs one decode step; returns (final prefill logits,
/// decode logits).
fn prefill_then_decode(
    kind: BackendKind,
    prompt_len: usize,
    chunks: Option<&[usize]>,
) -> (Vec<f32>, Vec<f32>) {
    let config = small_config(kind);
    let vocab = config.vocab_size;
    let model = vllm_model::Transformer::new(config.clone());
    let element = vllm_model::backend::by_kind(kind).kv_layout().element;
    let n_blocks = (prompt_len + 2).div_ceil(BLOCK_SIZE);
    let mut kv = KvPool::with_element(
        config.n_layers,
        n_blocks,
        BLOCK_SIZE,
        config.hidden,
        element,
    );
    let table: Vec<usize> = (0..n_blocks).collect();
    let tokens: Vec<u32> = (0..prompt_len).map(|p| tok(p, vocab)).collect();

    let prefill_logits = match chunks {
        None => {
            let positions: Vec<usize> = (0..prompt_len).collect();
            model.forward_paged(&tokens, &positions, &mut kv, &table, 0)
        }
        Some(lens) => {
            let mut start = 0;
            let mut last = Vec::new();
            for &len in lens {
                let end = start + len;
                let positions: Vec<usize> = (start..end).collect();
                last = model.forward_prefill_chunk(
                    &tokens[start..end],
                    &positions,
                    &mut kv,
                    &table,
                    start,
                );
                start = end;
            }
            assert_eq!(start, prompt_len);
            last
        }
    };
    let decode_logits = model.forward_paged(
        &[tok(prompt_len, vocab)],
        &[prompt_len],
        &mut kv,
        &table,
        prompt_len,
    );
    (prefill_logits, decode_logits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random prompt lengths and random (uneven, block-straddling) chunk
    /// splits: final-chunk logits and a subsequent decode step must be
    /// bit-identical to the monolithic prefill on every backend.
    #[test]
    fn chunked_prefill_logits_bit_identical_to_monolithic(
        prompt_len in 2usize..60,
        split_seed in 0u64..1000,
    ) {
        for kind in BACKENDS {
            let lens = chunk_lens(prompt_len, split_seed);
            let (whole_p, whole_d) = prefill_then_decode(kind, prompt_len, None);
            let (chunk_p, chunk_d) = prefill_then_decode(kind, prompt_len, Some(&lens));
            prop_assert_eq!(
                whole_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                chunk_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{}: final-chunk logits diverge for split {:?}", kind.name(), lens
            );
            prop_assert_eq!(
                whole_d.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                chunk_d.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{}: post-prefill decode logits diverge for split {:?}", kind.name(), lens
            );
        }
    }
}

/// Full-engine greedy run for one backend, optionally chunked by a step
/// budget. Prompts are fresh (no prefix registered), so none of them route
/// through the prefix-cache 1-token-suffix decode path.
fn greedy_outputs(kind: BackendKind, budget: Option<usize>) -> Vec<(Vec<u32>, u64)> {
    let cache = CacheConfig::new(BLOCK_SIZE, 64, 0)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(512, 32, 512).unwrap();
    let exec = CpuModelExecutor::from_config(small_config(kind), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    e.set_step_token_budget(budget);
    let prompts: [&[u32]; 3] = [
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17],
        &[7, 11, 13],
        &[100, 50, 25, 12, 6, 3, 1, 9, 27, 81, 43, 129],
    ];
    for (i, p) in prompts.iter().enumerate() {
        // Staggered arrivals so chunks co-batch with other prompts' decodes.
        e.add_request_at(
            format!("g{i}"),
            p.to_vec(),
            SamplingParams::greedy(10),
            i as f64 * 1e-6,
        )
        .unwrap();
    }
    let mut outs = e.run_to_completion().unwrap();
    outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    outs.iter()
        .map(|o| {
            (
                o.outputs[0].tokens.clone(),
                o.outputs[0].cumulative_logprob.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random step-token budgets: the chunked engine's greedy tokens and
    /// cumulative logprobs (bit patterns) match the unchunked engine on
    /// every backend.
    #[test]
    fn chunked_engine_greedy_bit_identical_across_budgets(budget in 2usize..24) {
        for kind in BACKENDS {
            let want = greedy_outputs(kind, None);
            let got = greedy_outputs(kind, Some(budget));
            prop_assert_eq!(
                &want, &got,
                "{}: budget {} diverged from unchunked", kind.name(), budget
            );
        }
    }
}
