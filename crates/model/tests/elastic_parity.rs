//! Elastic-pool parity across kernel backends: a mid-run pool deflate /
//! compact / restore cycle (which migrates live KV blocks and rewrites
//! block tables) must leave token streams AND cumulative logprobs
//! bit-identical to a fixed-pool run, for every backend — scalar, simd,
//! and quantized-KV. Migration moves raw block bytes, so it must be
//! invisible to the math no matter how the backend lays KV out.

use vllm_core::{CacheConfig, LlmEngine, RequestOutput, SamplingParams, SchedulerConfig};
use vllm_model::backend::BackendKind;
use vllm_model::{CpuModelExecutor, ModelConfig, PositionEncoding};

const BLOCK_SIZE: usize = 16;
const GPU_BLOCKS: usize = 64;

fn small_config(kind: BackendKind) -> ModelConfig {
    ModelConfig {
        vocab_size: 211,
        hidden: 48,
        n_layers: 2,
        n_heads: 4,
        max_position: 96,
        eos_token_id: 0,
        seed: 0x00d5_eed5,
        position_encoding: PositionEncoding::Learned,
        backend: kind,
    }
}

fn engine(kind: BackendKind) -> LlmEngine<CpuModelExecutor> {
    let cache = CacheConfig::new(BLOCK_SIZE, GPU_BLOCKS, 0)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(512, 8, 512).unwrap();
    let exec = CpuModelExecutor::from_config(small_config(kind), &cache);
    LlmEngine::new(exec, cache, sched)
}

/// Golden workload mixing decoding modes so migration runs under CoW
/// sharing: greedy, parallel sampling (forked prompt blocks), and beam
/// search (fork + beam-switch copies).
fn add_workload(e: &mut LlmEngine<CpuModelExecutor>) {
    let golden: [(&str, &[u32], SamplingParams); 5] = [
        // "w" grabs the lowest block ids and drains first, leaving the
        // holes at the bottom of the pool that compaction fills.
        ("w", &[9, 8, 7, 6, 5, 4, 3, 2, 1], SamplingParams::greedy(2)),
        ("g0", &[1, 2, 3, 4, 5], SamplingParams::greedy(12)),
        ("g1", &[7, 11, 13], SamplingParams::greedy(12)),
        (
            "p0",
            &[100, 50, 25, 12, 6, 3, 1, 9],
            SamplingParams::parallel(2, 10),
        ),
        ("b0", &[42, 43, 44, 45, 46, 47], SamplingParams::beam(2, 10)),
    ];
    for (id, prompt, params) in golden {
        e.add_request(id.to_string(), prompt.to_vec(), params)
            .unwrap();
    }
}

/// Per-completion (tokens, logprob bits); logprobs are compared through
/// their bit pattern so "identical" means bit-identical, not merely close.
type Completion = (Vec<u32>, u64);

/// Sorted per-request (id, completions) fingerprint.
fn fingerprint(outs: &[RequestOutput]) -> Vec<(String, Vec<Completion>)> {
    let mut v: Vec<_> = outs
        .iter()
        .map(|o| {
            (
                o.request_id.clone(),
                o.outputs
                    .iter()
                    .map(|c| (c.tokens.clone(), c.cumulative_logprob.to_bits()))
                    .collect(),
            )
        })
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn assert_elastic_cycle_is_invisible(kind: BackendKind) {
    // Fixed-pool reference run.
    let mut fixed = engine(kind);
    add_workload(&mut fixed);
    let reference = fingerprint(&fixed.run_to_completion().unwrap());

    // Elastic run: deflate to the live working set mid-decode (forcing
    // compaction and block migration), compact again, then grow back.
    let mut elastic = engine(kind);
    add_workload(&mut elastic);
    let mut outs = Vec::new();
    while outs.iter().all(|o: &RequestOutput| o.request_id != "w") {
        assert!(elastic.has_unfinished());
        outs.extend(elastic.step().unwrap());
    }
    let migrations_before = elastic.scheduler().block_manager().num_block_migrations();
    elastic.deflate_pool(0.0).unwrap();
    elastic.compact_pools().unwrap();
    for _ in 0..2 {
        if elastic.has_unfinished() {
            outs.extend(elastic.step().unwrap());
        }
    }
    elastic.restore_pool().unwrap();
    outs.extend(elastic.run_to_completion().unwrap());

    assert_eq!(
        reference,
        fingerprint(&outs),
        "{}: tokens/logprobs diverged across the elastic cycle",
        kind.name()
    );

    let bm = elastic.scheduler().block_manager();
    assert!(
        bm.num_block_migrations() > migrations_before,
        "{}: the deflate must actually migrate blocks for this test to mean anything",
        kind.name()
    );
    assert_eq!(
        bm.num_total_gpu_blocks(),
        GPU_BLOCKS,
        "{}: restore must grow the pool back to its configured size",
        kind.name()
    );
    assert_eq!(
        bm.num_free_gpu_blocks(),
        bm.num_total_gpu_blocks(),
        "{}: GPU blocks leaked after drain",
        kind.name()
    );
    bm.assert_consistent();
}

#[test]
fn scalar_elastic_cycle_is_bit_identical() {
    assert_elastic_cycle_is_invisible(BackendKind::Scalar);
}

#[test]
fn simd_elastic_cycle_is_bit_identical() {
    assert_elastic_cycle_is_invisible(BackendKind::Simd);
}

#[test]
fn quant_kv8_elastic_cycle_is_bit_identical() {
    assert_elastic_cycle_is_invisible(BackendKind::QuantKv8);
}
