//! Per-backend property tests for the pluggable kernel backends.
//!
//! - **Batched-vs-solo bit identity** (scalar, simd, quant-kv8): a stacked
//!   `forward_decode_batch` step must produce logits bit-identical to
//!   running each sequence alone through `forward_paged` — the k-only
//!   accumulation-order contract every backend must keep.
//! - **Quantized-KV round trip**: int8-with-per-slot-scale storage must
//!   reproduce any written vector within half a quantization step of the
//!   slot's scale (`max_abs / 127`).
//! - **Greedy decode token identity**: on golden seed prompts, an engine
//!   serving with the quant-kv8 backend must emit exactly the token stream
//!   the scalar backend emits — the capacity win may not change greedy
//!   output on these prompts.

use proptest::prelude::*;

use vllm_core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm_model::backend::{self, BackendKind};
use vllm_model::{CpuModelExecutor, DecodeInput, KvPool, ModelConfig, PositionEncoding};

const BLOCK_SIZE: usize = 16;

fn small_config(kind: BackendKind) -> ModelConfig {
    ModelConfig {
        vocab_size: 211,
        hidden: 48,
        n_layers: 2,
        n_heads: 4,
        max_position: 96,
        eos_token_id: 0,
        seed: 0x00d5_eed5,
        position_encoding: PositionEncoding::Learned,
        backend: kind,
    }
}

fn tok(seq: usize, pos: usize, vocab: usize) -> u32 {
    ((seq * 131 + pos * 65_537 + 9).wrapping_mul(2_654_435_761) % vocab) as u32
}

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 4000) as f32 / 1000.0) - 2.0
        })
        .collect()
}

/// Prefills `batch` sequences, then decodes a few steps both ways (solo
/// `forward_paged` and stacked `forward_decode_batch`) and asserts the
/// final-step logits are bit-identical per sequence.
fn assert_batched_equals_solo(kind: BackendKind, batch: usize, prefill: usize, steps: usize) {
    let config = small_config(kind);
    let vocab = config.vocab_size;
    let model = vllm_model::Transformer::new(config.clone());
    let element = backend::by_kind(kind).kv_layout().element;
    let blocks_per_seq = (prefill + steps + 1).div_ceil(BLOCK_SIZE);

    let run = |stacked: bool| -> Vec<Vec<f32>> {
        let mut kv = KvPool::with_element(
            config.n_layers,
            batch * blocks_per_seq,
            BLOCK_SIZE,
            config.hidden,
            element,
        );
        let tables: Vec<Vec<usize>> = (0..batch)
            .map(|i| (i * blocks_per_seq..(i + 1) * blocks_per_seq).collect())
            .collect();
        for (i, table) in tables.iter().enumerate() {
            let tokens: Vec<u32> = (0..prefill).map(|p| tok(i, p, vocab)).collect();
            let positions: Vec<usize> = (0..prefill).collect();
            model.forward_paged(&tokens, &positions, &mut kv, table, 0);
        }
        let mut last = vec![Vec::new(); batch];
        for s in 0..steps {
            let pos = prefill + s;
            if stacked {
                let inputs: Vec<DecodeInput<'_>> = (0..batch)
                    .map(|i| DecodeInput {
                        token: tok(i, pos, vocab),
                        position: pos,
                        block_table: &tables[i],
                    })
                    .collect();
                let logits = model.forward_decode_batch(&inputs, &mut kv);
                for (i, l) in last.iter_mut().enumerate() {
                    *l = logits[i * vocab..(i + 1) * vocab].to_vec();
                }
            } else {
                for (i, l) in last.iter_mut().enumerate() {
                    *l = model.forward_paged(
                        &[tok(i, pos, vocab)],
                        &[pos],
                        &mut kv,
                        &tables[i],
                        pos,
                    );
                }
            }
        }
        last
    };

    let solo = run(false);
    let stacked = run(true);
    for (i, (a, b)) in solo.iter().zip(&stacked).enumerate() {
        assert_eq!(
            a,
            b,
            "{}: seq {i} logits differ between solo and batched decode",
            kind.name()
        );
    }
}

#[test]
fn scalar_batched_decode_is_bit_identical_to_solo() {
    assert_batched_equals_solo(BackendKind::Scalar, 5, 21, 3);
}

#[test]
fn simd_batched_decode_is_bit_identical_to_solo() {
    assert_batched_equals_solo(BackendKind::Simd, 5, 21, 3);
}

#[test]
fn quant_batched_decode_is_bit_identical_to_solo() {
    assert_batched_equals_solo(BackendKind::QuantKv8, 5, 21, 3);
}

/// Runs golden seed prompts through engines serving with two backends and
/// returns both token streams.
fn greedy_tokens(kind: BackendKind) -> Vec<Vec<u32>> {
    let cache = CacheConfig::new(BLOCK_SIZE, 64, 0)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(512, 8, 512).unwrap();
    let exec = CpuModelExecutor::from_config(small_config(kind), &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    // Golden seed prompts: fixed, short, diverse lengths.
    let prompts: [&[u32]; 3] = [
        &[1, 2, 3, 4, 5],
        &[7, 11, 13],
        &[100, 50, 25, 12, 6, 3, 1, 9],
    ];
    for (i, p) in prompts.iter().enumerate() {
        e.add_request(format!("g{i}"), p.to_vec(), SamplingParams::greedy(12))
            .unwrap();
    }
    let mut outs = e.run_to_completion().unwrap();
    outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    outs.iter().map(|o| o.outputs[0].tokens.clone()).collect()
}

#[test]
fn quant_greedy_decode_matches_scalar_on_golden_prompts() {
    let scalar = greedy_tokens(BackendKind::Scalar);
    let quant = greedy_tokens(BackendKind::QuantKv8);
    assert_eq!(
        scalar, quant,
        "quant-kv8 greedy decode diverged from scalar on golden seed prompts"
    );
}

#[test]
fn simd_greedy_decode_matches_scalar_on_golden_prompts() {
    let scalar = greedy_tokens(BackendKind::Scalar);
    let simd = greedy_tokens(BackendKind::Simd);
    assert_eq!(
        scalar, simd,
        "simd greedy decode diverged from scalar on golden seed prompts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// int8-with-per-slot-scale KV storage reproduces any written vector
    /// within half a quantization step (scale = max_abs / 127) per element.
    #[test]
    fn quant_kv_round_trip_error_is_bounded(
        hidden_heads in 1usize..5,
        head_dim_pow in 1u32..4,
        ctx in 1usize..40,
        seed in 0u64..1000,
    ) {
        let hidden = hidden_heads << head_dim_pow;
        let n_blocks = ctx.div_ceil(BLOCK_SIZE);
        let mut pool = KvPool::with_element(
            1,
            n_blocks,
            BLOCK_SIZE,
            hidden,
            vllm_model::KvElement::Int8Scaled,
        );
        let table: Vec<usize> = (0..n_blocks).collect();
        let k = fill(seed, ctx * hidden);
        let v = fill(seed + 1, ctx * hidden);
        for t in 0..ctx {
            pool.write(
                0,
                table[t / BLOCK_SIZE],
                t % BLOCK_SIZE,
                &k[t * hidden..(t + 1) * hidden],
                &v[t * hidden..(t + 1) * hidden],
            );
        }
        let (k_rt, v_rt) = pool.gather(0, &table, ctx);
        for (orig, rt) in [(&k, &k_rt), (&v, &v_rt)] {
            for t in 0..ctx {
                let slot = &orig[t * hidden..(t + 1) * hidden];
                let max_abs = slot.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let bound = max_abs / 127.0 * 0.5 + 1e-6;
                for (j, (&a, &b)) in
                    slot.iter().zip(&rt[t * hidden..(t + 1) * hidden]).enumerate()
                {
                    prop_assert!(
                        (a - b).abs() <= bound,
                        "token {t} elem {j}: {a} vs {b} exceeds bound {bound}"
                    );
                }
            }
        }
    }
}
