//! Property tests for the attention kernels: the PagedAttention kernel must
//! match the contiguous reference for arbitrary shapes, block sizes, and
//! (scrambled) block tables, and attention outputs must be convex
//! combinations of the value vectors.

use proptest::prelude::*;

use vllm_model::{contiguous_attention_decode, paged_attention_decode, KvPool};

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 4000) as f32 / 1000.0) - 2.0
        })
        .collect()
}

/// Builds a pool whose block table is a permutation chosen by `scramble`.
fn build_pool(
    k: &[f32],
    v: &[f32],
    ctx: usize,
    bs: usize,
    hidden: usize,
    scramble: u64,
) -> (KvPool, Vec<usize>) {
    let n_blocks = ctx.div_ceil(bs);
    let extra = 3;
    let mut pool = KvPool::new(1, n_blocks + extra, bs, hidden);
    let mut table: Vec<usize> = (0..n_blocks + extra).collect();
    // Fisher–Yates with a deterministic stream.
    let mut s = scramble | 1;
    for i in (1..table.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        table.swap(i, (s as usize) % (i + 1));
    }
    table.truncate(n_blocks);
    for t in 0..ctx {
        pool.write(
            0,
            table[t / bs],
            t % bs,
            &k[t * hidden..(t + 1) * hidden],
            &v[t * hidden..(t + 1) * hidden],
        );
    }
    (pool, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn paged_equals_contiguous(
        ctx in 1usize..160,
        bs in 1usize..33,
        n_heads in 1usize..5,
        head_dim_pow in 1u32..5,
        seed in 0u64..1000,
    ) {
        let head_dim = 1usize << head_dim_pow;
        let hidden = n_heads * head_dim;
        let q = fill(seed, hidden);
        let k = fill(seed + 1, ctx * hidden);
        let v = fill(seed + 2, ctx * hidden);

        let mut reference = vec![0.0f32; hidden];
        contiguous_attention_decode(&q, &k, &v, ctx, n_heads, head_dim, &mut reference);

        let (pool, table) = build_pool(&k, &v, ctx, bs, hidden, seed + 3);
        let mut paged = vec![0.0f32; hidden];
        paged_attention_decode(&q, &pool, 0, &table, ctx, n_heads, head_dim, &mut paged);

        for (i, (a, b)) in reference.iter().zip(&paged).enumerate() {
            prop_assert!((a - b).abs() < 1e-3, "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn attention_output_within_value_hull(
        ctx in 1usize..64,
        seed in 0u64..1000,
    ) {
        // Softmax weights are a convex combination: every output coordinate
        // lies within [min, max] of the values at that coordinate.
        let n_heads = 2;
        let head_dim = 4;
        let hidden = n_heads * head_dim;
        let q = fill(seed, hidden);
        let k = fill(seed + 1, ctx * hidden);
        let v = fill(seed + 2, ctx * hidden);
        let (pool, table) = build_pool(&k, &v, ctx, 4, hidden, seed + 3);
        let mut out = vec![0.0f32; hidden];
        paged_attention_decode(&q, &pool, 0, &table, ctx, n_heads, head_dim, &mut out);
        for j in 0..hidden {
            let col: Vec<f32> = (0..ctx).map(|t| v[t * hidden + j]).collect();
            let lo = col.iter().copied().fold(f32::INFINITY, f32::min) - 1e-4;
            let hi = col.iter().copied().fold(f32::NEG_INFINITY, f32::max) + 1e-4;
            prop_assert!(out[j] >= lo && out[j] <= hi, "coord {j}: {} not in [{lo},{hi}]", out[j]);
        }
    }

    #[test]
    fn block_size_invariance(
        ctx in 1usize..96,
        seed in 0u64..1000,
    ) {
        // The same KV content through different block sizes yields the same
        // attention output.
        let n_heads = 2;
        let head_dim = 8;
        let hidden = n_heads * head_dim;
        let q = fill(seed, hidden);
        let k = fill(seed + 1, ctx * hidden);
        let v = fill(seed + 2, ctx * hidden);
        let mut first: Option<Vec<f32>> = None;
        for bs in [1usize, 3, 8, 16, 64] {
            let (pool, table) = build_pool(&k, &v, ctx, bs, hidden, seed + bs as u64);
            let mut out = vec![0.0f32; hidden];
            paged_attention_decode(&q, &pool, 0, &table, ctx, n_heads, head_dim, &mut out);
            match &first {
                None => first = Some(out),
                Some(reference) => {
                    for (a, b) in reference.iter().zip(&out) {
                        prop_assert!((a - b).abs() < 1e-3, "bs={bs}: {a} vs {b}");
                    }
                }
            }
        }
    }
}
