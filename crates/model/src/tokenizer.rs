//! A byte-level tokenizer for the demo models.
//!
//! Token ids 0..255 map to raw bytes; 256 is `<bos>`, 257 is `<eos>`, 258
//! is `<pad>`. This keeps examples runnable end-to-end (text in, text out)
//! without a learned vocabulary, which is irrelevant to memory management.

use vllm_core::sampling::TokenId;

/// Beginning-of-sequence token id.
pub const BOS: TokenId = 256;
/// End-of-sequence token id.
pub const EOS: TokenId = 257;
/// Padding token id.
pub const PAD: TokenId = 258;
/// Vocabulary size covering bytes + specials.
pub const VOCAB_SIZE: usize = 260;

/// Byte-level tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteTokenizer;

impl ByteTokenizer {
    /// Encodes text as `<bos>` followed by its bytes.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        std::iter::once(BOS)
            .chain(text.bytes().map(TokenId::from))
            .collect()
    }

    /// Decodes tokens back to text, skipping special tokens and replacing
    /// invalid UTF-8 with `U+FFFD`.
    #[must_use]
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let bytes: Vec<u8> = tokens
            .iter()
            .filter(|&&t| t < 256)
            .map(|&t| t as u8)
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ascii() {
        let tok = ByteTokenizer;
        let ids = tok.encode("hello");
        assert_eq!(ids[0], BOS);
        assert_eq!(ids.len(), 6);
        assert_eq!(tok.decode(&ids), "hello");
    }

    #[test]
    fn round_trip_utf8() {
        let tok = ByteTokenizer;
        let ids = tok.encode("héllo ✓");
        assert_eq!(tok.decode(&ids), "héllo ✓");
    }

    #[test]
    fn specials_skipped_in_decode() {
        let tok = ByteTokenizer;
        assert_eq!(tok.decode(&[BOS, 104, 105, EOS, PAD]), "hi");
    }

    #[test]
    fn vocab_covers_all_ids() {
        let tok = ByteTokenizer;
        let ids = tok.encode("xyz");
        assert!(ids.iter().all(|&t| (t as usize) < VOCAB_SIZE));
    }
}
