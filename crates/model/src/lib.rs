//! # vllm-model
//!
//! The numeric substrate of the PagedAttention reproduction: a pure-Rust
//! CPU transformer (§2.1) with paged KV storage (§4.2), real PagedAttention
//! kernels (§4.1, §5.1), sampling/beam candidate extraction, and executors
//! (single-worker and Megatron-style tensor-parallel, §4.6) that plug into
//! [`vllm_core::LlmEngine`].
//!
//! # Examples
//!
//! ```
//! use vllm_core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
//! use vllm_model::{CpuModelExecutor, ModelConfig};
//!
//! let cache = CacheConfig::new(4, 64, 64).unwrap();
//! let sched = SchedulerConfig::new(512, 16, 512).unwrap();
//! let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
//! let mut engine = LlmEngine::new(exec, cache, sched);
//! engine.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(4)).unwrap();
//! let outputs = engine.run_to_completion().unwrap();
//! assert_eq!(outputs[0].outputs[0].tokens.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod backend;
pub mod bpe;
pub mod checkpoint;
pub mod config;
pub mod executor;
pub mod kv_cache;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod sampler;
pub mod tokenizer;
pub mod transformer;

pub use attention::{
    contiguous_attention_decode, contiguous_causal_attention, paged_attention_decode,
    paged_attention_decode_batch, DecodeSeq,
};
pub use backend::{BackendKind, KernelBackend, KvElement, KvLayout, BACKEND_ENV};
pub use bpe::BpeTokenizer;
pub use checkpoint::{load as load_checkpoint, save as save_checkpoint, CheckpointError};
pub use config::{ModelConfig, PositionEncoding};
pub use executor::CpuModelExecutor;
pub use kv_cache::{KvCache, KvPool};
pub use parallel::TensorParallelExecutor;
pub use pool::WorkerPool;
pub use sampler::{mix_seed, sample_candidates};
pub use tokenizer::{ByteTokenizer, BOS, EOS, PAD, VOCAB_SIZE};
pub use transformer::{DecodeInput, LayerWeights, Transformer};
