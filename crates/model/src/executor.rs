//! The single-worker CPU executor backing [`vllm_core::LlmEngine`].

use std::time::Instant;

use vllm_core::error::{Result, VllmError};
use vllm_core::executor::{KernelTiming, ModelExecutor, SeqStepOutput, StepResult};
use vllm_core::plan::StepPlan;

use crate::config::ModelConfig;
use crate::kv_cache::KvCache;
use crate::ops::timing;
use crate::sampler::{mix_seed, sample_candidates};
use crate::transformer::{DecodeInput, Transformer};
use vllm_core::config::CacheConfig;

/// Cached telemetry handles for the CPU executor, registered lazily when the
/// engine attaches its telemetry bundle.
#[derive(Debug, Clone)]
struct ExecutorTelemetry {
    forward_seconds: vllm_telemetry::Histogram,
    tokens_total: vllm_telemetry::Counter,
    steps_total: vllm_telemetry::Counter,
    kernels: KernelTelemetry,
}

/// Per-kernel timing histograms shared by the CPU and TP executors.
#[derive(Debug, Clone)]
pub(crate) struct KernelTelemetry {
    matmul_seconds: vllm_telemetry::Histogram,
    attention_seconds: vllm_telemetry::Histogram,
    logits_seconds: vllm_telemetry::Histogram,
}

impl KernelTelemetry {
    /// Registers the `vllm_model_kernel_*` histograms, labeled with the
    /// kernel backend serving the model (`{backend="scalar"}` etc.).
    pub(crate) fn register(r: &vllm_telemetry::MetricsRegistry, backend: &str) -> Self {
        Self {
            matmul_seconds: r.histogram(
                &format!("vllm_model_kernel_matmul_seconds{{backend=\"{backend}\"}}"),
                "Time in dense matmul kernels per step (summed across pool threads).",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            attention_seconds: r.histogram(
                &format!("vllm_model_kernel_paged_attention_seconds{{backend=\"{backend}\"}}"),
                "Time in PagedAttention decode kernels per step.",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            logits_seconds: r.histogram(
                &format!("vllm_model_kernel_logits_seconds{{backend=\"{backend}\"}}"),
                "Time in the LM-head logits projection per step.",
                vllm_telemetry::BucketSpec::seconds(),
            ),
        }
    }

    /// Observes the kernel-time deltas accumulated during one step.
    pub(crate) fn observe_step(&self, before: &timing::KernelSnapshot) {
        let d = timing::snapshot().delta_since(before);
        self.matmul_seconds.observe(d.matmul_ns as f64 / 1e9);
        self.attention_seconds.observe(d.attention_ns as f64 / 1e9);
        self.logits_seconds.observe(d.logits_ns as f64 / 1e9);
    }
}

/// Executes scheduled iterations on a CPU transformer with a paged KV cache.
#[derive(Debug)]
pub struct CpuModelExecutor {
    model: Transformer,
    cache: KvCache,
    /// Total tokens whose KV cache was computed (metrics).
    pub tokens_processed: u64,
    /// Total iterations executed (metrics).
    pub steps: u64,
    telemetry: Option<ExecutorTelemetry>,
}

impl CpuModelExecutor {
    /// Builds the executor and its paged KV storage.
    #[must_use]
    pub fn new(model: Transformer, cache_config: &CacheConfig) -> Self {
        // The backend dictates how KV bytes are laid out (f32 vs int8 with
        // per-slot scales), so the cache is allocated in its element type.
        let element = model.backend().kv_layout().element;
        let cache = KvCache::with_element(
            model.config.n_layers,
            cache_config.num_gpu_blocks,
            cache_config.num_cpu_blocks.max(1),
            cache_config.block_size,
            model.config.hidden,
            element,
        );
        Self {
            model,
            cache,
            tokens_processed: 0,
            steps: 0,
            telemetry: None,
        }
    }

    /// Convenience constructor from a model configuration.
    #[must_use]
    pub fn from_config(model_config: ModelConfig, cache_config: &CacheConfig) -> Self {
        Self::new(Transformer::new(model_config), cache_config)
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// The paged KV storage (introspection in tests).
    #[must_use]
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }
}

impl ModelExecutor for CpuModelExecutor {
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult> {
        let start = Instant::now();
        let kernels_before = timing::snapshot();
        self.steps += 1;
        // Cache operations first (§4.3: memory-management instructions
        // arrive with the step's control message).
        self.cache.apply(&plan.cache_ops);

        // Split the step into decode-phase items (computed suffix of one
        // token: generation steps, but also fully-prefix-cached prefills)
        // and prompt-phase items. Decode items run as ONE stacked forward;
        // prompt items keep their per-sequence path.
        let mut outputs: Vec<Option<SeqStepOutput>> = plan.items.iter().map(|_| None).collect();
        let mut decode: Vec<(usize, usize)> = Vec::new(); // (item index, skip)
        for (i, item) in plan.items.iter().enumerate() {
            if item.tokens.is_empty() {
                return Err(VllmError::Executor("empty step input".into()));
            }
            // Shared-prefix prefills only compute the suffix; the prefix KV
            // already sits in the mapped blocks. Chunked prefill items skip
            // exactly the rows earlier chunks computed and must never take
            // the decode path, even for a one-row final chunk: the decode
            // kernel's accumulation order differs and would break the
            // chunked/unchunked bit-identity contract.
            let skip = if item.chunked || item.tokens.len() > 1 {
                item.num_cached_tokens.min(item.tokens.len() - 1)
            } else {
                0
            };
            if !item.chunked && item.tokens.len() - skip == 1 {
                decode.push((i, skip));
                continue;
            }
            let tokens = &item.tokens[skip..];
            let positions: Vec<usize> =
                (item.first_position + skip..item.first_position + item.tokens.len()).collect();
            let logits = if item.chunked {
                self.model.forward_prefill_chunk(
                    tokens,
                    &positions,
                    &mut self.cache.gpu,
                    &item.block_table,
                    item.first_position + skip,
                )
            } else {
                self.model.forward_paged(
                    tokens,
                    &positions,
                    &mut self.cache.gpu,
                    &item.block_table,
                    item.first_position + skip,
                )
            };
            self.tokens_processed += tokens.len() as u64;
            let seed = mix_seed(item.seed, item.seq_id, item.context_len());
            let candidates = sample_candidates(&logits, item.mode, item.num_candidates, seed);
            outputs[i] = Some(SeqStepOutput {
                seq_id: item.seq_id,
                candidates,
            });
        }
        if !decode.is_empty() {
            let inputs: Vec<DecodeInput<'_>> = decode
                .iter()
                .map(|&(i, skip)| {
                    let item = &plan.items[i];
                    DecodeInput {
                        token: item.tokens[skip],
                        position: item.first_position + skip,
                        block_table: &item.block_table,
                    }
                })
                .collect();
            let logits = self
                .model
                .forward_decode_batch(&inputs, &mut self.cache.gpu);
            let vocab = self.model.config.vocab_size;
            for (row, &(i, _)) in decode.iter().enumerate() {
                let item = &plan.items[i];
                let seed = mix_seed(item.seed, item.seq_id, item.context_len());
                let candidates = sample_candidates(
                    &logits[row * vocab..(row + 1) * vocab],
                    item.mode,
                    item.num_candidates,
                    seed,
                );
                outputs[i] = Some(SeqStepOutput {
                    seq_id: item.seq_id,
                    candidates,
                });
            }
            self.tokens_processed += decode.len() as u64;
        }
        let outputs: Vec<SeqStepOutput> = outputs
            .into_iter()
            .map(|o| o.expect("every plan item produced an output"))
            .collect();
        let elapsed = start.elapsed().as_secs_f64();
        if let Some(t) = &self.telemetry {
            t.forward_seconds.observe(elapsed);
            t.tokens_total.inc_by(plan.num_tokens() as u64);
            t.steps_total.inc();
            t.kernels.observe_step(&kernels_before);
        }
        let kd = timing::snapshot().delta_since(&kernels_before);
        let kernels = vec![
            KernelTiming {
                name: "matmul".to_string(),
                seconds: kd.matmul_ns as f64 / 1e9,
            },
            KernelTiming {
                name: "paged_attention".to_string(),
                seconds: kd.attention_ns as f64 / 1e9,
            },
            KernelTiming {
                name: "logits".to_string(),
                seconds: kd.logits_ns as f64 / 1e9,
            },
        ];
        Ok(StepResult {
            outputs,
            elapsed,
            kernels,
        })
    }

    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<vllm_telemetry::Telemetry>) {
        let r = telemetry.registry();
        self.telemetry = Some(ExecutorTelemetry {
            forward_seconds: r.histogram(
                "vllm_executor_forward_seconds",
                "Model forward pass wall time per step (CPU backend).",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            tokens_total: r.counter(
                "vllm_executor_tokens_total",
                "Tokens run through the model executor.",
            ),
            steps_total: r.counter(
                "vllm_executor_steps_total",
                "Iterations executed by the model executor.",
            ),
            kernels: KernelTelemetry::register(r, self.model.config.backend.name()),
        });
    }

    fn backend_label(&self) -> &str {
        self.model.config.backend.name()
    }

    fn export_kv_blocks(
        &self,
        blocks: &[vllm_core::block::PhysicalBlockId],
    ) -> Vec<vllm_core::handoff::KvBlockBytes> {
        blocks
            .iter()
            .map(|&b| self.cache.gpu.export_block_bytes(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vllm_core::config::SchedulerConfig;
    use vllm_core::engine::LlmEngine;
    use vllm_core::sampling::SamplingParams;

    fn engine(gpu_blocks: usize) -> LlmEngine<CpuModelExecutor> {
        let cache = CacheConfig::new(4, gpu_blocks, gpu_blocks).unwrap();
        let sched = SchedulerConfig::new(512, 32, 512).unwrap();
        let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
        LlmEngine::new(exec, cache, sched)
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let run = || {
            let mut e = engine(64);
            e.add_request("r", vec![5, 9, 13], SamplingParams::greedy(8))
                .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let a = run();
        assert_eq!(a.len(), 8);
        assert_eq!(a, run());
    }

    #[test]
    fn batched_requests_match_solo_runs() {
        // Greedy outputs must be independent of batching/scheduling.
        let solo = |prompt: Vec<u32>| {
            let mut e = engine(128);
            e.add_request("r", prompt, SamplingParams::greedy(6))
                .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let a_solo = solo(vec![3, 1, 4, 1, 5]);
        let b_solo = solo(vec![2, 7, 18, 28]);

        let mut e = engine(128);
        e.add_request("a", vec![3, 1, 4, 1, 5], SamplingParams::greedy(6))
            .unwrap();
        e.add_request("b", vec![2, 7, 18, 28], SamplingParams::greedy(6))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        let a = outs.iter().find(|o| o.request_id == "a").unwrap();
        let b = outs.iter().find(|o| o.request_id == "b").unwrap();
        assert_eq!(a.outputs[0].tokens, a_solo);
        assert_eq!(b.outputs[0].tokens, b_solo);
    }

    #[test]
    fn recompute_preemption_is_transparent() {
        // Force preemption with a tiny pool; greedy output must equal the
        // uncontended run (recomputation is exact, §4.5).
        let solo = {
            let mut e = engine(64);
            e.add_request(
                "a",
                vec![1, 2, 3, 4, 5, 6, 7, 8],
                SamplingParams::greedy(10),
            )
            .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let mut e = engine(7);
        e.add_request(
            "a",
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            SamplingParams::greedy(10),
        )
        .unwrap();
        e.add_request_at("b", vec![9, 10, 11, 12], SamplingParams::greedy(10), 1e-6)
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert!(
            e.scheduler().stats().num_preemptions > 0,
            "test needs contention"
        );
        let a = outs.iter().find(|o| o.request_id == "a").unwrap();
        assert_eq!(a.outputs[0].tokens, solo);
    }

    #[test]
    fn swap_preemption_is_transparent() {
        use vllm_core::config::PreemptionMode;
        let solo = {
            let mut e = engine(64);
            e.add_request(
                "a",
                vec![1, 2, 3, 4, 5, 6, 7, 8],
                SamplingParams::greedy(10),
            )
            .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let cache = CacheConfig::new(4, 7, 16).unwrap();
        let sched = SchedulerConfig::new(512, 32, 512)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
        let mut e = LlmEngine::new(exec, cache, sched);
        e.add_request(
            "a",
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            SamplingParams::greedy(10),
        )
        .unwrap();
        e.add_request_at("b", vec![9, 10, 11, 12], SamplingParams::greedy(10), 1e-6)
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert!(
            e.scheduler().stats().num_swap_preemptions > 0,
            "test needs swap preemption"
        );
        let a = outs.iter().find(|o| o.request_id == "a").unwrap();
        assert_eq!(a.outputs[0].tokens, solo);
    }

    #[test]
    fn parallel_samples_diverge_but_share_prompt() {
        let mut e = engine(64);
        e.add_request(
            "r",
            vec![1, 2, 3, 4, 5, 6],
            SamplingParams::parallel(3, 8).with_seed(7),
        )
        .unwrap();
        e.step().unwrap(); // Prompt step + fork.
        assert!(e.scheduler().block_manager().sharing_savings() > 0.0);
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs.len(), 3);
        let set: std::collections::HashSet<_> =
            outs[0].outputs.iter().map(|o| o.tokens.clone()).collect();
        assert!(set.len() > 1, "samples should diverge");
    }

    #[test]
    fn beam_search_beats_greedy_logprob() {
        // Beam search must find a hypothesis at least as likely as greedy.
        let prompt = vec![11, 3, 7, 2];
        let mut g = engine(64);
        g.add_request("g", prompt.clone(), SamplingParams::greedy(6))
            .unwrap();
        let greedy = g.run_to_completion().unwrap()[0].outputs[0].clone();

        let mut b = engine(64);
        b.add_request("b", prompt, SamplingParams::beam(4, 6))
            .unwrap();
        let beams = b.run_to_completion().unwrap()[0].outputs.clone();
        assert!(beams[0].cumulative_logprob >= greedy.cumulative_logprob - 1e-4);
    }

    #[test]
    fn prefix_cached_generation_matches_uncached() {
        let prefix: Vec<u32> = (1..=10).collect();
        let suffix: Vec<u32> = vec![20, 21, 22];
        let mut prompt = prefix.clone();
        prompt.extend(&suffix);

        let mut plain = engine(64);
        plain.set_auto_prefix_match(false);
        plain
            .add_request("r", prompt.clone(), SamplingParams::greedy(6))
            .unwrap();
        let expect = plain.run_to_completion().unwrap()[0].outputs[0]
            .tokens
            .clone();

        let mut cached = engine(64);
        cached.register_prefix(prefix).unwrap();
        cached
            .add_request("r", prompt, SamplingParams::greedy(6))
            .unwrap();
        let got = cached.run_to_completion().unwrap();
        assert_eq!(got[0].outputs[0].tokens, expect);
        // The prefix prefill must have been skipped: fewer tokens processed.
        assert!(cached.executor().tokens_processed < plain.executor().tokens_processed + 10);
    }

    #[test]
    fn beam_width_one_equals_greedy() {
        // Beam search with width 1 degenerates to greedy decoding exactly.
        let prompt = vec![9u32, 4, 11, 6];
        let mut g = engine(64);
        g.add_request("g", prompt.clone(), SamplingParams::greedy(8))
            .unwrap();
        let greedy = g.run_to_completion().unwrap()[0].outputs[0].tokens.clone();
        let mut b = engine(64);
        b.add_request("b", prompt, SamplingParams::beam(1, 8))
            .unwrap();
        let beam = b.run_to_completion().unwrap()[0].outputs[0].tokens.clone();
        assert_eq!(greedy, beam);
    }

    #[test]
    fn wider_beams_never_worse() {
        // Cumulative logprob of the best hypothesis is monotone in width.
        let prompt = vec![2u32, 12, 5];
        let mut best = f64::NEG_INFINITY;
        for width in [1usize, 2, 4, 8] {
            let mut e = engine(128);
            e.add_request("b", prompt.clone(), SamplingParams::beam(width, 6))
                .unwrap();
            let outs = e.run_to_completion().unwrap();
            let top = outs[0].outputs[0].cumulative_logprob;
            assert!(
                top >= best - 1e-5,
                "width {width}: {top} worse than narrower beam {best}"
            );
            best = best.max(top);
        }
    }
}
