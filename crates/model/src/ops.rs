//! Dense kernels for the CPU transformer: matmul, layer norm, GELU,
//! softmax. All tensors are row-major `f32` slices with explicit shapes.

/// `out[m×n] = a[m×k] @ b[k×n]`, row-major, accumulating in `f32`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    out.fill(0.0);
    // ikj loop order keeps the inner loop streaming over contiguous rows.
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Work size (in multiply-adds) above which [`matmul_auto`] parallelizes.
pub const PARALLEL_MATMUL_THRESHOLD: usize = 1 << 21;

/// `out[m×n] = a[m×k] @ b[k×n]`, splitting rows across threads for large
/// shapes (prompt-phase matmuls) and falling back to the serial kernel for
/// small ones (decode steps), where thread spawn costs would dominate.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matmul_auto(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let work = m * k * n;
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if work < PARALLEL_MATMUL_THRESHOLD || threads < 2 || m < 2 {
        matmul(a, b, m, k, n, out);
        return;
    }
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    let n_chunks = threads.min(m).min(8);
    let rows_per_chunk = m.div_ceil(n_chunks);
    std::thread::scope(|scope| {
        for (a_chunk, out_chunk) in a
            .chunks(rows_per_chunk * k)
            .zip(out.chunks_mut(rows_per_chunk * n))
        {
            scope.spawn(move || {
                let rows = a_chunk.len() / k;
                matmul(a_chunk, b, rows, k, n, out_chunk);
            });
        }
    });
}

/// `out[n] = x[k] @ w[k×n]` (one-token linear layer).
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matvec(x: &[f32], w: &[f32], k: usize, n: usize, out: &mut [f32]) {
    matmul(x, w, 1, k, n, out);
}

/// Adds `bias[n]` to every row of `x[m×n]`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn add_bias(x: &mut [f32], bias: &[f32]) {
    let n = bias.len();
    assert_eq!(x.len() % n, 0, "bias length must divide tensor length");
    for row in x.chunks_exact_mut(n) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Element-wise `a += b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Layer normalization of each `n`-sized row: `(x - mean) / sqrt(var + eps)
/// * gamma + beta`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn layer_norm(x: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = gamma.len();
    assert_eq!(beta.len(), n);
    assert_eq!(x.len() % n, 0);
    for row in x.chunks_exact_mut(n) {
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((v, g), b) in row.iter_mut().zip(gamma).zip(beta) {
            *v = (*v - mean) * inv * g + b;
        }
    }
}

/// Tanh-approximation GELU, applied element-wise.
pub fn gelu(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for v in x.iter_mut() {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044_715 * u * u * u)).tanh());
    }
}

/// In-place softmax over a single row.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// In-place log-softmax over a single row.
pub fn log_softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let sum: f32 = x.iter().map(|v| (v - max).exp()).sum();
    let log_sum = sum.ln() + max;
    for v in x.iter_mut() {
        *v -= log_sum;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `acc += s * v` (scaled accumulate).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(acc: &mut [f32], s: f32, v: &[f32]) {
    assert_eq!(acc.len(), v.len());
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += s * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let id = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &id, 2, 2, 2, &mut out);
        assert_close(&out, &a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_close(&out, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn matmul_rectangular() {
        // 1×3 @ 3×2.
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = vec![0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_close(&out, &[4.0, 5.0], 1e-6);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax(&mut x);
        assert_close(&x, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut a = vec![0.5, -1.0, 2.0];
        let mut b = a.clone();
        softmax(&mut a);
        log_softmax(&mut b);
        for (p, lp) in a.iter().zip(&b) {
            assert!((p.ln() - lp).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layer_norm(&mut x, &gamma, &beta, 1e-5);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_known_points() {
        let mut x = vec![0.0, 1.0, -1.0];
        gelu(&mut x);
        assert!((x[0]).abs() < 1e-6);
        assert!((x[1] - 0.8412).abs() < 1e-3);
        assert!((x[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn bias_and_residual() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        add_bias(&mut x, &[10.0, 20.0]);
        assert_close(&x, &[11.0, 22.0, 13.0, 24.0], 1e-6);
        let mut a = vec![1.0, 1.0];
        add_inplace(&mut a, &[2.0, 3.0]);
        assert_close(&a, &[3.0, 4.0], 1e-6);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[1.0, 2.0]);
        assert_close(&acc, &[3.0, 5.0], 1e-6);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 100) as f32 / 50.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_auto_matches_serial_small() {
        let (m, k, n) = (3, 5, 7);
        let a = fill(1, m * k);
        let b = fill(2, k * n);
        let mut serial = vec![0.0; m * n];
        let mut auto = vec![0.0; m * n];
        matmul(&a, &b, m, k, n, &mut serial);
        matmul_auto(&a, &b, m, k, n, &mut auto);
        assert_eq!(serial, auto);
    }

    #[test]
    fn matmul_auto_matches_serial_large() {
        // Above the parallel threshold: 256×128×128 = 4.2M mul-adds.
        let (m, k, n) = (256, 128, 128);
        let a = fill(3, m * k);
        let b = fill(4, k * n);
        let mut serial = vec![0.0; m * n];
        let mut auto = vec![0.0; m * n];
        matmul(&a, &b, m, k, n, &mut serial);
        matmul_auto(&a, &b, m, k, n, &mut auto);
        for (x, y) in serial.iter().zip(&auto) {
            assert_eq!(x, y, "parallel split must be bit-identical");
        }
    }

    #[test]
    fn matmul_auto_uneven_row_split() {
        // m not divisible by the chunk count.
        let (m, k, n) = (97, 160, 140);
        let a = fill(5, m * k);
        let b = fill(6, k * n);
        let mut serial = vec![0.0; m * n];
        let mut auto = vec![0.0; m * n];
        matmul(&a, &b, m, k, n, &mut serial);
        matmul_auto(&a, &b, m, k, n, &mut auto);
        assert_eq!(serial, auto);
    }
}
