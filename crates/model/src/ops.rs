//! Dense kernels for the CPU transformer: matmul, layer norm, GELU,
//! softmax. All tensors are row-major `f32` slices with explicit shapes.
//!
//! The matmul family is cache-blocked: the right-hand side is walked in
//! `KB × NB` panels (packed into a contiguous scratch when enough rows
//! amortize the copy) and the inner accumulation is unrolled four-deep so
//! the autovectorizer can lift it to SIMD. Per output element the
//! accumulation order depends only on `k`, never on `m`, `n`, or the
//! blocking — so a row of a batched matmul is bit-identical to the same
//! row computed alone, which is what makes batched decode exactly match
//! per-sequence decode.
//!
//! These are the scalar backend's serial kernels; pool dispatch for large
//! shapes lives in the [`crate::backend`] seam, which all callers go
//! through.

use crate::pool;

/// Depth (`k`) of one cache block of the right-hand side.
const KB: usize = 128;
/// Width (`n`) of one cache block of the right-hand side.
const NB: usize = 256;
/// Minimum row count for which packing a B panel pays for itself.
const PACK_MIN_ROWS: usize = 4;

/// Kernel timing accumulators (see [`timing`]).
pub mod timing {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static MATMUL_NS: AtomicU64 = AtomicU64::new(0);
    static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
    static ATTENTION_NS: AtomicU64 = AtomicU64::new(0);
    static ATTENTION_CALLS: AtomicU64 = AtomicU64::new(0);
    static LOGITS_NS: AtomicU64 = AtomicU64::new(0);
    static LOGITS_CALLS: AtomicU64 = AtomicU64::new(0);

    /// Cumulative process-wide kernel counters. Executors snapshot these
    /// around a step and observe the deltas into their telemetry
    /// histograms; benches read them for per-kernel nanosecond reports.
    ///
    /// Times are summed across threads (worker-pool tasks record their own
    /// spans), so they measure kernel CPU time, not wall time.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct KernelSnapshot {
        /// Nanoseconds spent in dense matmul kernels.
        pub matmul_ns: u64,
        /// Dense matmul invocations.
        pub matmul_calls: u64,
        /// Nanoseconds spent in PagedAttention decode kernels.
        pub attention_ns: u64,
        /// PagedAttention decode invocations.
        pub attention_calls: u64,
        /// Nanoseconds spent in the logits (LM head) projection.
        pub logits_ns: u64,
        /// Logits projection invocations.
        pub logits_calls: u64,
    }

    impl KernelSnapshot {
        /// Counter increments since `earlier`.
        #[must_use]
        pub fn delta_since(&self, earlier: &Self) -> Self {
            Self {
                matmul_ns: self.matmul_ns.wrapping_sub(earlier.matmul_ns),
                matmul_calls: self.matmul_calls.wrapping_sub(earlier.matmul_calls),
                attention_ns: self.attention_ns.wrapping_sub(earlier.attention_ns),
                attention_calls: self.attention_calls.wrapping_sub(earlier.attention_calls),
                logits_ns: self.logits_ns.wrapping_sub(earlier.logits_ns),
                logits_calls: self.logits_calls.wrapping_sub(earlier.logits_calls),
            }
        }
    }

    /// Reads the current cumulative counters.
    #[must_use]
    pub fn snapshot() -> KernelSnapshot {
        KernelSnapshot {
            matmul_ns: MATMUL_NS.load(Ordering::Relaxed),
            matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
            attention_ns: ATTENTION_NS.load(Ordering::Relaxed),
            attention_calls: ATTENTION_CALLS.load(Ordering::Relaxed),
            logits_ns: LOGITS_NS.load(Ordering::Relaxed),
            logits_calls: LOGITS_CALLS.load(Ordering::Relaxed),
        }
    }

    /// Records one dense matmul span.
    pub fn record_matmul(elapsed: Duration) {
        MATMUL_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one PagedAttention decode span.
    pub fn record_attention(elapsed: Duration) {
        ATTENTION_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        ATTENTION_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one logits-projection span.
    pub fn record_logits(elapsed: Duration) {
        LOGITS_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        LOGITS_CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

/// The seed repository's scalar ikj matmul, kept verbatim (including its
/// branch-per-element sparsity check) as the baseline for equivalence
/// tests and the `kernels` bench.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Accumulates `out_row += a_blk @ panel` where panel row `p` starts at
/// `rows[base + p * stride]` and spans `nb` columns. Four B rows are
/// consumed per iteration so each output element gets four fused
/// multiply-adds of independent streams; the remainder is handled one row
/// at a time. The per-element accumulation order is a function of the row
/// index alone, keeping results independent of packing and of `m`.
#[inline]
fn accumulate_panel(
    a_blk: &[f32],
    rows: &[f32],
    base: usize,
    stride: usize,
    nb: usize,
    out_row: &mut [f32],
) {
    let kb = a_blk.len();
    let out_row = &mut out_row[..nb];
    let mut p = 0;
    while p + 4 <= kb {
        let (a0, a1, a2, a3) = (a_blk[p], a_blk[p + 1], a_blk[p + 2], a_blk[p + 3]);
        let r0 = &rows[base + p * stride..base + p * stride + nb];
        let r1 = &rows[base + (p + 1) * stride..base + (p + 1) * stride + nb];
        let r2 = &rows[base + (p + 2) * stride..base + (p + 2) * stride + nb];
        let r3 = &rows[base + (p + 3) * stride..base + (p + 3) * stride + nb];
        for j in 0..nb {
            out_row[j] += a0 * r0[j] + a1 * r1[j] + a2 * r2[j] + a3 * r3[j];
        }
        p += 4;
    }
    while p < kb {
        let ap = a_blk[p];
        let r = &rows[base + p * stride..base + p * stride + nb];
        for (o, &v) in out_row.iter_mut().zip(r) {
            *o += ap * v;
        }
        p += 1;
    }
}

/// `out[m×n] = a[m×k] @ b[k×n]`, row-major, accumulating in `f32`.
///
/// Cache-blocked over `KB × NB` panels of `b`; panels are packed into a
/// contiguous scratch buffer when `m` is large enough to amortize the
/// copy. Each output row is bit-identical to the `m = 1` product of that
/// row, regardless of batching or blocking.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    out.fill(0.0);
    let pack = m >= PACK_MIN_ROWS;
    let mut panel = if pack {
        vec![0.0f32; KB.min(k) * NB.min(n)]
    } else {
        Vec::new()
    };
    let mut kk = 0;
    while kk < k {
        let kb = KB.min(k - kk);
        let mut nn = 0;
        while nn < n {
            let nb = NB.min(n - nn);
            if pack {
                for p in 0..kb {
                    let src = (kk + p) * n + nn;
                    panel[p * nb..(p + 1) * nb].copy_from_slice(&b[src..src + nb]);
                }
            }
            for i in 0..m {
                let a_blk = &a[i * k + kk..i * k + kk + kb];
                let out_row = &mut out[i * n + nn..i * n + nn + nb];
                if pack {
                    accumulate_panel(a_blk, &panel, 0, nb, nb, out_row);
                } else {
                    accumulate_panel(a_blk, b, kk * n + nn, n, nb, out_row);
                }
            }
            nn += nb;
        }
        kk += kb;
    }
}

/// Work size (in multiply-adds) above which the backend dispatch
/// ([`crate::backend`]) splits a matmul across the worker pool.
pub const PARALLEL_MATMUL_THRESHOLD: usize = 1 << 21;

/// One output-column window of a single-row product: `out` receives
/// columns `j0 .. j0 + out.len()` of `a[1×k] @ b[k×n]`. Same `KB`/`NB`
/// panel walk as [`matmul`]; per-element accumulation order depends only
/// on `k`, so stripes are bit-identical to the full serial product. The
/// scalar backend's column-stripe kernel for the pooled m=1 path.
pub(crate) fn matmul_one_row_cols(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    let width = out.len();
    let mut kk = 0;
    while kk < k {
        let kb = KB.min(k - kk);
        let a_blk = &a[kk..kk + kb];
        let mut nn = 0;
        while nn < width {
            let nb = NB.min(width - nn);
            accumulate_panel(a_blk, b, kk * n + j0 + nn, n, nb, &mut out[nn..nn + nb]);
            nn += nb;
        }
        kk += kb;
    }
}

/// Transposes a row-major `rows × cols` matrix into `cols × rows`.
/// Used once at model build to lay the tied embedding out as
/// `hidden × vocab` for the blocked LM-head kernel.
///
/// # Panics
///
/// Panics if `src.len() != rows * cols`.
#[must_use]
pub fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(src.len(), rows * cols, "shape mismatch");
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c];
        }
    }
    out
}

/// Dot product with four independent accumulators (fixed combination
/// order), so the autovectorizer can keep four SIMD streams in flight.
#[inline]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut p = 0;
    while p + 4 <= k {
        s0 += a[p] * b[p];
        s1 += a[p + 1] * b[p + 1];
        s2 += a[p + 2] * b[p + 2];
        s3 += a[p + 3] * b[p + 3];
        p += 4;
    }
    while p < k {
        s0 += a[p] * b[p];
        p += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Four simultaneous [`dot_unrolled`] products sharing one `b` stream.
/// Each lane follows the accumulation order of [`dot_unrolled`] exactly,
/// so lane results are bit-identical to four separate calls; interleaving
/// only multiplies the independent accumulator chains (16 instead of 4)
/// and reuses each loaded `b` chunk across four rows.
#[inline]
fn dot_unrolled_x4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f32; 4] {
    let k = b.len();
    debug_assert!(a0.len() == k && a1.len() == k && a2.len() == k && a3.len() == k);
    let (mut r0s0, mut r0s1, mut r0s2, mut r0s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut r1s0, mut r1s1, mut r1s2, mut r1s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut r2s0, mut r2s1, mut r2s2, mut r2s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut r3s0, mut r3s1, mut r3s2, mut r3s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut p = 0;
    while p + 4 <= k {
        let (b0, b1, b2, b3) = (b[p], b[p + 1], b[p + 2], b[p + 3]);
        r0s0 += a0[p] * b0;
        r0s1 += a0[p + 1] * b1;
        r0s2 += a0[p + 2] * b2;
        r0s3 += a0[p + 3] * b3;
        r1s0 += a1[p] * b0;
        r1s1 += a1[p + 1] * b1;
        r1s2 += a1[p + 2] * b2;
        r1s3 += a1[p + 3] * b3;
        r2s0 += a2[p] * b0;
        r2s1 += a2[p + 1] * b1;
        r2s2 += a2[p + 2] * b2;
        r2s3 += a2[p + 3] * b3;
        r3s0 += a3[p] * b0;
        r3s1 += a3[p + 1] * b1;
        r3s2 += a3[p + 2] * b2;
        r3s3 += a3[p + 3] * b3;
        p += 4;
    }
    while p < k {
        r0s0 += a0[p] * b[p];
        r1s0 += a1[p] * b[p];
        r2s0 += a2[p] * b[p];
        r3s0 += a3[p] * b[p];
        p += 1;
    }
    [
        (r0s0 + r0s1) + (r0s2 + r0s3),
        (r1s0 + r1s1) + (r1s2 + r1s3),
        (r2s0 + r2s1) + (r2s2 + r2s3),
        (r3s0 + r3s1) + (r3s2 + r3s3),
    ]
}

/// `out[m×n] = a[m×k] @ bt[n×k]ᵀ` — B is given transposed (row `j` of
/// `bt` is column `j` of B), so both operands stream row-major. This is
/// the LM-head layout: logits are dot products of hidden states against
/// embedding rows. The loop nest keeps `a` (small) hot and streams each
/// `bt` row exactly once across all batch rows.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matmul_transb(a: &[f32], bt: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(bt.len(), n * k, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    for j in 0..n {
        let b_row = &bt[j * k..(j + 1) * k];
        let mut i = 0;
        while i + 4 <= m {
            let r = dot_unrolled_x4(
                &a[i * k..(i + 1) * k],
                &a[(i + 1) * k..(i + 2) * k],
                &a[(i + 2) * k..(i + 3) * k],
                &a[(i + 3) * k..(i + 4) * k],
                b_row,
            );
            out[i * n + j] = r[0];
            out[(i + 1) * n + j] = r[1];
            out[(i + 2) * n + j] = r[2];
            out[(i + 3) * n + j] = r[3];
            i += 4;
        }
        while i < m {
            out[i * n + j] = dot_unrolled(&a[i * k..(i + 1) * k], b_row);
            i += 1;
        }
    }
}

/// [`matmul_transb`] with the output columns split across the worker pool
/// for large shapes (the vocab dimension of the logits projection).
/// Results are bit-identical to the serial kernel. Untimed — the backend
/// dispatch ([`crate::backend`]) wraps it with the logits counters.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub(crate) fn matmul_transb_pooled(
    a: &[f32],
    bt: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(bt.len(), n * k, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    let work = m * k * n;
    let workers = pool::global();
    let threads = workers.parallelism();
    if work < PARALLEL_MATMUL_THRESHOLD || threads < 2 || n < 2 * threads {
        matmul_transb(a, bt, m, k, n, out);
        return;
    }
    // Split the n (vocab) dimension into one stripe per worker. Each task
    // owns a disjoint column range of every output row; the rows are split
    // at the stripe boundaries so the borrows are disjoint `&mut` slices.
    let n_stripes = threads.min(n);
    let cols = n.div_ceil(n_stripes);
    let mut stripes: Vec<Vec<&mut [f32]>> = (0..n_stripes).map(|_| Vec::with_capacity(m)).collect();
    for mut row in out.chunks_mut(n) {
        for stripe in stripes.iter_mut() {
            let w = cols.min(row.len());
            let (head, tail) = row.split_at_mut(w);
            stripe.push(head);
            row = tail;
        }
    }
    workers.scoped(|s| {
        for (t, stripe_rows) in stripes.into_iter().enumerate() {
            let j0 = t * cols;
            s.spawn(move || {
                let mut rows = stripe_rows;
                let width = rows.first().map_or(0, |r| r.len());
                for local in 0..width {
                    let b_row = &bt[(j0 + local) * k..(j0 + local + 1) * k];
                    let mut i = 0;
                    while i + 4 <= rows.len() {
                        let r = dot_unrolled_x4(
                            &a[i * k..(i + 1) * k],
                            &a[(i + 1) * k..(i + 2) * k],
                            &a[(i + 2) * k..(i + 3) * k],
                            &a[(i + 3) * k..(i + 4) * k],
                            b_row,
                        );
                        rows[i][local] = r[0];
                        rows[i + 1][local] = r[1];
                        rows[i + 2][local] = r[2];
                        rows[i + 3][local] = r[3];
                        i += 4;
                    }
                    while i < rows.len() {
                        rows[i][local] = dot_unrolled(&a[i * k..(i + 1) * k], b_row);
                        i += 1;
                    }
                }
            });
        }
    });
}

/// `out[n] = x[k] @ w[k×n]` (one-token linear layer).
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn matvec(x: &[f32], w: &[f32], k: usize, n: usize, out: &mut [f32]) {
    matmul(x, w, 1, k, n, out);
}

/// Adds `bias[n]` to every row of `x[m×n]`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn add_bias(x: &mut [f32], bias: &[f32]) {
    let n = bias.len();
    assert_eq!(x.len() % n, 0, "bias length must divide tensor length");
    for row in x.chunks_exact_mut(n) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Element-wise `a += b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Layer normalization of each `n`-sized row: `(x - mean) / sqrt(var + eps)
/// * gamma + beta`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn layer_norm(x: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = gamma.len();
    assert_eq!(beta.len(), n);
    assert_eq!(x.len() % n, 0);
    for row in x.chunks_exact_mut(n) {
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((v, g), b) in row.iter_mut().zip(gamma).zip(beta) {
            *v = (*v - mean) * inv * g + b;
        }
    }
}

/// Tanh-approximation GELU, applied element-wise.
pub fn gelu(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for v in x.iter_mut() {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044_715 * u * u * u)).tanh());
    }
}

/// In-place softmax over a single row.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// In-place log-softmax over a single row.
pub fn log_softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let sum: f32 = x.iter().map(|v| (v - max).exp()).sum();
    let log_sum = sum.ln() + max;
    for v in x.iter_mut() {
        *v -= log_sum;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `acc += s * v` (scaled accumulate).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(acc: &mut [f32], s: f32, v: &[f32]) {
    assert_eq!(acc.len(), v.len());
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += s * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 100) as f32 / 50.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let id = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &id, 2, 2, 2, &mut out);
        assert_close(&out, &a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_close(&out, &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn matmul_rectangular() {
        // 1×3 @ 3×2.
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = vec![0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_close(&out, &[4.0, 5.0], 1e-6);
    }

    #[test]
    fn blocked_matmul_matches_reference_across_shapes() {
        // Shapes straddling the KB/NB panel boundaries, including tails.
        for &(m, k, n) in &[
            (1usize, 7usize, 5usize),
            (3, 130, 9),
            (5, 128, 256),
            (7, 129, 257),
            (2, 300, 40),
            (9, 64, 511),
        ] {
            let a = fill(m as u64 + 1, m * k);
            let b = fill(n as u64 + 2, k * n);
            let mut reference = vec![0.0; m * n];
            let mut blocked = vec![0.0; m * n];
            matmul_reference(&a, &b, m, k, n, &mut reference);
            matmul(&a, &b, m, k, n, &mut blocked);
            assert_close(&reference, &blocked, 1e-4);
        }
    }

    #[test]
    fn matmul_rows_independent_of_batching() {
        // Row i of an m-row product must be bit-identical to the m=1
        // product of that row: the guarantee batched decode relies on.
        let (m, k, n) = (16usize, 96usize, 192usize);
        let a = fill(11, m * k);
        let b = fill(12, k * n);
        let mut batched = vec![0.0; m * n];
        matmul(&a, &b, m, k, n, &mut batched);
        for i in 0..m {
            let mut solo = vec![0.0; n];
            matmul(&a[i * k..(i + 1) * k], &b, 1, k, n, &mut solo);
            assert_eq!(
                &batched[i * n..(i + 1) * n],
                &solo[..],
                "row {i} differs between batched and solo"
            );
        }
    }

    #[test]
    fn one_row_column_stripes_bit_identical_to_full_product() {
        // Stripes at arbitrary (non-panel-aligned) boundaries must
        // reassemble into exactly the serial m=1 product: the guarantee
        // the column-parallel LM-head path relies on.
        let (k, n) = (130usize, 700usize);
        let a = fill(41, k);
        let b = fill(42, k * n);
        let mut full = vec![0.0; n];
        matmul(&a, &b, 1, k, n, &mut full);
        for &cols in &[1usize, 33, 256, 300, 699] {
            let mut striped = vec![0.0; n];
            for (t, chunk) in striped.chunks_mut(cols).enumerate() {
                matmul_one_row_cols(&a, &b, k, n, t * cols, chunk);
            }
            assert_eq!(full, striped, "stripe width {cols} diverged");
        }
    }

    #[test]
    fn transpose_round_trips() {
        let (rows, cols) = (5usize, 7usize);
        let src = fill(51, rows * cols);
        let t = transpose(&src, rows, cols);
        assert_eq!(t[3 * rows + 2], src[2 * cols + 3]);
        assert_eq!(transpose(&t, cols, rows), src);
    }

    #[test]
    fn transb_matches_reference() {
        let (m, k, n) = (3usize, 37usize, 19usize);
        let a = fill(21, m * k);
        let bt = fill(22, n * k); // n×k (transposed B)
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut reference = vec![0.0; m * n];
        matmul_reference(&a, &b, m, k, n, &mut reference);
        let mut got = vec![0.0; m * n];
        matmul_transb(&a, &bt, m, k, n, &mut got);
        assert_close(&reference, &got, 1e-4);
    }

    #[test]
    fn transb_pooled_matches_serial() {
        // Above the parallel threshold so the striped path runs.
        let (m, k, n) = (4usize, 64usize, 16384usize);
        let a = fill(31, m * k);
        let bt = fill(32, n * k);
        let mut serial = vec![0.0; m * n];
        let mut pooled = vec![0.0; m * n];
        matmul_transb(&a, &bt, m, k, n, &mut serial);
        matmul_transb_pooled(&a, &bt, m, k, n, &mut pooled);
        assert_eq!(serial, pooled, "striped transb must be bit-identical");
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax(&mut x);
        assert_close(&x, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut a = vec![0.5, -1.0, 2.0];
        let mut b = a.clone();
        softmax(&mut a);
        log_softmax(&mut b);
        for (p, lp) in a.iter().zip(&b) {
            assert!((p.ln() - lp).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layer_norm(&mut x, &gamma, &beta, 1e-5);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_known_points() {
        let mut x = vec![0.0, 1.0, -1.0];
        gelu(&mut x);
        assert!((x[0]).abs() < 1e-6);
        assert!((x[1] - 0.8412).abs() < 1e-3);
        assert!((x[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn bias_and_residual() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        add_bias(&mut x, &[10.0, 20.0]);
        assert_close(&x, &[11.0, 22.0, 13.0, 24.0], 1e-6);
        let mut a = vec![1.0, 1.0];
        add_inplace(&mut a, &[2.0, 3.0]);
        assert_close(&a, &[3.0, 4.0], 1e-6);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[1.0, 2.0]);
        assert_close(&acc, &[3.0, 5.0], 1e-6);
    }

    #[test]
    fn kernel_timing_counters_advance() {
        let before = timing::snapshot();
        timing::record_matmul(std::time::Duration::from_nanos(7));
        timing::record_logits(std::time::Duration::from_nanos(9));
        timing::record_attention(std::time::Duration::from_nanos(11));
        let delta = timing::snapshot().delta_since(&before);
        assert!(delta.matmul_calls >= 1 && delta.matmul_ns >= 7);
        assert!(delta.logits_calls >= 1 && delta.logits_ns >= 9);
        assert!(delta.attention_calls >= 1 && delta.attention_ns >= 11);
    }
}
