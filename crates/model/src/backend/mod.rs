//! Pluggable numeric backends for the model's kernels.
//!
//! A [`KernelBackend`] owns every dense-kernel entry point the transformer
//! uses — matmul (pool-dispatched and serial), the LM-head/logits
//! projections, and PagedAttention decode (solo and batched) — plus the KV
//! block storage layout ([`KvLayout`]) its attention kernel reads. The
//! executor sizes the KV cache from the backend's byte-width, so a backend
//! that stores KV in fewer bytes per token yields more blocks from the same
//! memory budget (the paper's Fig. 12 capacity argument).
//!
//! Three backends ship:
//!
//! | backend     | matmul                        | KV layout        |
//! |-------------|-------------------------------|------------------|
//! | `scalar`    | cache-blocked, 4-deep unroll  | f32              |
//! | `simd`      | f32x8 register-tiled lanes    | f32              |
//! | `quant-kv8` | scalar matmul                 | int8 + f32 scale |
//!
//! Every backend upholds the *k-only accumulation-order contract*: per
//! output element, the floating-point accumulation order is a function of
//! the reduction index alone, never of the batch size, output position, or
//! pool split. That makes a batched result row bit-identical to the same
//! row computed solo *within* a backend (results may differ *across*
//! backends, which order their reductions differently).
//!
//! The active backend is picked at config time: [`BackendKind::from_env`]
//! reads [`BACKEND_ENV`] (`VLLM_KERNEL_BACKEND=scalar|simd|quant-kv8`) and
//! [`crate::ModelConfig`] carries the choice to executors and caches.

mod quant;
mod scalar;
mod simd;

pub use quant::QuantKv8Backend;
pub use scalar::ScalarBackend;
pub use simd::SimdBackend;

use crate::kv_cache::KvPool;
use crate::ops::{self, timing};
use crate::pool::{self, WorkerPool};
use crate::DecodeSeq;

/// Environment variable selecting the kernel backend
/// (`scalar` | `simd` | `quant-kv8`; default `scalar`).
pub const BACKEND_ENV: &str = "VLLM_KERNEL_BACKEND";

/// The available kernel backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Cache-blocked scalar f32 kernels (the PR 4 kernels, bit-for-bit).
    Scalar,
    /// Explicit 8-lane f32 vector kernels over the portable `wide` shim.
    Simd,
    /// Scalar matmul with int8-quantized KV block storage (per-slot scale).
    QuantKv8,
}

impl BackendKind {
    /// Stable name used in env selection, bench records, and metric labels.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Simd => "simd",
            Self::QuantKv8 => "quant-kv8",
        }
    }

    /// Parses a backend name (the inverse of [`Self::name`]).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(Self::Scalar),
            "simd" => Some(Self::Simd),
            "quant-kv8" => Some(Self::QuantKv8),
            _ => None,
        }
    }

    /// Reads [`BACKEND_ENV`], defaulting to [`Self::Scalar`] when unset or
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typo'd backend silently falling
    /// back to scalar would invalidate capacity and perf comparisons.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(BACKEND_ENV) {
            Ok(s) if s.is_empty() => Self::Scalar,
            Ok(s) => Self::from_name(&s).unwrap_or_else(|| {
                panic!("unknown {BACKEND_ENV} value `{s}` (expected scalar|simd|quant-kv8)")
            }),
            Err(_) => Self::Scalar,
        }
    }

    /// All backends, in a fixed order (scalar first — the baseline).
    #[must_use]
    pub const fn all() -> [Self; 3] {
        [Self::Scalar, Self::Simd, Self::QuantKv8]
    }
}

/// Element type of one KV scalar in block storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvElement {
    /// Plain `f32`, 4 bytes per element.
    F32,
    /// `i8` with one `f32` scale per stored vector (per token slot, K and V
    /// scaled independently): `q = round(x * 127 / max|x|)`, dequantized as
    /// `q * scale` with `scale = max|x| / 127`.
    Int8Scaled,
}

/// KV block storage layout: element type plus the byte math the block
/// manager uses to turn a memory budget into a block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvLayout {
    /// Element type of stored K/V scalars.
    pub element: KvElement,
}

impl KvLayout {
    /// Bytes one token occupies in one layer (its K vector plus its V
    /// vector, including any per-vector scale).
    #[must_use]
    pub const fn bytes_per_token(&self, hidden: usize) -> usize {
        match self.element {
            KvElement::F32 => 2 * hidden * std::mem::size_of::<f32>(),
            // K and V vectors at 1 byte/element, plus one f32 scale each.
            KvElement::Int8Scaled => 2 * (hidden + std::mem::size_of::<f32>()),
        }
    }

    /// Bytes one physical block occupies across all layers.
    #[must_use]
    pub const fn bytes_per_block(
        &self,
        n_layers: usize,
        block_size: usize,
        hidden: usize,
    ) -> usize {
        n_layers * block_size * self.bytes_per_token(hidden)
    }
}

/// A numeric backend: every dense kernel the transformer calls, plus the
/// KV storage layout its attention kernel reads.
///
/// Implementations are zero-sized and accessed as `&'static dyn` handles
/// through [`by_kind`] / [`selected`]; the trait is the single dispatch
/// seam that replaced the old `matmul_auto` threshold free functions.
pub trait KernelBackend: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Stable name for bench records and metric labels.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// The KV block storage layout this backend's attention kernel reads.
    /// Executors must allocate pools with this layout.
    fn kv_layout(&self) -> KvLayout;

    /// `out[m×n] = a[m×k] @ b[k×n]`, dispatched across the worker pool for
    /// large shapes and recorded into the dense-matmul kernel counters.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the shapes.
    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// Serial (single-task) matmul — the building block tensor-parallel
    /// worker shards run inside their own pool tasks, so it neither
    /// re-enters the pool nor records timing.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the shapes.
    fn matmul_serial(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// [`Self::matmul`] recorded into the logits kernel counters instead:
    /// the LM-head projection over the pre-transposed tied embedding goes
    /// through here so telemetry separates logits time from layer matmuls.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the shapes.
    fn matmul_logits(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// `out[m×n] = a[m×k] @ bt[n×k]ᵀ` (B given transposed), column-striped
    /// across the pool for large shapes; recorded into the logits counters.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the shapes.
    fn matmul_transb(&self, a: &[f32], bt: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// PagedAttention for one query token (§4.1 of the paper), reading K/V
    /// through `block_table` from a pool allocated with this backend's
    /// [`Self::kv_layout`].
    ///
    /// # Panics
    ///
    /// Panics if the block table is too short for `context_len`, shapes
    /// disagree, or the pool's element type doesn't match the layout.
    #[allow(clippy::too_many_arguments)]
    fn paged_attention_decode(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        context_len: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    );

    /// PagedAttention over a prefill chunk (scheduler-budgeted chunked
    /// prefill): query rows `num_cached .. num_cached + nq` attend to the
    /// first `context_len` positions read through `block_table`. Every
    /// backend routes this through the contiguous causal kernel after a
    /// layout-aware gather, so per-row accumulation order is a function of
    /// the reduction index alone and chunked logits are bit-identical to an
    /// unchunked prefill.
    ///
    /// # Panics
    ///
    /// Panics if the block table is too short for `context_len`, shapes
    /// disagree, or the pool's element type doesn't match the layout.
    #[allow(clippy::too_many_arguments)]
    fn paged_attention_prefill(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        nq: usize,
        context_len: usize,
        num_cached: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        crate::attention::paged_attention_prefill(
            q,
            pool,
            layer,
            block_table,
            nq,
            context_len,
            num_cached,
            n_heads,
            head_dim,
            out,
        );
    }

    /// Batched PagedAttention decode: one query token per sequence,
    /// parallelized over (sequence, head) pairs on `workers`, recorded into
    /// the attention kernel counters. Each output row is bit-identical to a
    /// solo [`Self::paged_attention_decode`] call for that sequence.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or any block table is too short for its
    /// context length.
    #[allow(clippy::too_many_arguments)]
    fn paged_attention_decode_batch(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        seqs: &[DecodeSeq<'_>],
        n_heads: usize,
        head_dim: usize,
        workers: &WorkerPool,
        out: &mut [f32],
    );
}

static SCALAR: ScalarBackend = ScalarBackend;
static SIMD: SimdBackend = SimdBackend;
static QUANT: QuantKv8Backend = QuantKv8Backend;

/// The backend singleton for `kind`.
#[must_use]
pub fn by_kind(kind: BackendKind) -> &'static dyn KernelBackend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Simd => &SIMD,
        BackendKind::QuantKv8 => &QUANT,
    }
}

/// The backend selected by [`BACKEND_ENV`] (re-read on each call so tests
/// and benches can vary the selection within one process).
#[must_use]
pub fn selected() -> &'static dyn KernelBackend {
    by_kind(BackendKind::from_env())
}

/// A serial matmul kernel: `(a, b, m, k, n, out)`.
pub(crate) type SerialMatmulFn = fn(&[f32], &[f32], usize, usize, usize, &mut [f32]);

/// A single-row column-window kernel: `(a, b, k, n, j0, out)` computes
/// columns `j0 .. j0 + out.len()` of `a[1×k] @ b[k×n]`.
pub(crate) type OneRowColsFn = fn(&[f32], &[f32], usize, usize, usize, &mut [f32]);

/// The shared pool-dispatch policy all backends use for `a @ b`: serial
/// below [`ops::PARALLEL_MATMUL_THRESHOLD`] multiply-adds, column stripes
/// for a single wide row (the solo LM-head shape), row chunks otherwise.
/// Backends plug in their own serial kernel and column-window kernel; the
/// split geometry never changes results because both kernels keep the
/// per-element accumulation order a function of `k` alone.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pooled_matmul(
    serial: SerialMatmulFn,
    one_row: OneRowColsFn,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let work = m * k * n;
    let workers = pool::global();
    let threads = workers.parallelism();
    if work < ops::PARALLEL_MATMUL_THRESHOLD || threads < 2 {
        serial(a, b, m, k, n, out);
        return;
    }
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    if m == 1 {
        // A single wide row: stripe the output columns across the pool.
        if n < 2 * threads {
            serial(a, b, m, k, n, out);
            return;
        }
        let cols = n.div_ceil(threads);
        workers.scoped(|s| {
            for (t, out_chunk) in out.chunks_mut(cols).enumerate() {
                s.spawn(move || one_row(a, b, k, n, t * cols, out_chunk));
            }
        });
        return;
    }
    let n_chunks = threads.min(m);
    let rows_per_chunk = m.div_ceil(n_chunks);
    workers.scoped(|s| {
        for (a_chunk, out_chunk) in a
            .chunks(rows_per_chunk * k)
            .zip(out.chunks_mut(rows_per_chunk * n))
        {
            s.spawn(move || {
                let rows = a_chunk.len() / k;
                serial(a_chunk, b, rows, k, n, out_chunk);
            });
        }
    });
}

/// [`pooled_matmul`] recorded into the dense-matmul kernel counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_matmul_timed(
    serial: SerialMatmulFn,
    one_row: OneRowColsFn,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let start = std::time::Instant::now();
    pooled_matmul(serial, one_row, a, b, m, k, n, out);
    timing::record_matmul(start.elapsed());
}

/// [`pooled_matmul`] recorded into the logits kernel counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_logits_timed(
    serial: SerialMatmulFn,
    one_row: OneRowColsFn,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let start = std::time::Instant::now();
    pooled_matmul(serial, one_row, a, b, m, k, n, out);
    timing::record_logits(start.elapsed());
}

/// Pool-striped `a @ btᵀ`, recorded into the logits kernel counters.
pub(crate) fn dispatch_transb_timed(
    a: &[f32],
    bt: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let start = std::time::Instant::now();
    ops::matmul_transb_pooled(a, bt, m, k, n, out);
    timing::record_logits(start.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 100) as f32 / 50.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(by_kind(kind).kind(), kind);
            assert_eq!(by_kind(kind).name(), kind.name());
        }
        assert_eq!(BackendKind::from_name("avx-512"), None);
    }

    #[test]
    fn kv_layout_byte_math() {
        let f32_layout = KvLayout {
            element: KvElement::F32,
        };
        let q8_layout = KvLayout {
            element: KvElement::Int8Scaled,
        };
        // hidden=256: f32 K+V = 2048 B/token; int8 = 2*(256+4) = 520 B.
        assert_eq!(f32_layout.bytes_per_token(256), 2048);
        assert_eq!(q8_layout.bytes_per_token(256), 520);
        assert_eq!(f32_layout.bytes_per_block(2, 16, 256), 2 * 16 * 2048);
        assert_eq!(q8_layout.bytes_per_block(2, 16, 256), 2 * 16 * 520);
        // The quantized layout must be at most half the f32 layout's bytes
        // per block (the capacity gate relies on this).
        assert!(
            q8_layout.bytes_per_block(2, 16, 256) * 2 <= f32_layout.bytes_per_block(2, 16, 256)
        );
    }

    #[test]
    fn matmul_counters_split_by_entry_point() {
        let be = by_kind(BackendKind::Scalar);
        let before = timing::snapshot();
        let (m, k, n) = (2usize, 16usize, 16usize);
        let a = fill(61, m * k);
        let b = fill(62, k * n);
        let mut via_logits = vec![0.0; m * n];
        be.matmul_logits(&a, &b, m, k, n, &mut via_logits);
        let mut via_matmul = vec![0.0; m * n];
        be.matmul(&a, &b, m, k, n, &mut via_matmul);
        be.matmul_transb(&a, &b, m, k, n, &mut via_matmul);
        let delta = timing::snapshot().delta_since(&before);
        assert!(delta.matmul_calls >= 1, "matmul counter must advance");
        assert!(delta.logits_calls >= 2, "logits counter must advance");
        assert_eq!(via_logits.len(), via_matmul.len());
    }

    #[test]
    fn pooled_dispatch_matches_serial_for_every_backend() {
        // Above the parallel threshold (256×128×128 = 4.2M mul-adds) and
        // below it, with uneven row splits, every backend's pooled matmul
        // must be bit-identical to its own serial kernel.
        for kind in BackendKind::all() {
            let be = by_kind(kind);
            for &(m, k, n) in &[(3usize, 5usize, 7usize), (256, 128, 128), (97, 160, 140)] {
                let a = fill(kind.name().len() as u64, m * k);
                let b = fill(kind.name().len() as u64 + 1, k * n);
                let mut serial = vec![0.0; m * n];
                let mut pooled = vec![0.0; m * n];
                be.matmul_serial(&a, &b, m, k, n, &mut serial);
                be.matmul(&a, &b, m, k, n, &mut pooled);
                assert_eq!(
                    serial,
                    pooled,
                    "{}: pooled split must be bit-identical at {m}x{k}x{n}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn one_wide_row_stripes_match_serial_for_every_backend() {
        // The solo LM-head shape (m=1, wide n) above the threshold takes
        // the column-stripe path; it must still be bit-identical.
        let (k, n) = (128usize, 32768usize);
        for kind in BackendKind::all() {
            let be = by_kind(kind);
            let a = fill(71, k);
            let b = fill(72, k * n);
            let mut serial = vec![0.0; n];
            let mut pooled = vec![0.0; n];
            be.matmul_serial(&a, &b, 1, k, n, &mut serial);
            be.matmul(&a, &b, 1, k, n, &mut pooled);
            assert_eq!(serial, pooled, "{}: column stripes diverged", kind.name());
        }
    }

    #[test]
    fn backends_agree_within_tolerance() {
        // Different backends may round differently but must agree closely.
        let (m, k, n) = (5usize, 130usize, 37usize);
        let a = fill(81, m * k);
        let b = fill(82, k * n);
        let mut reference = vec![0.0; m * n];
        ops::matmul_reference(&a, &b, m, k, n, &mut reference);
        for kind in BackendKind::all() {
            let mut got = vec![0.0; m * n];
            by_kind(kind).matmul_serial(&a, &b, m, k, n, &mut got);
            for (i, (x, y)) in reference.iter().zip(&got).enumerate() {
                assert!((x - y).abs() <= 1e-3, "{} idx {i}: {x} vs {y}", kind.name());
            }
        }
    }
}
