//! The quantized-KV backend: scalar matmul kernels with int8 KV block
//! storage.
//!
//! K/V vectors are quantized on write with one f32 scale per stored vector
//! (`scale = max|x| / 127`, so the reconstruction error per element is at
//! most `scale / 2`), shrinking [`KvLayout::bytes_per_block`] by ~4× at
//! typical widths — which the block manager converts into proportionally
//! more blocks per memory budget, and the scheduler into a larger
//! concurrent batch (the paper's Fig. 12 capacity argument).
//!
//! The matmul family is byte-for-byte the scalar backend's — quantization
//! touches only the attention kernel's KV reads — so logits differ from
//! scalar only through the attention output, keeping greedy decode
//! token-stable on ordinary prompts.

use super::{BackendKind, KernelBackend, KvElement, KvLayout};
use crate::attention;
use crate::kv_cache::KvPool;
use crate::ops;
use crate::pool::WorkerPool;
use crate::DecodeSeq;

/// Dot product of an f32 query against an int8 key vector, accumulated in
/// f32 with four independent lanes (fixed combination order, matching the
/// shape of [`ops::dot`]'s unrolled pattern). The caller multiplies by the
/// vector's dequantization scale once, outside the loop.
#[inline]
fn dot_q8(q: &[f32], k_q: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), k_q.len());
    let len = q.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut p = 0;
    while p + 4 <= len {
        s0 += q[p] * f32::from(k_q[p]);
        s1 += q[p + 1] * f32::from(k_q[p + 1]);
        s2 += q[p + 2] * f32::from(k_q[p + 2]);
        s3 += q[p + 3] * f32::from(k_q[p + 3]);
        p += 4;
    }
    while p < len {
        s0 += q[p] * f32::from(k_q[p]);
        p += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// `acc += s * dequant(v_q)` where the scale is folded into `s`.
#[inline]
fn axpy_q8(acc: &mut [f32], s: f32, v_q: &[i8]) {
    debug_assert_eq!(acc.len(), v_q.len());
    for (a, &x) in acc.iter_mut().zip(v_q) {
        *a += s * f32::from(x);
    }
}

/// Online-softmax decode head reading int8 KV blocks. Falls back to the
/// scalar f32 head when handed an f32 pool, so the backend also works
/// against pools tests allocate with [`KvPool::new`].
pub(crate) fn decode_head(
    q_h: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    ho: usize,
    o: &mut [f32],
) {
    if pool.element() == KvElement::F32 {
        attention::decode_head(q_h, pool, layer, block_table, context_len, ho, o);
        return;
    }
    let head_dim = q_h.len();
    let hidden = pool.hidden();
    let bs = pool.block_size();
    let num_blocks = context_len.div_ceil(bs);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut m = f32::NEG_INFINITY;
    let mut l = 0.0f32;
    let mut acc = vec![0.0f32; head_dim];
    for (j, &block) in block_table.iter().take(num_blocks).enumerate() {
        let fill = (context_len - j * bs).min(bs);
        let (k_block, k_scales) = pool.key_block_q8(layer, block);
        let (v_block, v_scales) = pool.value_block_q8(layer, block);
        for slot in 0..fill {
            let k_h = &k_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            let s = dot_q8(q_h, k_h) * k_scales[slot] * scale;
            let m_new = m.max(s);
            let correction = (m - m_new).exp();
            let w = (s - m_new).exp();
            l = l * correction + w;
            for a in acc.iter_mut() {
                *a *= correction;
            }
            let v_h = &v_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            axpy_q8(&mut acc, w * v_scales[slot], v_h);
            m = m_new;
        }
    }
    if l > 0.0 {
        for (dst, a) in o.iter_mut().zip(&acc) {
            *dst = a / l;
        }
    } else {
        o.fill(0.0);
    }
}

/// Scalar matmul kernels over int8-with-per-slot-scale KV storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantKv8Backend;

impl KernelBackend for QuantKv8Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::QuantKv8
    }

    fn kv_layout(&self) -> KvLayout {
        KvLayout {
            element: KvElement::Int8Scaled,
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_matmul_timed(ops::matmul, ops::matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_serial(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        ops::matmul(a, b, m, k, n, out);
    }

    fn matmul_logits(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_logits_timed(ops::matmul, ops::matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_transb(&self, a: &[f32], bt: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_transb_timed(a, bt, m, k, n, out);
    }

    fn paged_attention_decode(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        context_len: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        attention::check_decode_shapes(q, pool, block_table, context_len, n_heads, head_dim, out);
        for h in 0..n_heads {
            let ho = h * head_dim;
            decode_head(
                &q[ho..ho + head_dim],
                pool,
                layer,
                block_table,
                context_len,
                ho,
                &mut out[ho..ho + head_dim],
            );
        }
    }

    fn paged_attention_prefill(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        nq: usize,
        context_len: usize,
        num_cached: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        // Gather dequantizes the int8 blocks back to f32 before the
        // contiguous causal kernel runs, so chunked and unchunked prefill
        // see byte-identical (dequantized) K/V and produce identical logits.
        attention::paged_attention_prefill(
            q,
            pool,
            layer,
            block_table,
            nq,
            context_len,
            num_cached,
            n_heads,
            head_dim,
            out,
        );
    }

    fn paged_attention_decode_batch(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        seqs: &[DecodeSeq<'_>],
        n_heads: usize,
        head_dim: usize,
        workers: &WorkerPool,
        out: &mut [f32],
    ) {
        attention::decode_batch_driver(
            q,
            pool,
            layer,
            seqs,
            n_heads,
            head_dim,
            workers,
            out,
            decode_head,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::paged_attention_decode;

    const H: usize = 2;
    const HD: usize = 8;
    const HIDDEN: usize = H * HD;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 / 1000.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn quant_attention_close_to_f32_attention() {
        let ctx = 33usize;
        let bs = 4usize;
        let nb = ctx.div_ceil(bs);
        let k = fill(2, ctx * HIDDEN);
        let v = fill(3, ctx * HIDDEN);
        let table: Vec<usize> = (0..nb).collect();
        let mut f32_pool = KvPool::new(1, nb, bs, HIDDEN);
        let mut q8_pool = KvPool::with_element(1, nb, bs, HIDDEN, KvElement::Int8Scaled);
        for t in 0..ctx {
            let kt = &k[t * HIDDEN..(t + 1) * HIDDEN];
            let vt = &v[t * HIDDEN..(t + 1) * HIDDEN];
            f32_pool.write(0, table[t / bs], t % bs, kt, vt);
            q8_pool.write(0, table[t / bs], t % bs, kt, vt);
        }
        let q = fill(1, HIDDEN);
        let mut exact = vec![0.0; HIDDEN];
        paged_attention_decode(&q, &f32_pool, 0, &table, ctx, H, HD, &mut exact);
        let mut quant = vec![0.0; HIDDEN];
        QuantKv8Backend.paged_attention_decode(&q, &q8_pool, 0, &table, ctx, H, HD, &mut quant);
        // Attention output is a convex combination of values whose per
        // element quantization error is <= scale/2 <= max|v|/254, so the
        // output error stays within ~1% of the value range here.
        for (i, (a, b)) in exact.iter().zip(&quant).enumerate() {
            assert!((a - b).abs() < 2e-2, "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn quant_backend_on_f32_pool_matches_scalar_head() {
        // Tests and tools that allocate plain f32 pools must still work.
        let ctx = 9usize;
        let bs = 4usize;
        let nb = ctx.div_ceil(bs);
        let table: Vec<usize> = (0..nb).collect();
        let mut pool = KvPool::new(1, nb, bs, HIDDEN);
        let k = fill(7, ctx * HIDDEN);
        let v = fill(8, ctx * HIDDEN);
        for t in 0..ctx {
            pool.write(
                0,
                table[t / bs],
                t % bs,
                &k[t * HIDDEN..(t + 1) * HIDDEN],
                &v[t * HIDDEN..(t + 1) * HIDDEN],
            );
        }
        let q = fill(9, HIDDEN);
        let mut scalar_out = vec![0.0; HIDDEN];
        paged_attention_decode(&q, &pool, 0, &table, ctx, H, HD, &mut scalar_out);
        let mut quant_out = vec![0.0; HIDDEN];
        QuantKv8Backend.paged_attention_decode(&q, &pool, 0, &table, ctx, H, HD, &mut quant_out);
        assert_eq!(scalar_out, quant_out);
    }
}
