//! The scalar backend: the PR 4 cache-blocked f32 kernels, bit-for-bit.
//!
//! This is the baseline every other backend is compared against, and the
//! backend whose logits must stay bit-identical to the pre-refactor
//! kernels (the `logits_match` gate in `BENCH_kernels.json`).

use super::{BackendKind, KernelBackend, KvElement, KvLayout};
use crate::attention;
use crate::kv_cache::KvPool;
use crate::ops;
use crate::pool::WorkerPool;
use crate::DecodeSeq;

/// Cache-blocked scalar f32 kernels with f32 KV storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn kv_layout(&self) -> KvLayout {
        KvLayout {
            element: KvElement::F32,
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_matmul_timed(ops::matmul, ops::matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_serial(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        ops::matmul(a, b, m, k, n, out);
    }

    fn matmul_logits(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_logits_timed(ops::matmul, ops::matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_transb(&self, a: &[f32], bt: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_transb_timed(a, bt, m, k, n, out);
    }

    fn paged_attention_decode(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        context_len: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        attention::paged_attention_decode(
            q,
            pool,
            layer,
            block_table,
            context_len,
            n_heads,
            head_dim,
            out,
        );
    }

    fn paged_attention_prefill(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        nq: usize,
        context_len: usize,
        num_cached: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        attention::paged_attention_prefill(
            q,
            pool,
            layer,
            block_table,
            nq,
            context_len,
            num_cached,
            n_heads,
            head_dim,
            out,
        );
    }

    fn paged_attention_decode_batch(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        seqs: &[DecodeSeq<'_>],
        n_heads: usize,
        head_dim: usize,
        workers: &WorkerPool,
        out: &mut [f32],
    ) {
        attention::paged_attention_decode_batch(
            q, pool, layer, seqs, n_heads, head_dim, workers, out,
        );
    }
}
