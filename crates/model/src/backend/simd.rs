//! The SIMD backend: explicit 8-lane f32 vector kernels over the portable
//! `wide` shim.
//!
//! The matmul is register-tiled: a `4 × 16` output tile (four rows, two
//! `f32x8` lanes each) is held in eight accumulator vectors across the
//! *entire* sequential `k` loop, so each output element sees exactly one
//! accumulator updated in ascending-`k` order — the k-only
//! accumulation-order contract — and the per-4-k output load/store traffic
//! of the scalar panel kernel disappears. Tails (rows mod 4, columns
//! mod 16) use single-accumulator sequential-`k` loops with the same
//! per-element order, so tiling and pool striping never change results.
//!
//! The paged-attention decode head vectorizes the q·k dot products and the
//! weighted-V accumulation over `head_dim` with `f32x8` lanes and a fixed
//! pairwise horizontal reduction.

use wide::f32x8;

use super::{BackendKind, KernelBackend, KvElement, KvLayout};
use crate::attention;
use crate::kv_cache::KvPool;
use crate::pool::WorkerPool;
use crate::DecodeSeq;

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (two `f32x8` lanes).
const NR: usize = 16;

/// Serial register-tiled matmul: `out[m×n] = a[m×k] @ b[k×n]`.
///
/// On x86-64 with AVX2 the tile kernel is re-instantiated under
/// `#[target_feature(enable = "avx2")]` so the 8-lane shim ops lower to
/// single 256-bit instructions instead of baseline SSE pairs. The
/// arithmetic is lane-wise identical either way — same operations, same
/// per-element order, no FMA contraction — so results are bit-equal
/// across the two instantiations.
pub(crate) fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "out shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { matmul_avx2(a, b, m, k, n, out) };
        return;
    }
    matmul_impl(a, b, m, k, n, out);
}

/// AVX2 instantiation of [`matmul_impl`]; lane-wise identical arithmetic.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_avx2(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_impl(a, b, m, k, n, out);
}

#[inline(always)]
fn matmul_impl(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let n_main = n - n % NR;
    let m_main = m - m % MR;
    let mut jj = 0;
    while jj < n_main {
        let mut ii = 0;
        while ii < m_main {
            // 4×16 output tile held in eight accumulator registers across
            // the whole k loop.
            let mut acc = [[f32x8::ZERO; 2]; MR];
            for p in 0..k {
                let b_row = &b[p * n + jj..p * n + jj + NR];
                let b0 = f32x8::from_slice(&b_row[..8]);
                let b1 = f32x8::from_slice(&b_row[8..]);
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_rp = f32x8::splat(a[(ii + r) * k + p]);
                    acc_r[0] = a_rp.mul_add(b0, acc_r[0]);
                    acc_r[1] = a_rp.mul_add(b1, acc_r[1]);
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                let o = (ii + r) * n + jj;
                acc_r[0].write_to_slice(&mut out[o..o + 8]);
                acc_r[1].write_to_slice(&mut out[o + 8..o + NR]);
            }
            ii += MR;
        }
        // Leftover rows: one row at a time, same two lanes, same k order.
        for i in m_main..m {
            let mut acc0 = f32x8::ZERO;
            let mut acc1 = f32x8::ZERO;
            for p in 0..k {
                let a_ip = f32x8::splat(a[i * k + p]);
                let b_row = &b[p * n + jj..p * n + jj + NR];
                acc0 = a_ip.mul_add(f32x8::from_slice(&b_row[..8]), acc0);
                acc1 = a_ip.mul_add(f32x8::from_slice(&b_row[8..]), acc1);
            }
            let o = i * n + jj;
            acc0.write_to_slice(&mut out[o..o + 8]);
            acc1.write_to_slice(&mut out[o + 8..o + NR]);
        }
        jj += NR;
    }
    // Leftover columns: scalar single-accumulator sequential-k loops.
    if n_main < n {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in n_main..n {
                let mut s = 0.0f32;
                for (p, &a_ip) in a_row.iter().enumerate() {
                    s += a_ip * b[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
    }
}

/// One output-column window of a single-row product (the column-stripe
/// kernel for the pooled m=1 path): `out` receives columns
/// `j0 .. j0 + out.len()` of `a[1×k] @ b[k×n]`. Per-element accumulation
/// order is identical to [`matmul`]'s, so stripes reassemble bit-exactly.
pub(crate) fn matmul_one_row_cols(
    a: &[f32],
    b: &[f32],
    _k: usize,
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { one_row_cols_avx2(a, b, n, j0, out) };
        return;
    }
    one_row_cols_impl(a, b, n, j0, out);
}

/// AVX2 instantiation of [`one_row_cols_impl`]; lane-wise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn one_row_cols_avx2(a: &[f32], b: &[f32], n: usize, j0: usize, out: &mut [f32]) {
    one_row_cols_impl(a, b, n, j0, out);
}

#[inline(always)]
fn one_row_cols_impl(a: &[f32], b: &[f32], n: usize, j0: usize, out: &mut [f32]) {
    let width = out.len();
    let w_main = width - width % 8;
    let mut jj = 0;
    while jj < w_main {
        let mut acc = f32x8::ZERO;
        for (p, &a_p) in a.iter().enumerate() {
            acc = f32x8::splat(a_p).mul_add(f32x8::from_slice(&b[p * n + j0 + jj..]), acc);
        }
        acc.write_to_slice(&mut out[jj..jj + 8]);
        jj += 8;
    }
    for j in w_main..width {
        let mut s = 0.0f32;
        for (p, &a_p) in a.iter().enumerate() {
            s += a_p * b[p * n + j0 + j];
        }
        out[j] = s;
    }
}

/// Vectorized dot product with a fixed pairwise lane reduction; the scalar
/// tail folds into the reduced sum in ascending order.
#[inline]
fn dot_simd(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let main = len - len % 8;
    let mut acc = f32x8::ZERO;
    let mut p = 0;
    while p < main {
        acc = f32x8::from_slice(&a[p..]).mul_add(f32x8::from_slice(&b[p..]), acc);
        p += 8;
    }
    let mut s = acc.reduce_add();
    while p < len {
        s += a[p] * b[p];
        p += 1;
    }
    s
}

/// Vectorized `acc += s * v`.
#[inline]
fn axpy_simd(acc: &mut [f32], s: f32, v: &[f32]) {
    debug_assert_eq!(acc.len(), v.len());
    let len = acc.len();
    let main = len - len % 8;
    let sv = f32x8::splat(s);
    let mut p = 0;
    while p < main {
        let r = sv.mul_add(f32x8::from_slice(&v[p..]), f32x8::from_slice(&acc[p..]));
        r.write_to_slice(&mut acc[p..]);
        p += 8;
    }
    while p < len {
        acc[p] += s * v[p];
        p += 1;
    }
}

/// Online-softmax decode head with `f32x8` dot/axpy inner loops. Shared by
/// the solo and batched entry points, so their rows are bit-identical.
pub(crate) fn decode_head(
    q_h: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    ho: usize,
    o: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { decode_head_avx2(q_h, pool, layer, block_table, context_len, ho, o) };
        return;
    }
    decode_head_impl(q_h, pool, layer, block_table, context_len, ho, o);
}

/// AVX2 instantiation of [`decode_head_impl`]; lane-wise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn decode_head_avx2(
    q_h: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    ho: usize,
    o: &mut [f32],
) {
    decode_head_impl(q_h, pool, layer, block_table, context_len, ho, o);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn decode_head_impl(
    q_h: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    ho: usize,
    o: &mut [f32],
) {
    let head_dim = q_h.len();
    let hidden = pool.hidden();
    let bs = pool.block_size();
    let num_blocks = context_len.div_ceil(bs);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut m = f32::NEG_INFINITY;
    let mut l = 0.0f32;
    let mut acc = vec![0.0f32; head_dim];
    for (j, &block) in block_table.iter().take(num_blocks).enumerate() {
        let fill = (context_len - j * bs).min(bs);
        let k_block = pool.key_block(layer, block);
        let v_block = pool.value_block(layer, block);
        for slot in 0..fill {
            let k_h = &k_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            let s = dot_simd(q_h, k_h) * scale;
            let m_new = m.max(s);
            let correction = (m - m_new).exp();
            let w = (s - m_new).exp();
            l = l * correction + w;
            for a in acc.iter_mut() {
                *a *= correction;
            }
            let v_h = &v_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            axpy_simd(&mut acc, w, v_h);
            m = m_new;
        }
    }
    if l > 0.0 {
        for (dst, a) in o.iter_mut().zip(&acc) {
            *dst = a / l;
        }
    } else {
        o.fill(0.0);
    }
}

/// Explicit 8-lane f32 vector kernels with f32 KV storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl KernelBackend for SimdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simd
    }

    fn kv_layout(&self) -> KvLayout {
        KvLayout {
            element: KvElement::F32,
        }
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_matmul_timed(matmul, matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_serial(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        matmul(a, b, m, k, n, out);
    }

    fn matmul_logits(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_logits_timed(matmul, matmul_one_row_cols, a, b, m, k, n, out);
    }

    fn matmul_transb(&self, a: &[f32], bt: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        super::dispatch_transb_timed(a, bt, m, k, n, out);
    }

    fn paged_attention_decode(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        context_len: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        attention::check_decode_shapes(q, pool, block_table, context_len, n_heads, head_dim, out);
        for h in 0..n_heads {
            let ho = h * head_dim;
            decode_head(
                &q[ho..ho + head_dim],
                pool,
                layer,
                block_table,
                context_len,
                ho,
                &mut out[ho..ho + head_dim],
            );
        }
    }

    fn paged_attention_prefill(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        block_table: &[usize],
        nq: usize,
        context_len: usize,
        num_cached: usize,
        n_heads: usize,
        head_dim: usize,
        out: &mut [f32],
    ) {
        // The SIMD decode path keeps its own per-head online-softmax kernel,
        // but chunked prefill must preserve the k-order/t-order accumulation
        // contract, so it shares the contiguous-gather path with every other
        // backend.
        attention::paged_attention_prefill(
            q,
            pool,
            layer,
            block_table,
            nq,
            context_len,
            num_cached,
            n_heads,
            head_dim,
            out,
        );
    }

    fn paged_attention_decode_batch(
        &self,
        q: &[f32],
        pool: &KvPool,
        layer: usize,
        seqs: &[DecodeSeq<'_>],
        n_heads: usize,
        head_dim: usize,
        workers: &WorkerPool,
        out: &mut [f32],
    ) {
        attention::decode_batch_driver(
            q,
            pool,
            layer,
            seqs,
            n_heads,
            head_dim,
            workers,
            out,
            decode_head,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 100) as f32 / 50.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn simd_matmul_matches_reference_across_shapes() {
        // Shapes straddling the 4×16 tile boundaries, including tails.
        for &(m, k, n) in &[
            (1usize, 7usize, 5usize),
            (4, 32, 16),
            (5, 33, 17),
            (3, 130, 9),
            (7, 129, 257),
            (16, 64, 48),
        ] {
            let a = fill(m as u64 + 1, m * k);
            let b = fill(n as u64 + 2, k * n);
            let mut reference = vec![0.0; m * n];
            let mut got = vec![0.0; m * n];
            ops::matmul_reference(&a, &b, m, k, n, &mut reference);
            matmul(&a, &b, m, k, n, &mut got);
            for (i, (x, y)) in reference.iter().zip(&got).enumerate() {
                assert!((x - y).abs() <= 1e-4, "{m}x{k}x{n} idx {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn simd_rows_independent_of_batching() {
        // Row i of an m-row product must be bit-identical to the m=1
        // product of that row (the k-only accumulation-order contract).
        let (m, k, n) = (13usize, 96usize, 50usize);
        let a = fill(11, m * k);
        let b = fill(12, k * n);
        let mut batched = vec![0.0; m * n];
        matmul(&a, &b, m, k, n, &mut batched);
        for i in 0..m {
            let mut solo = vec![0.0; n];
            matmul(&a[i * k..(i + 1) * k], &b, 1, k, n, &mut solo);
            assert_eq!(
                &batched[i * n..(i + 1) * n],
                &solo[..],
                "row {i} differs between batched and solo"
            );
        }
    }

    #[test]
    fn simd_column_stripes_bit_identical_to_full_product() {
        let (k, n) = (65usize, 700usize);
        let a = fill(41, k);
        let b = fill(42, k * n);
        let mut full = vec![0.0; n];
        matmul(&a, &b, 1, k, n, &mut full);
        for &cols in &[1usize, 33, 256, 300, 699] {
            let mut striped = vec![0.0; n];
            for (t, chunk) in striped.chunks_mut(cols).enumerate() {
                matmul_one_row_cols(&a, &b, k, n, t * cols, chunk);
            }
            assert_eq!(full, striped, "stripe width {cols} diverged");
        }
    }

    #[test]
    fn dot_and_axpy_match_scalar_within_tolerance() {
        for &len in &[1usize, 7, 8, 9, 31, 32, 100] {
            let a = fill(1, len);
            let b = fill(2, len);
            let scalar: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_simd(&a, &b) - scalar).abs() <= 1e-4 * (len as f32));
            let mut acc = fill(3, len);
            let mut acc_ref = acc.clone();
            axpy_simd(&mut acc, 0.75, &b);
            for (r, &x) in acc_ref.iter_mut().zip(&b) {
                *r += 0.75 * x;
            }
            for (x, y) in acc.iter().zip(&acc_ref) {
                assert!((x - y).abs() <= 1e-5);
            }
        }
    }
}
