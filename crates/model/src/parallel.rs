//! Megatron-style tensor-parallel execution (§4.6).
//!
//! The attention operator is split on the head dimension; the MLP on its
//! intermediate dimension. Every worker holds a weight shard plus a paged
//! KV pool *for its heads only*, while all workers share the single block
//! table handed down by the centralized scheduler — each worker sees the
//! same physical block ids but stores only its slice of the KV cache, as in
//! the paper. Partial results are combined with an all-reduce (a sum across
//! worker partials) after the attention output projection and after the MLP
//! down projection.
//!
//! Worker phases execute on the persistent [`crate::pool`] worker pool
//! (one task per worker per phase), so no OS threads are spawned on the
//! per-step hot path. Decode-phase items are batched into one stacked
//! forward per step, mirroring the single-worker executor.

use std::time::Instant;

use vllm_core::error::{Result, VllmError};
use vllm_core::executor::{KernelTiming, ModelExecutor, SeqStepOutput, StepResult};
use vllm_core::plan::StepPlan;

use vllm_core::config::CacheConfig;

use crate::attention::contiguous_causal_attention;
use crate::config::PositionEncoding;
use crate::executor::KernelTelemetry;
use crate::kv_cache::KvCache;
use crate::ops::{add_bias, add_inplace, gelu, layer_norm, timing};
use crate::pool;
use crate::sampler::{mix_seed, sample_candidates};
use crate::transformer::{apply_rope, DecodeInput, Transformer};

const LN_EPS: f32 = 1e-5;

/// Replicated token (+ absolute position) embedding. Reads only the
/// replicated weights, never the KV pools, so it can run concurrently with
/// cache-op application on the workers.
fn embed(model: &Transformer, tokens: &[u32], positions: &[usize]) -> Vec<f32> {
    let h = model.config.hidden;
    let rotary = model.config.position_encoding == PositionEncoding::Rotary;
    let mut x = vec![0.0f32; tokens.len() * h];
    for (i, (&tok, &pos)) in tokens.iter().zip(positions).enumerate() {
        let e = &model.wte[tok as usize * h..(tok as usize + 1) * h];
        let p = &model.wpe[pos * h..(pos + 1) * h];
        for j in 0..h {
            x[i * h + j] = if rotary { e[j] } else { e[j] + p[j] };
        }
    }
    x
}

/// Suffix of a step input that still needs compute (shared-prefix prefills
/// skip their cached tokens), as `(tokens, positions)`.
fn compute_suffix(item: &vllm_core::executor::SeqStepInput) -> (Vec<u32>, Vec<usize>) {
    let skip = if item.tokens.len() > 1 {
        item.num_cached_tokens.min(item.tokens.len() - 1)
    } else {
        0
    };
    let tokens = item.tokens[skip..].to_vec();
    let positions = (item.first_position + skip..item.first_position + item.tokens.len()).collect();
    (tokens, positions)
}

/// One worker's weight shard for one layer.
#[derive(Debug, Clone)]
struct LayerShard {
    /// `hidden × 3·hl` (columns: local Q, local K, local V).
    w_qkv: Vec<f32>,
    /// `3·hl`.
    b_qkv: Vec<f32>,
    /// `hl × hidden` (rows of this worker's heads).
    w_o: Vec<f32>,
    /// `hidden × ml` columns of the up projection.
    w_fc: Vec<f32>,
    /// `ml`.
    b_fc: Vec<f32>,
    /// `ml × hidden` rows of the down projection.
    w_proj: Vec<f32>,
}

/// One tensor-parallel worker: weight shards plus its KV cache slice.
#[derive(Debug)]
struct Worker {
    layers: Vec<LayerShard>,
    cache: KvCache,
}

/// Cached telemetry handles for the tensor-parallel executor, registered
/// when the engine attaches its telemetry bundle.
#[derive(Debug, Clone)]
struct TpTelemetry {
    forward_seconds: vllm_telemetry::Histogram,
    all_reduce_seconds: vllm_telemetry::Histogram,
    cache_op_seconds: vllm_telemetry::Histogram,
    all_reduces_total: vllm_telemetry::Counter,
    steps_total: vllm_telemetry::Counter,
    kernels: KernelTelemetry,
}

/// Tensor-parallel CPU executor over `num_workers` head shards.
#[derive(Debug)]
pub struct TensorParallelExecutor {
    model: Transformer,
    workers: Vec<Worker>,
    num_workers: usize,
    /// Number of all-reduce operations performed (metrics; two per layer per
    /// forward, as in Megatron-LM).
    pub num_all_reduces: u64,
    /// Total iterations executed.
    pub steps: u64,
    telemetry: Option<TpTelemetry>,
}

impl TensorParallelExecutor {
    /// Shards `model` across `num_workers` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` does not divide the model's head count.
    #[must_use]
    pub fn new(model: Transformer, num_workers: usize, cache_config: &CacheConfig) -> Self {
        let cfg = &model.config;
        assert!(num_workers > 0, "need at least one worker");
        assert_eq!(
            cfg.n_heads % num_workers,
            0,
            "workers ({num_workers}) must divide heads ({})",
            cfg.n_heads
        );
        let h = cfg.hidden;
        let hl = h / num_workers; // Local hidden (heads split evenly).
        let m = 4 * h;
        let ml = m / num_workers; // Local MLP intermediate width.

        // Worker KV shards use the backend's element layout, like the
        // single-worker executor's cache.
        let element = model.backend().kv_layout().element;

        let workers = (0..num_workers)
            .map(|w| {
                let layers = model
                    .layers
                    .iter()
                    .map(|lw| {
                        // QKV: take this worker's head columns of Q, K, V.
                        let mut w_qkv = Vec::with_capacity(h * 3 * hl);
                        for r in 0..h {
                            let row = &lw.w_qkv[r * 3 * h..(r + 1) * 3 * h];
                            for part in 0..3 {
                                let base = part * h + w * hl;
                                w_qkv.extend_from_slice(&row[base..base + hl]);
                            }
                        }
                        let mut b_qkv = Vec::with_capacity(3 * hl);
                        for part in 0..3 {
                            let base = part * h + w * hl;
                            b_qkv.extend_from_slice(&lw.b_qkv[base..base + hl]);
                        }
                        // Output projection: this worker's head rows.
                        let w_o = lw.w_o[w * hl * h..(w + 1) * hl * h].to_vec();
                        // MLP: columns of fc, rows of proj.
                        let mut w_fc = Vec::with_capacity(h * ml);
                        for r in 0..h {
                            let row = &lw.w_fc[r * m..(r + 1) * m];
                            w_fc.extend_from_slice(&row[w * ml..(w + 1) * ml]);
                        }
                        let b_fc = lw.b_fc[w * ml..(w + 1) * ml].to_vec();
                        let w_proj = lw.w_proj[w * ml * h..(w + 1) * ml * h].to_vec();
                        LayerShard {
                            w_qkv,
                            b_qkv,
                            w_o,
                            w_fc,
                            b_fc,
                            w_proj,
                        }
                    })
                    .collect();
                Worker {
                    layers,
                    cache: KvCache::with_element(
                        cfg.n_layers,
                        cache_config.num_gpu_blocks,
                        cache_config.num_cpu_blocks.max(1),
                        cache_config.block_size,
                        hl,
                        element,
                    ),
                }
            })
            .collect();
        Self {
            model,
            workers,
            num_workers,
            num_all_reduces: 0,
            steps: 0,
            telemetry: None,
        }
    }

    /// Number of workers (tensor-parallel degree).
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The replicated model (embeddings, layer norms).
    #[must_use]
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// Forward over the shards, returning last-position logits.
    ///
    /// `embedded`, when provided, is the precomputed replicated embedding for
    /// `tokens`/`positions` (see [`embed`]); `begin_step` computes it while
    /// the workers are still applying the step's cache operations.
    /// `force_prefill_attn` keeps one-row chunked-prefill steps on the
    /// contiguous causal kernel (decode accumulation order differs and would
    /// break chunked/unchunked bit-identity).
    fn forward_tp(
        &mut self,
        tokens: &[u32],
        positions: &[usize],
        block_table: &[usize],
        num_cached: usize,
        embedded: Option<Vec<f32>>,
        force_prefill_attn: bool,
    ) -> Vec<f32> {
        let cfg = &self.model.config;
        let n = tokens.len();
        let h = cfg.hidden;
        let w_count = self.num_workers;
        let heads_local = cfg.n_heads / w_count;
        let hd = cfg.head_dim();
        let hl = h / w_count;
        let ml = 4 * h / w_count;
        let ctx = positions[n - 1] + 1;
        let rotary = cfg.position_encoding == PositionEncoding::Rotary;
        let be = self.model.backend();
        let bs = self.workers[0].cache.gpu.block_size();
        assert!(block_table.len() * bs >= ctx, "block table too short");

        // Replicated embedding (positions via RoPE for rotary models),
        // unless `begin_step` already computed it during the cache-op window.
        let mut x = embedded.unwrap_or_else(|| embed(&self.model, tokens, positions));
        debug_assert_eq!(x.len(), n * h);

        for layer_idx in 0..cfg.n_layers {
            let lw = &self.model.layers[layer_idx];
            // Attention: each worker computes its heads, projects through
            // its w_o rows, and the partials are all-reduced (summed).
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
            let mut partials = vec![vec![0.0f32; n * h]; w_count];
            pool::global().scoped(|s| {
                for (worker, partial) in self.workers.iter_mut().zip(partials.iter_mut()) {
                    let hst = &hst;
                    s.spawn(move || {
                        let shard = &worker.layers[layer_idx];
                        let mut qkv = vec![0.0f32; n * 3 * hl];
                        let t_mm = Instant::now();
                        be.matmul_serial(hst, &shard.w_qkv, n, h, 3 * hl, &mut qkv);
                        timing::record_matmul(t_mm.elapsed());
                        add_bias(&mut qkv, &shard.b_qkv);
                        if rotary {
                            for (i, &pos) in positions.iter().enumerate() {
                                let row = &mut qkv[i * 3 * hl..(i + 1) * 3 * hl];
                                let (q_part, kv_part) = row.split_at_mut(hl);
                                apply_rope(q_part, pos, hd);
                                apply_rope(&mut kv_part[..hl], pos, hd);
                            }
                        }
                        // Write local K/V slices into this worker's pool
                        // under the shared block table.
                        for (i, &pos) in positions.iter().enumerate() {
                            let row = &qkv[i * 3 * hl..(i + 1) * 3 * hl];
                            worker.cache.gpu.write(
                                layer_idx,
                                block_table[pos / bs],
                                pos % bs,
                                &row[hl..2 * hl],
                                &row[2 * hl..3 * hl],
                            );
                        }
                        let mut attn = vec![0.0f32; n * hl];
                        let t_attn = Instant::now();
                        if n == 1 && !force_prefill_attn {
                            be.paged_attention_decode(
                                &qkv[0..hl],
                                &worker.cache.gpu,
                                layer_idx,
                                block_table,
                                ctx,
                                heads_local,
                                hd,
                                &mut attn,
                            );
                        } else {
                            let (ks, vs) = worker.cache.gpu.gather(layer_idx, block_table, ctx);
                            let mut q = vec![0.0f32; n * hl];
                            for i in 0..n {
                                q[i * hl..(i + 1) * hl]
                                    .copy_from_slice(&qkv[i * 3 * hl..i * 3 * hl + hl]);
                            }
                            contiguous_causal_attention(
                                &q,
                                &ks,
                                &vs,
                                n,
                                ctx,
                                num_cached,
                                heads_local,
                                hd,
                                &mut attn,
                            );
                        }
                        timing::record_attention(t_attn.elapsed());
                        let t_mm = Instant::now();
                        be.matmul_serial(&attn, &shard.w_o, n, hl, h, partial);
                        timing::record_matmul(t_mm.elapsed());
                    });
                }
            });
            // All-reduce: sum the partials, then add the (replicated) bias
            // once and the residual.
            let ar_start = Instant::now();
            let mut reduced = vec![0.0f32; n * h];
            for p in &partials {
                add_inplace(&mut reduced, p);
            }
            self.num_all_reduces += 1;
            if let Some(t) = &self.telemetry {
                t.all_reduce_seconds
                    .observe(ar_start.elapsed().as_secs_f64());
                t.all_reduces_total.inc();
            }
            add_bias(&mut reduced, &lw.b_o);
            add_inplace(&mut x, &reduced);

            // MLP: column/row split with one more all-reduce.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
            let mut partials = vec![vec![0.0f32; n * h]; w_count];
            pool::global().scoped(|s| {
                for (worker, partial) in self.workers.iter().zip(partials.iter_mut()) {
                    let hst = &hst;
                    s.spawn(move || {
                        let shard = &worker.layers[layer_idx];
                        let mut mid = vec![0.0f32; n * ml];
                        let t_mm = Instant::now();
                        be.matmul_serial(hst, &shard.w_fc, n, h, ml, &mut mid);
                        add_bias(&mut mid, &shard.b_fc);
                        gelu(&mut mid);
                        be.matmul_serial(&mid, &shard.w_proj, n, ml, h, partial);
                        timing::record_matmul(t_mm.elapsed());
                    });
                }
            });
            let ar_start = Instant::now();
            let mut reduced = vec![0.0f32; n * h];
            for p in &partials {
                add_inplace(&mut reduced, p);
            }
            self.num_all_reduces += 1;
            if let Some(t) = &self.telemetry {
                t.all_reduce_seconds
                    .observe(ar_start.elapsed().as_secs_f64());
                t.all_reduces_total.inc();
            }
            add_bias(&mut reduced, &lw.b_proj);
            add_inplace(&mut x, &reduced);
        }

        // Replicated LM head on the last position.
        let mut last = x[(n - 1) * h..n * h].to_vec();
        layer_norm(&mut last, &self.model.ln_f_g, &self.model.ln_f_b, LN_EPS);
        let mut logits = vec![0.0f32; cfg.vocab_size];
        be.matmul_logits(&last, &self.model.wte_t, 1, h, cfg.vocab_size, &mut logits);
        logits
    }

    /// Batched single-token decode across the worker shards: one stacked
    /// forward for every decode-phase item of the step, one pool task per
    /// worker per phase. Row `i` of the returned `batch × vocab` logits is
    /// bit-identical to a solo [`Self::forward_tp`] decode for `inputs[i]`
    /// (batch-independent matmul accumulation; the same per-sequence
    /// attention routine).
    fn forward_decode_batch_tp(&mut self, inputs: &[DecodeInput<'_>]) -> Vec<f32> {
        let cfg = &self.model.config;
        let b = inputs.len();
        let h = cfg.hidden;
        let w_count = self.num_workers;
        let heads_local = cfg.n_heads / w_count;
        let hd = cfg.head_dim();
        let hl = h / w_count;
        let ml = 4 * h / w_count;
        let rotary = cfg.position_encoding == PositionEncoding::Rotary;
        let be = self.model.backend();
        let bs = self.workers[0].cache.gpu.block_size();
        for inp in inputs {
            let ctx = inp.position + 1;
            assert!(ctx <= cfg.max_position, "position overflow");
            assert!(inp.block_table.len() * bs >= ctx, "block table too short");
        }

        let tokens: Vec<u32> = inputs.iter().map(|i| i.token).collect();
        let positions: Vec<usize> = inputs.iter().map(|i| i.position).collect();
        let mut x = embed(&self.model, &tokens, &positions);

        for layer_idx in 0..cfg.n_layers {
            let lw = &self.model.layers[layer_idx];
            // Attention phase: each worker runs the whole batch over its
            // head shard, with per-sequence paged attention.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
            let mut partials = vec![vec![0.0f32; b * h]; w_count];
            pool::global().scoped(|s| {
                for (worker, partial) in self.workers.iter_mut().zip(partials.iter_mut()) {
                    let hst = &hst;
                    s.spawn(move || {
                        let shard = &worker.layers[layer_idx];
                        let mut qkv = vec![0.0f32; b * 3 * hl];
                        let t_mm = Instant::now();
                        be.matmul_serial(hst, &shard.w_qkv, b, h, 3 * hl, &mut qkv);
                        timing::record_matmul(t_mm.elapsed());
                        add_bias(&mut qkv, &shard.b_qkv);
                        if rotary {
                            for (i, inp) in inputs.iter().enumerate() {
                                let row = &mut qkv[i * 3 * hl..(i + 1) * 3 * hl];
                                let (q_part, kv_part) = row.split_at_mut(hl);
                                apply_rope(q_part, inp.position, hd);
                                apply_rope(&mut kv_part[..hl], inp.position, hd);
                            }
                        }
                        for (i, inp) in inputs.iter().enumerate() {
                            let row = &qkv[i * 3 * hl..(i + 1) * 3 * hl];
                            worker.cache.gpu.write(
                                layer_idx,
                                inp.block_table[inp.position / bs],
                                inp.position % bs,
                                &row[hl..2 * hl],
                                &row[2 * hl..3 * hl],
                            );
                        }
                        let mut attn = vec![0.0f32; b * hl];
                        let t_attn = Instant::now();
                        for (i, inp) in inputs.iter().enumerate() {
                            be.paged_attention_decode(
                                &qkv[i * 3 * hl..i * 3 * hl + hl],
                                &worker.cache.gpu,
                                layer_idx,
                                inp.block_table,
                                inp.position + 1,
                                heads_local,
                                hd,
                                &mut attn[i * hl..(i + 1) * hl],
                            );
                        }
                        timing::record_attention(t_attn.elapsed());
                        let t_mm = Instant::now();
                        be.matmul_serial(&attn, &shard.w_o, b, hl, h, partial);
                        timing::record_matmul(t_mm.elapsed());
                    });
                }
            });
            let ar_start = Instant::now();
            let mut reduced = vec![0.0f32; b * h];
            for p in &partials {
                add_inplace(&mut reduced, p);
            }
            self.num_all_reduces += 1;
            if let Some(t) = &self.telemetry {
                t.all_reduce_seconds
                    .observe(ar_start.elapsed().as_secs_f64());
                t.all_reduces_total.inc();
            }
            add_bias(&mut reduced, &lw.b_o);
            add_inplace(&mut x, &reduced);

            // MLP phase.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
            let mut partials = vec![vec![0.0f32; b * h]; w_count];
            pool::global().scoped(|s| {
                for (worker, partial) in self.workers.iter().zip(partials.iter_mut()) {
                    let hst = &hst;
                    s.spawn(move || {
                        let shard = &worker.layers[layer_idx];
                        let mut mid = vec![0.0f32; b * ml];
                        let t_mm = Instant::now();
                        be.matmul_serial(hst, &shard.w_fc, b, h, ml, &mut mid);
                        add_bias(&mut mid, &shard.b_fc);
                        gelu(&mut mid);
                        be.matmul_serial(&mid, &shard.w_proj, b, ml, h, partial);
                        timing::record_matmul(t_mm.elapsed());
                    });
                }
            });
            let ar_start = Instant::now();
            let mut reduced = vec![0.0f32; b * h];
            for p in &partials {
                add_inplace(&mut reduced, p);
            }
            self.num_all_reduces += 1;
            if let Some(t) = &self.telemetry {
                t.all_reduce_seconds
                    .observe(ar_start.elapsed().as_secs_f64());
                t.all_reduces_total.inc();
            }
            add_bias(&mut reduced, &lw.b_proj);
            add_inplace(&mut x, &reduced);
        }

        // Replicated LM head over all batch rows.
        layer_norm(&mut x, &self.model.ln_f_g, &self.model.ln_f_b, LN_EPS);
        let vocab = cfg.vocab_size;
        let mut logits = vec![0.0f32; b * vocab];
        be.matmul_logits(&x, &self.model.wte_t, b, h, vocab, &mut logits);
        logits
    }
}

impl ModelExecutor for TensorParallelExecutor {
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult> {
        let start = Instant::now();
        let kernels_before = timing::snapshot();
        self.steps += 1;
        for item in &plan.items {
            if item.tokens.is_empty() {
                return Err(VllmError::Executor("empty step input".into()));
            }
        }
        // Partition the step: decode-phase items (computed suffix of one
        // token) run as one stacked forward, prompt-phase items keep their
        // per-sequence path.
        let suffixes: Vec<(Vec<u32>, Vec<usize>)> = plan.items.iter().map(compute_suffix).collect();
        let first_prefill = plan
            .items
            .iter()
            .zip(&suffixes)
            .position(|(item, (tokens, _))| item.chunked || tokens.len() > 1);
        // Every worker applies the same cache operations to its shard (block
        // ids are shared, data differs per head slice) — on a pool task per
        // worker, overlapped with the first prefill's replicated embedding:
        // copies touch only KV pools, the embedding only replicated weights,
        // so the two never alias (§4.3: memory ops ride the step's control
        // message and can proceed while compute starts).
        let cache_op_start = Instant::now();
        let mut first_embedding = {
            let Self { workers, model, .. } = &mut *self;
            pool::global().scoped(|s| {
                for worker in workers.iter_mut() {
                    let ops = &plan.cache_ops;
                    s.spawn(move || worker.cache.apply(ops));
                }
                first_prefill.map(|i| {
                    let (tokens, positions) = &suffixes[i];
                    embed(model, tokens, positions)
                })
            })
        };
        if let Some(t) = &self.telemetry {
            if !plan.cache_ops.is_empty() {
                t.cache_op_seconds
                    .observe(cache_op_start.elapsed().as_secs_f64());
            }
        }
        let mut outputs: Vec<Option<SeqStepOutput>> = plan.items.iter().map(|_| None).collect();
        let mut decode: Vec<usize> = Vec::new();
        for (i, (item, (tokens, positions))) in plan.items.iter().zip(&suffixes).enumerate() {
            // Chunked-prefill items never join the stacked decode batch,
            // even when only one prompt row remains.
            if !item.chunked && tokens.len() == 1 {
                decode.push(i);
                continue;
            }
            let embedded = if first_prefill == Some(i) {
                first_embedding.take()
            } else {
                None
            };
            let logits = self.forward_tp(
                tokens,
                positions,
                &item.block_table,
                positions[0],
                embedded,
                item.chunked,
            );
            let seed = mix_seed(item.seed, item.seq_id, item.context_len());
            let candidates = sample_candidates(&logits, item.mode, item.num_candidates, seed);
            outputs[i] = Some(SeqStepOutput {
                seq_id: item.seq_id,
                candidates,
            });
        }
        if !decode.is_empty() {
            let inputs: Vec<DecodeInput<'_>> = decode
                .iter()
                .map(|&i| DecodeInput {
                    token: suffixes[i].0[0],
                    position: suffixes[i].1[0],
                    block_table: &plan.items[i].block_table,
                })
                .collect();
            let logits = self.forward_decode_batch_tp(&inputs);
            let vocab = self.model.config.vocab_size;
            for (row, &i) in decode.iter().enumerate() {
                let item = &plan.items[i];
                let seed = mix_seed(item.seed, item.seq_id, item.context_len());
                let candidates = sample_candidates(
                    &logits[row * vocab..(row + 1) * vocab],
                    item.mode,
                    item.num_candidates,
                    seed,
                );
                outputs[i] = Some(SeqStepOutput {
                    seq_id: item.seq_id,
                    candidates,
                });
            }
        }
        let outputs: Vec<SeqStepOutput> = outputs
            .into_iter()
            .map(|o| o.expect("every plan item produced an output"))
            .collect();
        let elapsed = start.elapsed().as_secs_f64();
        if let Some(t) = &self.telemetry {
            t.forward_seconds.observe(elapsed);
            t.steps_total.inc();
            t.kernels.observe_step(&kernels_before);
        }
        let kd = timing::snapshot().delta_since(&kernels_before);
        let kernels = vec![
            KernelTiming {
                name: "matmul".to_string(),
                seconds: kd.matmul_ns as f64 / 1e9,
            },
            KernelTiming {
                name: "paged_attention".to_string(),
                seconds: kd.attention_ns as f64 / 1e9,
            },
            KernelTiming {
                name: "logits".to_string(),
                seconds: kd.logits_ns as f64 / 1e9,
            },
        ];
        Ok(StepResult {
            outputs,
            elapsed,
            kernels,
        })
    }

    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<vllm_telemetry::Telemetry>) {
        let r = telemetry.registry();
        self.telemetry = Some(TpTelemetry {
            forward_seconds: r.histogram(
                "vllm_executor_forward_seconds",
                "Model forward pass wall time per step (tensor-parallel backend).",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            all_reduce_seconds: r.histogram(
                "vllm_executor_all_reduce_seconds",
                "Wall time of each all-reduce (partial summation) across workers.",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            cache_op_seconds: r.histogram(
                "vllm_executor_cache_op_seconds",
                "Wall time of the per-step cache-operation window (overlapped with the first embedding).",
                vllm_telemetry::BucketSpec::seconds(),
            ),
            all_reduces_total: r.counter(
                "vllm_executor_all_reduces_total",
                "All-reduce operations performed (two per layer per forward).",
            ),
            steps_total: r.counter(
                "vllm_executor_steps_total",
                "Iterations executed by the model executor.",
            ),
            kernels: KernelTelemetry::register(r, self.model.config.backend.name()),
        });
    }

    fn backend_label(&self) -> &str {
        self.model.config.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::executor::CpuModelExecutor;
    use crate::kv_cache::KvPool;
    use vllm_core::config::SchedulerConfig;
    use vllm_core::engine::LlmEngine;
    use vllm_core::sampling::SamplingParams;

    fn cache_cfg() -> CacheConfig {
        CacheConfig::new(4, 64, 16).unwrap()
    }

    #[test]
    fn tp_logits_match_serial() {
        let cfg = ModelConfig::tiny();
        let serial = Transformer::new(cfg.clone());
        let mut pool = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        let table: Vec<usize> = vec![5, 2, 7];
        let tokens = [4u32, 9, 1, 17, 3];
        let positions: Vec<usize> = (0..5).collect();
        let expect = serial.forward_paged(&tokens, &positions, &mut pool, &table, 0);

        for workers in [1, 2, 4] {
            let mut tp =
                TensorParallelExecutor::new(Transformer::new(cfg.clone()), workers, &cache_cfg());
            let got = tp.forward_tp(&tokens, &positions, &table, 0, None, false);
            for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() < 2e-3,
                    "workers={workers} logit {i}: {a} vs {b}"
                );
            }
            assert_eq!(tp.num_all_reduces, 2 * cfg.n_layers as u64);
        }
    }

    #[test]
    fn tp_decode_matches_serial_decode() {
        let cfg = ModelConfig::tiny();
        let serial = Transformer::new(cfg.clone());
        let mut pool = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        let table: Vec<usize> = vec![1, 6];
        serial.forward_paged(&[4, 9, 1], &[0, 1, 2], &mut pool, &table, 0);
        let expect = serial.forward_paged(&[7], &[3], &mut pool, &table, 3);

        let mut tp = TensorParallelExecutor::new(Transformer::new(cfg), 2, &cache_cfg());
        tp.forward_tp(&[4, 9, 1], &[0, 1, 2], &table, 0, None, false);
        let got = tp.forward_tp(&[7], &[3], &table, 3, None, false);
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert!((a - b).abs() < 2e-3, "logit {i}: {a} vs {b}");
        }
    }

    #[test]
    fn tp_engine_generates_same_tokens_as_serial_engine() {
        let run_serial = || {
            let cache = cache_cfg();
            let sched = SchedulerConfig::new(512, 16, 512).unwrap();
            let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
            let mut e = LlmEngine::new(exec, cache, sched);
            e.add_request("r", vec![8, 2, 6, 4], SamplingParams::greedy(8))
                .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let run_tp = |w: usize| {
            let cache = cache_cfg();
            let sched = SchedulerConfig::new(512, 16, 512).unwrap();
            let exec =
                TensorParallelExecutor::new(Transformer::new(ModelConfig::tiny()), w, &cache_cfg());
            let mut e = LlmEngine::new(exec, cache, sched);
            e.add_request("r", vec![8, 2, 6, 4], SamplingParams::greedy(8))
                .unwrap();
            e.run_to_completion().unwrap()[0].outputs[0].tokens.clone()
        };
        let serial = run_serial();
        assert_eq!(serial, run_tp(1));
        assert_eq!(serial, run_tp(2));
        assert_eq!(serial, run_tp(4));
    }

    #[test]
    fn tp_swap_preemption_round_trips() {
        use vllm_core::config::PreemptionMode;
        let cache = CacheConfig::new(4, 7, 16).unwrap();
        let sched = SchedulerConfig::new(512, 16, 512)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let exec = TensorParallelExecutor::new(Transformer::new(ModelConfig::tiny()), 2, &cache);
        let mut e = LlmEngine::new(exec, cache, sched);
        e.add_request(
            "a",
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            SamplingParams::greedy(10),
        )
        .unwrap();
        e.add_request_at("b", vec![9, 10, 11, 12], SamplingParams::greedy(10), 1e-6)
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 2);
        assert!(e.scheduler().stats().num_swap_preemptions > 0);

        // Compare against an uncontended serial run.
        let cache2 = cache_cfg();
        let sched2 = SchedulerConfig::new(512, 16, 512).unwrap();
        let exec2 = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache2);
        let mut e2 = LlmEngine::new(exec2, cache2, sched2);
        e2.add_request(
            "a",
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            SamplingParams::greedy(10),
        )
        .unwrap();
        let solo = e2.run_to_completion().unwrap();
        let a = outs.iter().find(|o| o.request_id == "a").unwrap();
        assert_eq!(a.outputs[0].tokens, solo[0].outputs[0].tokens);
    }

    #[test]
    #[should_panic(expected = "must divide heads")]
    fn invalid_worker_count_panics() {
        let _ = TensorParallelExecutor::new(Transformer::new(ModelConfig::tiny()), 3, &cache_cfg());
    }

    #[test]
    fn tp_rotary_matches_serial() {
        // RoPE must be applied identically on head shards (per-head chunks).
        let cfg = ModelConfig::tiny_rotary();
        let serial = Transformer::new(cfg.clone());
        let mut pool = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        let table: Vec<usize> = vec![3, 6];
        let tokens = [4u32, 9, 1, 17, 3];
        let positions: Vec<usize> = (0..5).collect();
        let expect = serial.forward_paged(&tokens, &positions, &mut pool, &table, 0);
        for workers in [2, 4] {
            let mut tp =
                TensorParallelExecutor::new(Transformer::new(cfg.clone()), workers, &cache_cfg());
            let got = tp.forward_tp(&tokens, &positions, &table, 0, None, false);
            for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() < 2e-3,
                    "workers={workers} logit {i}: {a} vs {b}"
                );
            }
        }
    }
}
