//! Token sampling: greedy, temperature/top-k/top-p sampling, and beam
//! candidate extraction (§4.4, §5.2).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use vllm_core::sampling::{DecodingMode, TokenId};

use crate::ops::log_softmax;

/// Mixes the request seed with the sequence id and position so every
/// sampling event has an independent, reproducible stream.
#[must_use]
pub fn mix_seed(seed: u64, seq_id: u64, position: usize) -> u64 {
    let mut z = seed ^ seq_id.rotate_left(17) ^ (position as u64).rotate_left(41);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Produces `num_candidates` `(token, logprob)` pairs from raw logits
/// according to the decoding mode.
///
/// * Greedy: the argmax token, repeated if more than one candidate is asked.
/// * Random: independent draws from the temperature/top-k/top-p-filtered
///   distribution (one draw per candidate — the prompt step of parallel
///   sampling asks for `n`).
/// * Beam: the top `num_candidates` tokens by log-probability.
///
/// Reported log-probabilities always come from the unfiltered distribution.
#[must_use]
pub fn sample_candidates(
    logits: &[f32],
    mode: DecodingMode,
    num_candidates: usize,
    seed: u64,
) -> Vec<(TokenId, f32)> {
    if num_candidates == 0 {
        return Vec::new();
    }
    let mut logprobs = logits.to_vec();
    log_softmax(&mut logprobs);

    match mode {
        DecodingMode::Greedy => {
            let (best, &lp) = argmax(&logprobs);
            vec![(best as TokenId, lp); num_candidates]
        }
        DecodingMode::Beam { .. } => top_k_pairs(&logprobs, num_candidates),
        DecodingMode::Random {
            temperature,
            top_k,
            top_p,
        } => {
            let mut probs: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
            log_softmax(&mut probs);
            for p in probs.iter_mut() {
                *p = p.exp();
            }
            apply_top_k(&mut probs, top_k);
            apply_top_p(&mut probs, top_p);
            let total: f32 = probs.iter().sum();
            let mut rng = StdRng::seed_from_u64(seed);
            (0..num_candidates)
                .map(|_| {
                    let tok = draw(&probs, total, &mut rng);
                    (tok as TokenId, logprobs[tok])
                })
                .collect()
        }
    }
}

fn argmax(v: &[f32]) -> (usize, &f32) {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(&a.0)))
        .expect("non-empty logits")
}

/// The `k` most probable `(token, logprob)` pairs, descending.
fn top_k_pairs(logprobs: &[f32], k: usize) -> Vec<(TokenId, f32)> {
    let mut idx: Vec<usize> = (0..logprobs.len()).collect();
    idx.sort_by(|&a, &b| logprobs[b].total_cmp(&logprobs[a]).then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx.into_iter()
        .map(|i| (i as TokenId, logprobs[i]))
        .collect()
}

/// Zeroes every probability outside the `k` largest (0 disables).
fn apply_top_k(probs: &mut [f32], k: usize) {
    if k == 0 || k >= probs.len() {
        return;
    }
    let mut sorted: Vec<f32> = probs.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let threshold = sorted[k - 1];
    let mut kept = 0;
    for p in probs.iter_mut() {
        if *p >= threshold && kept < k {
            kept += 1;
        } else {
            *p = 0.0;
        }
    }
}

/// Nucleus filtering: keeps the smallest prefix of the sorted distribution
/// with cumulative mass ≥ `top_p` (1.0 disables).
fn apply_top_p(probs: &mut [f32], top_p: f32) {
    if top_p >= 1.0 {
        return;
    }
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
    let total: f32 = probs.iter().sum();
    let mut cum = 0.0;
    let mut cutoff = probs.len();
    for (rank, &i) in idx.iter().enumerate() {
        cum += probs[i] / total;
        if cum >= top_p {
            cutoff = rank + 1;
            break;
        }
    }
    for &i in &idx[cutoff..] {
        probs[i] = 0.0;
    }
}

fn draw(probs: &[f32], total: f32, rng: &mut StdRng) -> usize {
    let mut r = rng.random::<f32>() * total;
    for (i, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 && p > 0.0 {
            return i;
        }
    }
    // Numerical tail: return the last token with nonzero mass.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("distribution has mass")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.1, 2.5, -1.0, 1.5, 0.0]
    }

    #[test]
    fn greedy_picks_argmax() {
        let c = sample_candidates(&logits(), DecodingMode::Greedy, 1, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, 1);
        assert!(c[0].1 < 0.0, "logprob must be negative");
    }

    #[test]
    fn beam_returns_sorted_top_k() {
        let c = sample_candidates(&logits(), DecodingMode::Beam { width: 2 }, 4, 0);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].0, 1);
        assert_eq!(c[1].0, 3);
        assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let mode = DecodingMode::random();
        let a = sample_candidates(&logits(), mode, 8, 42);
        let b = sample_candidates(&logits(), mode, 8, 42);
        assert_eq!(a, b);
        let c = sample_candidates(&logits(), mode, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mode = DecodingMode::Random {
            temperature: 0.01,
            top_k: 0,
            top_p: 1.0,
        };
        for seed in 0..20 {
            let c = sample_candidates(&logits(), mode, 1, seed);
            assert_eq!(c[0].0, 1);
        }
    }

    #[test]
    fn top_k_restricts_support() {
        let mode = DecodingMode::Random {
            temperature: 1.0,
            top_k: 2,
            top_p: 1.0,
        };
        for seed in 0..50 {
            let c = sample_candidates(&logits(), mode, 1, seed);
            assert!(c[0].0 == 1 || c[0].0 == 3, "token {} outside top-2", c[0].0);
        }
    }

    #[test]
    fn top_p_restricts_support() {
        // Token 1 holds most of the mass; p=0.5 keeps only it.
        let mode = DecodingMode::Random {
            temperature: 1.0,
            top_k: 0,
            top_p: 0.5,
        };
        for seed in 0..50 {
            let c = sample_candidates(&logits(), mode, 1, seed);
            assert_eq!(c[0].0, 1);
        }
    }

    #[test]
    fn zero_candidates_allowed() {
        assert!(sample_candidates(&logits(), DecodingMode::Greedy, 0, 0).is_empty());
    }

    #[test]
    fn mix_seed_varies_by_all_inputs() {
        let a = mix_seed(1, 2, 3);
        assert_ne!(a, mix_seed(2, 2, 3));
        assert_ne!(a, mix_seed(1, 3, 3));
        assert_ne!(a, mix_seed(1, 2, 4));
        assert_eq!(a, mix_seed(1, 2, 3));
    }

    #[test]
    fn random_sampling_covers_distribution() {
        // With uniform logits all tokens should appear across many draws.
        let logits = vec![0.0; 5];
        let mode = DecodingMode::random();
        let mut seen = [false; 5];
        for seed in 0..200 {
            let c = sample_candidates(&logits, mode, 1, seed);
            seen[c[0].0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
