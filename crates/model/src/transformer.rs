//! A GPT/OPT-style decoder-only transformer (§2.1) executing over the paged
//! KV cache.
//!
//! The forward pass covers all three execution shapes of §4.3 with one code
//! path: full prefill (`num_cached = 0`, all positions new), prefix-extended
//! prefill (`num_cached = c`, new positions `c..n` attend to cached blocks),
//! and single-token decode (one new position, attention via the
//! PagedAttention kernel).

use crate::attention::DecodeSeq;
use crate::backend::{self, KernelBackend};
use crate::config::{ModelConfig, PositionEncoding};
use crate::kv_cache::KvPool;
use crate::ops::{add_bias, add_inplace, gelu, layer_norm};
use crate::pool;

const LN_EPS: f32 = 1e-5;
/// Base of the rotary frequency spectrum (the standard 10_000).
const ROPE_BASE: f32 = 10_000.0;

/// Applies rotary position embedding to each head chunk of `v` in place.
pub(crate) fn apply_rope(v: &mut [f32], position: usize, head_dim: usize) {
    debug_assert!(head_dim.is_multiple_of(2));
    let half = head_dim / 2;
    for head in v.chunks_exact_mut(head_dim) {
        for i in 0..half {
            let theta = (position as f32) / ROPE_BASE.powf(2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let (a, b) = (head[i], head[i + half]);
            head[i] = a * cos - b * sin;
            head[i + half] = a * sin + b * cos;
        }
    }
}

/// Weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Pre-attention layer-norm gain/bias.
    pub ln1_g: Vec<f32>,
    /// Pre-attention layer-norm bias.
    pub ln1_b: Vec<f32>,
    /// Fused QKV projection, `hidden × 3·hidden` (columns: Q, K, V).
    pub w_qkv: Vec<f32>,
    /// QKV bias, `3·hidden`.
    pub b_qkv: Vec<f32>,
    /// Attention output projection, `hidden × hidden`.
    pub w_o: Vec<f32>,
    /// Output projection bias.
    pub b_o: Vec<f32>,
    /// Pre-MLP layer-norm gain.
    pub ln2_g: Vec<f32>,
    /// Pre-MLP layer-norm bias.
    pub ln2_b: Vec<f32>,
    /// MLP up projection, `hidden × 4·hidden`.
    pub w_fc: Vec<f32>,
    /// MLP up bias.
    pub b_fc: Vec<f32>,
    /// MLP down projection, `4·hidden × hidden`.
    pub w_proj: Vec<f32>,
    /// MLP down bias.
    pub b_proj: Vec<f32>,
}

/// A decoder-only transformer with tied input/output embeddings and learned
/// positional embeddings (OPT-style).
#[derive(Debug, Clone)]
pub struct Transformer {
    /// Hyper-parameters.
    pub config: ModelConfig,
    /// Token embedding, `vocab × hidden` (tied with the LM head).
    pub wte: Vec<f32>,
    /// Transposed token embedding, `hidden × vocab` — precomputed once so
    /// the LM-head projection runs through the blocked [`matmul`] kernel.
    /// Derived from [`Self::wte`]; not serialized by checkpoints.
    ///
    /// [`matmul`]: crate::ops::matmul
    pub wte_t: Vec<f32>,
    /// Positional embedding, `max_position × hidden`.
    pub wpe: Vec<f32>,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final layer-norm gain.
    pub ln_f_g: Vec<f32>,
    /// Final layer-norm bias.
    pub ln_f_b: Vec<f32>,
}

/// SplitMix64 stream used for deterministic weight initialization.
struct InitRng(u64);

impl InitRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f32 {
        // 24 mantissa bits → [0, 1).
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Approximately normal(0, std) via a 4-sample Irwin–Hall sum.
    fn normal(&mut self, std: f32) -> f32 {
        let s: f32 = (0..4).map(|_| self.uniform()).sum::<f32>() - 2.0;
        // Var of the sum is 4/12 = 1/3; rescale to unit variance.
        s * 1.732_050_8 * std
    }

    fn normal_vec(&mut self, len: usize, std: f32) -> Vec<f32> {
        (0..len).map(|_| self.normal(std)).collect()
    }
}

impl Transformer {
    /// The kernel backend serving this model, resolved from
    /// [`ModelConfig::backend`].
    #[must_use]
    pub fn backend(&self) -> &'static dyn KernelBackend {
        backend::by_kind(self.config.backend)
    }

    /// Builds a model with deterministic pseudo-random weights.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (see [`ModelConfig::validate`]).
    #[must_use]
    pub fn new(config: ModelConfig) -> Self {
        config.validate();
        let h = config.hidden;
        let mut rng = InitRng(config.seed);
        let std = 0.08;
        let layers = (0..config.n_layers)
            .map(|_| LayerWeights {
                ln1_g: vec![1.0; h],
                ln1_b: vec![0.0; h],
                w_qkv: rng.normal_vec(h * 3 * h, std),
                b_qkv: rng.normal_vec(3 * h, std / 4.0),
                w_o: rng.normal_vec(h * h, std),
                b_o: rng.normal_vec(h, std / 4.0),
                ln2_g: vec![1.0; h],
                ln2_b: vec![0.0; h],
                w_fc: rng.normal_vec(h * 4 * h, std),
                b_fc: rng.normal_vec(4 * h, std / 4.0),
                w_proj: rng.normal_vec(4 * h * h, std),
                b_proj: rng.normal_vec(h, std / 4.0),
            })
            .collect();
        let wte = rng.normal_vec(config.vocab_size * h, 0.5);
        let wte_t = crate::ops::transpose(&wte, config.vocab_size, h);
        Self {
            wte,
            wte_t,
            wpe: rng.normal_vec(config.max_position * h, 0.1),
            layers,
            ln_f_g: vec![1.0; h],
            ln_f_b: vec![0.0; h],
            config,
        }
    }

    /// Runs the model over `tokens` at absolute `positions`, writing each
    /// new token's K/V into the paged `pool` through `block_table`, and
    /// returns the logits at the last position (`vocab`-sized).
    ///
    /// `num_cached` is the number of leading positions whose K/V already
    /// live in the pool (shared-prefix requests); `positions[0]` must equal
    /// `num_cached` for multi-token runs.
    ///
    /// # Panics
    ///
    /// Panics on shape violations (positions out of order, block table too
    /// short, positions beyond `max_position`).
    pub fn forward_paged(
        &self,
        tokens: &[u32],
        positions: &[usize],
        pool: &mut KvPool,
        block_table: &[usize],
        num_cached: usize,
    ) -> Vec<f32> {
        self.forward_paged_impl(tokens, positions, pool, block_table, num_cached, false)
    }

    /// Runs one scheduler-budgeted prefill chunk: like
    /// [`Transformer::forward_paged`] but always takes the prefill attention
    /// path, even when the chunk holds a single token. Routing a one-row
    /// final chunk through the decode kernel would change per-row
    /// accumulation order and break the bit-identity contract between
    /// chunked and unchunked prefill, so chunk execution must never fall
    /// back to [`KernelBackend::paged_attention_decode`].
    ///
    /// `num_cached` is the chunk's start offset (prompt rows already
    /// computed by earlier chunks, plus any shared-prefix cache);
    /// `positions[0]` must equal it.
    ///
    /// # Panics
    ///
    /// Panics on shape violations, as [`Transformer::forward_paged`].
    pub fn forward_prefill_chunk(
        &self,
        tokens: &[u32],
        positions: &[usize],
        pool: &mut KvPool,
        block_table: &[usize],
        num_cached: usize,
    ) -> Vec<f32> {
        self.forward_paged_impl(tokens, positions, pool, block_table, num_cached, true)
    }

    fn forward_paged_impl(
        &self,
        tokens: &[u32],
        positions: &[usize],
        pool: &mut KvPool,
        block_table: &[usize],
        num_cached: usize,
        force_prefill_attn: bool,
    ) -> Vec<f32> {
        let n = tokens.len();
        assert_eq!(positions.len(), n);
        assert!(n > 0, "empty input");
        let h = self.config.hidden;
        let bs = pool.block_size();
        let ctx = positions[n - 1] + 1;
        assert!(ctx <= self.config.max_position, "position overflow");
        assert!(block_table.len() * bs >= ctx, "block table too short");
        if n > 1 || force_prefill_attn {
            assert_eq!(positions[0], num_cached, "prefill must start at cache end");
        }
        let be = self.backend();

        // Embedding + positions (learned embeddings only; rotary models
        // inject positions inside attention).
        let rotary = self.config.position_encoding == PositionEncoding::Rotary;
        let mut x = vec![0.0f32; n * h];
        for (i, (&tok, &pos)) in tokens.iter().zip(positions).enumerate() {
            let e = &self.wte[tok as usize * h..(tok as usize + 1) * h];
            let p = &self.wpe[pos * h..(pos + 1) * h];
            for j in 0..h {
                x[i * h + j] = if rotary { e[j] } else { e[j] + p[j] };
            }
        }

        let mut qkv = vec![0.0f32; n * 3 * h];
        let mut attn = vec![0.0f32; n * h];
        let mut proj = vec![0.0f32; n * h];
        let mut mlp_mid = vec![0.0f32; n * 4 * h];
        for (layer_idx, lw) in self.layers.iter().enumerate() {
            // Attention block.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
            be.matmul(&hst, &lw.w_qkv, n, h, 3 * h, &mut qkv);
            add_bias(&mut qkv, &lw.b_qkv);
            if rotary {
                let hd = self.config.head_dim();
                for (i, &pos) in positions.iter().enumerate() {
                    let row = &mut qkv[i * 3 * h..(i + 1) * 3 * h];
                    let (q_part, kv_part) = row.split_at_mut(h);
                    apply_rope(q_part, pos, hd);
                    apply_rope(&mut kv_part[..h], pos, hd);
                }
            }

            // Fused reshape-and-block-write (§5.1): store K/V as they are
            // produced (keys post-rotation for rotary models).
            for (i, &pos) in positions.iter().enumerate() {
                let row = &qkv[i * 3 * h..(i + 1) * 3 * h];
                pool.write(
                    layer_idx,
                    block_table[pos / bs],
                    pos % bs,
                    &row[h..2 * h],
                    &row[2 * h..3 * h],
                );
            }

            if n == 1 && !force_prefill_attn {
                // Generation step: the PagedAttention kernel (§4.1).
                be.paged_attention_decode(
                    &qkv[0..h],
                    pool,
                    layer_idx,
                    block_table,
                    ctx,
                    self.config.n_heads,
                    self.config.head_dim(),
                    &mut attn,
                );
            } else {
                // Prompt phase (whole prompt or one budgeted chunk): gather
                // K/V (cached prefix + just-written tokens) and run
                // conventional causal attention (§4.3) over the new rows.
                let mut q = vec![0.0f32; n * h];
                for i in 0..n {
                    q[i * h..(i + 1) * h].copy_from_slice(&qkv[i * 3 * h..i * 3 * h + h]);
                }
                be.paged_attention_prefill(
                    &q,
                    pool,
                    layer_idx,
                    block_table,
                    n,
                    ctx,
                    num_cached,
                    self.config.n_heads,
                    self.config.head_dim(),
                    &mut attn,
                );
            }
            be.matmul(&attn, &lw.w_o, n, h, h, &mut proj);
            add_bias(&mut proj, &lw.b_o);
            add_inplace(&mut x, &proj);

            // MLP block.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
            be.matmul(&hst, &lw.w_fc, n, h, 4 * h, &mut mlp_mid);
            add_bias(&mut mlp_mid, &lw.b_fc);
            gelu(&mut mlp_mid);
            be.matmul(&mlp_mid, &lw.w_proj, n, 4 * h, h, &mut proj);
            add_bias(&mut proj, &lw.b_proj);
            add_inplace(&mut x, &proj);
        }

        // Final norm + tied-embedding LM head on the last position.
        let mut last = x[(n - 1) * h..n * h].to_vec();
        layer_norm(&mut last, &self.ln_f_g, &self.ln_f_b, LN_EPS);
        let mut logits = vec![0.0f32; self.config.vocab_size];
        // logits = last @ wteᵀ, via the pre-transposed hidden × vocab copy
        // so the blocked kernel streams both operands row-major.
        be.matmul_logits(
            &last,
            &self.wte_t,
            1,
            h,
            self.config.vocab_size,
            &mut logits,
        );
        logits
    }

    /// Batched single-token decode (§4.3): runs one generation step for
    /// every sequence in `inputs` as a single stacked forward — one
    /// `[batch × hidden]` matmul per projection per layer and one batched
    /// PagedAttention call parallelized over (sequence, head) pairs.
    ///
    /// Returns `batch × vocab` logits, row `i` for `inputs[i]`. Every row
    /// is bit-identical to a solo [`Transformer::forward_paged`] call for
    /// that sequence: the matmul kernels accumulate per output element in
    /// a batch-independent order and the attention batch kernel reuses the
    /// solo per-head routine. KV writes all land in sequence-exclusive
    /// (copy-on-write-resolved) blocks, so the write-then-read step order
    /// matches the sequential per-sequence order as well.
    ///
    /// # Panics
    ///
    /// Panics on shape violations (position overflow, block table too
    /// short for its context).
    pub fn forward_decode_batch(&self, inputs: &[DecodeInput<'_>], kv: &mut KvPool) -> Vec<f32> {
        let b = inputs.len();
        assert!(b > 0, "empty batch");
        let h = self.config.hidden;
        let bs = kv.block_size();
        for inp in inputs {
            let ctx = inp.position + 1;
            assert!(ctx <= self.config.max_position, "position overflow");
            assert!(inp.block_table.len() * bs >= ctx, "block table too short");
        }
        let workers = pool::global();
        let be = self.backend();

        let rotary = self.config.position_encoding == PositionEncoding::Rotary;
        let mut x = vec![0.0f32; b * h];
        for (i, inp) in inputs.iter().enumerate() {
            let e = &self.wte[inp.token as usize * h..(inp.token as usize + 1) * h];
            let p = &self.wpe[inp.position * h..(inp.position + 1) * h];
            for j in 0..h {
                x[i * h + j] = if rotary { e[j] } else { e[j] + p[j] };
            }
        }

        let seqs: Vec<DecodeSeq<'_>> = inputs
            .iter()
            .map(|inp| DecodeSeq {
                block_table: inp.block_table,
                context_len: inp.position + 1,
            })
            .collect();

        let mut qkv = vec![0.0f32; b * 3 * h];
        let mut q = vec![0.0f32; b * h];
        let mut attn = vec![0.0f32; b * h];
        let mut proj = vec![0.0f32; b * h];
        let mut mlp_mid = vec![0.0f32; b * 4 * h];
        for (layer_idx, lw) in self.layers.iter().enumerate() {
            // Attention block.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
            be.matmul(&hst, &lw.w_qkv, b, h, 3 * h, &mut qkv);
            add_bias(&mut qkv, &lw.b_qkv);
            if rotary {
                let hd = self.config.head_dim();
                for (i, inp) in inputs.iter().enumerate() {
                    let row = &mut qkv[i * 3 * h..(i + 1) * 3 * h];
                    let (q_part, kv_part) = row.split_at_mut(h);
                    apply_rope(q_part, inp.position, hd);
                    apply_rope(&mut kv_part[..h], inp.position, hd);
                }
            }

            // Fused reshape-and-block-write (§5.1) for every sequence,
            // then one batched PagedAttention call over all of them.
            for (i, inp) in inputs.iter().enumerate() {
                let row = &qkv[i * 3 * h..(i + 1) * 3 * h];
                kv.write(
                    layer_idx,
                    inp.block_table[inp.position / bs],
                    inp.position % bs,
                    &row[h..2 * h],
                    &row[2 * h..3 * h],
                );
                q[i * h..(i + 1) * h].copy_from_slice(&row[..h]);
            }
            be.paged_attention_decode_batch(
                &q,
                kv,
                layer_idx,
                &seqs,
                self.config.n_heads,
                self.config.head_dim(),
                workers,
                &mut attn,
            );
            be.matmul(&attn, &lw.w_o, b, h, h, &mut proj);
            add_bias(&mut proj, &lw.b_o);
            add_inplace(&mut x, &proj);

            // MLP block.
            let mut hst = x.clone();
            layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
            be.matmul(&hst, &lw.w_fc, b, h, 4 * h, &mut mlp_mid);
            add_bias(&mut mlp_mid, &lw.b_fc);
            gelu(&mut mlp_mid);
            be.matmul(&mlp_mid, &lw.w_proj, b, 4 * h, h, &mut proj);
            add_bias(&mut proj, &lw.b_proj);
            add_inplace(&mut x, &proj);
        }

        layer_norm(&mut x, &self.ln_f_g, &self.ln_f_b, LN_EPS);
        let vocab = self.config.vocab_size;
        let mut logits = vec![0.0f32; b * vocab];
        be.matmul_logits(&x, &self.wte_t, b, h, vocab, &mut logits);
        logits
    }
}

/// One sequence's inputs to [`Transformer::forward_decode_batch`].
#[derive(Debug, Clone, Copy)]
pub struct DecodeInput<'a> {
    /// The new token to run.
    pub token: u32,
    /// Absolute position of `token` (its context length minus one).
    pub position: usize,
    /// Physical block indices covering positions `0 ..= position`.
    pub block_table: &'a [usize],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(ctx_blocks: usize) -> (Transformer, KvPool, Vec<usize>) {
        let cfg = ModelConfig::tiny();
        let model = Transformer::new(cfg.clone());
        let bs = 4;
        let pool = KvPool::new(cfg.n_layers, ctx_blocks + 4, bs, cfg.hidden);
        // Scrambled block table.
        let table: Vec<usize> = (0..ctx_blocks).map(|j| ctx_blocks + 3 - j).collect();
        (model, pool, table)
    }

    #[test]
    fn weights_deterministic() {
        let a = Transformer::new(ModelConfig::tiny());
        let b = Transformer::new(ModelConfig::tiny());
        assert_eq!(a.wte, b.wte);
        assert_eq!(a.layers[0].w_qkv, b.layers[0].w_qkv);
        let mut cfg = ModelConfig::tiny();
        cfg.seed = 999;
        let c = Transformer::new(cfg);
        assert_ne!(a.wte, c.wte);
    }

    #[test]
    fn logits_finite_and_distinct() {
        let (model, mut pool, table) = setup(2);
        let tokens = [1u32, 5, 9];
        let logits = model.forward_paged(&tokens, &[0, 1, 2], &mut pool, &table, 0);
        assert_eq!(logits.len(), model.config.vocab_size);
        assert!(logits.iter().all(|v| v.is_finite()));
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min = logits.iter().copied().fold(f32::INFINITY, f32::min);
        assert!(max > min, "logits must not be constant");
    }

    #[test]
    fn prefill_then_decode_matches_full_prefill() {
        // KV correctness: decode steps using PagedAttention must produce the
        // same logits as running the whole sequence as one prefill.
        let tokens: Vec<u32> = vec![3, 17, 42, 8, 25, 99, 4];
        let (model, mut pool_a, table) = setup(2);
        let n = tokens.len();

        // Path A: full prefill.
        let positions: Vec<usize> = (0..n).collect();
        let logits_full = model.forward_paged(&tokens, &positions, &mut pool_a, &table, 0);

        // Path B: prefill the first 4, then decode 3 tokens one by one.
        let (_, mut pool_b, _) = setup(2);
        model.forward_paged(&tokens[..4], &[0, 1, 2, 3], &mut pool_b, &table, 0);
        let mut logits_inc = Vec::new();
        for p in 4..n {
            logits_inc = model.forward_paged(&tokens[p..=p], &[p], &mut pool_b, &table, p);
        }
        for (i, (a, b)) in logits_full.iter().zip(&logits_inc).enumerate() {
            assert!((a - b).abs() < 2e-3, "logit {i}: {a} vs {b}");
        }
    }

    #[test]
    fn prefix_cached_prefill_matches_full_prefill() {
        // Shared-prefix path: computing only the suffix over cached prefix
        // blocks must equal the full prefill.
        let tokens: Vec<u32> = vec![3, 17, 42, 8, 25, 99, 4, 56];
        let n = tokens.len();
        let cached = 4;
        let (model, mut pool_a, table) = setup(2);
        let positions: Vec<usize> = (0..n).collect();
        let logits_full = model.forward_paged(&tokens, &positions, &mut pool_a, &table, 0);

        let (_, mut pool_b, _) = setup(2);
        // Warm the prefix KV (provider-side prefill).
        model.forward_paged(
            &tokens[..cached],
            &(0..cached).collect::<Vec<_>>(),
            &mut pool_b,
            &table,
            0,
        );
        // Request-side prefill over the suffix only.
        let suffix_positions: Vec<usize> = (cached..n).collect();
        let logits_prefix = model.forward_paged(
            &tokens[cached..],
            &suffix_positions,
            &mut pool_b,
            &table,
            cached,
        );
        for (i, (a, b)) in logits_full.iter().zip(&logits_prefix).enumerate() {
            assert!((a - b).abs() < 2e-3, "logit {i}: {a} vs {b}");
        }
    }

    #[test]
    fn different_positions_produce_different_kv() {
        // The same token at different positions must yield different KV
        // (§2.2: "the KV cache of the same token appearing at different
        // positions will be different").
        let (model, mut pool, table) = setup(2);
        model.forward_paged(&[7, 7], &[0, 1], &mut pool, &table, 0);
        let k0 = pool.key(0, table[0], 0).to_vec();
        let k1 = pool.key(0, table[0], 1).to_vec();
        assert_ne!(k0, k1);
    }

    #[test]
    #[should_panic(expected = "block table too short")]
    fn short_block_table_rejected() {
        let (model, mut pool, _) = setup(2);
        model.forward_paged(&[1, 2, 3, 4, 5], &[0, 1, 2, 3, 4], &mut pool, &[0], 0);
    }

    #[test]
    fn batched_decode_bit_identical_to_solo_forward() {
        let cfg = ModelConfig::tiny();
        let model = Transformer::new(cfg.clone());
        let bs = 4;
        // Three sequences with different prompts and context lengths,
        // disjoint block tables in one pool.
        let prompts: [&[u32]; 3] = [&[3, 17, 42], &[8, 25, 99, 4, 56], &[7]];
        let mut pool_batch = KvPool::new(cfg.n_layers, 16, bs, cfg.hidden);
        let mut pool_solo = pool_batch.clone();
        let tables: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        for (p, table) in prompts.iter().zip(&tables) {
            let positions: Vec<usize> = (0..p.len()).collect();
            model.forward_paged(p, &positions, &mut pool_batch, table, 0);
            model.forward_paged(p, &positions, &mut pool_solo, table, 0);
        }
        // One decode step per sequence: batched vs per-sequence.
        let next: [u32; 3] = [11, 29, 63];
        let inputs: Vec<DecodeInput<'_>> = prompts
            .iter()
            .zip(&tables)
            .zip(&next)
            .map(|((p, table), &token)| DecodeInput {
                token,
                position: p.len(),
                block_table: table,
            })
            .collect();
        let batched = model.forward_decode_batch(&inputs, &mut pool_batch);
        for (i, inp) in inputs.iter().enumerate() {
            let solo = model.forward_paged(
                &[inp.token],
                &[inp.position],
                &mut pool_solo,
                inp.block_table,
                inp.position,
            );
            let v = cfg.vocab_size;
            assert_eq!(
                &batched[i * v..(i + 1) * v],
                &solo[..],
                "seq {i}: batched logits must be bit-identical to solo"
            );
        }
        // And the KV written by the batch step matches the solo writes.
        for (inp, table) in inputs.iter().zip(&tables) {
            let block = table[inp.position / bs];
            let slot = inp.position % bs;
            for layer in 0..cfg.n_layers {
                assert_eq!(
                    pool_batch.key(layer, block, slot),
                    pool_solo.key(layer, block, slot)
                );
                assert_eq!(
                    pool_batch.value(layer, block, slot),
                    pool_solo.value(layer, block, slot)
                );
            }
        }
    }
}

#[cfg(test)]
mod rotary_tests {
    use super::*;
    use crate::config::PositionEncoding;

    fn setup(cfg: ModelConfig) -> (Transformer, KvPool, Vec<usize>) {
        let model = Transformer::new(cfg.clone());
        let pool = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        (model, pool, vec![7, 2, 5])
    }

    #[test]
    fn rotary_prefill_then_decode_matches_full_prefill() {
        // The critical serving property: keys stored post-rotation in the
        // paged cache must make incremental decoding exact.
        let cfg = ModelConfig::tiny_rotary();
        let tokens: Vec<u32> = vec![3, 17, 42, 8, 25, 99, 4];
        let n = tokens.len();
        let (model, mut pool_a, table) = setup(cfg.clone());
        let logits_full =
            model.forward_paged(&tokens, &(0..n).collect::<Vec<_>>(), &mut pool_a, &table, 0);

        let (_, mut pool_b, _) = setup(cfg);
        model.forward_paged(&tokens[..4], &[0, 1, 2, 3], &mut pool_b, &table, 0);
        let mut logits_inc = Vec::new();
        for p in 4..n {
            logits_inc = model.forward_paged(&tokens[p..=p], &[p], &mut pool_b, &table, p);
        }
        for (i, (a, b)) in logits_full.iter().zip(&logits_inc).enumerate() {
            assert!((a - b).abs() < 2e-3, "logit {i}: {a} vs {b}");
        }
    }

    #[test]
    fn rotary_positions_affect_logits() {
        // The same token sequence at shifted positions must differ (RoPE
        // injects positions despite no learned embedding being added).
        let cfg = ModelConfig::tiny_rotary();
        let (model, mut pool_a, table) = setup(cfg.clone());
        let a = model.forward_paged(&[5, 9], &[0, 1], &mut pool_a, &table, 0);
        let (_, mut pool_b, _) = setup(cfg);
        // Warm positions 0..2 with other tokens, then the same pair later.
        model.forward_paged(&[1, 1], &[0, 1], &mut pool_b, &table, 0);
        let b = model.forward_paged(&[5], &[2], &mut pool_b, &table, 2);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3, "positions must matter under RoPE");
    }

    #[test]
    fn rope_rotation_preserves_norm() {
        let mut v: Vec<f32> = (0..8).map(|i| i as f32 - 3.5).collect();
        let before: f32 = v.iter().map(|x| x * x).sum();
        apply_rope(&mut v, 13, 8);
        let after: f32 = v.iter().map(|x| x * x).sum();
        assert!((before - after).abs() < 1e-3);
        // Position 0 is the identity rotation.
        let mut w: Vec<f32> = (0..8).map(|i| i as f32 - 3.5).collect();
        let orig = w.clone();
        apply_rope(&mut w, 0, 8);
        assert_eq!(w, orig);
    }

    #[test]
    fn rotary_config_round_trips_through_checkpoint() {
        let model = Transformer::new(ModelConfig::tiny_rotary());
        let loaded = crate::checkpoint::load(&crate::checkpoint::save(&model)).unwrap();
        assert_eq!(loaded.config.position_encoding, PositionEncoding::Rotary);
    }
}
