//! Paged KV cache storage (§4.2, §5.1).
//!
//! A [`KvPool`] owns one contiguous allocation per layer ("the block engine
//! allocates a contiguous chunk and divides it into physical KV blocks") and
//! addresses token slots by `(physical block, offset)`. [`KvCache`] pairs a
//! GPU pool with a CPU pool (swap space) and applies the scheduler's cache
//! operations: batched copy-on-write copies ("fused block copy", §5.1) and
//! swap transfers (§4.5).

use vllm_core::executor::CacheOps;

/// Per-layer paged key/value storage for one device.
#[derive(Debug, Clone)]
pub struct KvPool {
    /// Per-layer key storage: `num_blocks * block_size * hidden` floats.
    k: Vec<Vec<f32>>,
    /// Per-layer value storage, same layout.
    v: Vec<Vec<f32>>,
    num_blocks: usize,
    block_size: usize,
    hidden: usize,
}

impl KvPool {
    /// Allocates zeroed storage for `num_blocks` blocks across `n_layers`
    /// layers with `hidden`-sized K and V vectors per token.
    #[must_use]
    pub fn new(n_layers: usize, num_blocks: usize, block_size: usize, hidden: usize) -> Self {
        let layer_len = num_blocks * block_size * hidden;
        Self {
            k: vec![vec![0.0; layer_len]; n_layers],
            v: vec![vec![0.0; layer_len]; n_layers],
            num_blocks,
            block_size,
            hidden,
        }
    }

    /// Number of blocks in the pool.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// K/V vector width.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total bytes of K+V storage (capacity accounting).
    #[must_use]
    pub fn num_bytes(&self) -> usize {
        2 * self.k.len()
            * self.num_blocks
            * self.block_size
            * self.hidden
            * std::mem::size_of::<f32>()
    }

    #[inline]
    fn offset(&self, block: usize, slot: usize) -> usize {
        debug_assert!(block < self.num_blocks, "block {block} out of range");
        debug_assert!(slot < self.block_size, "slot {slot} out of range");
        (block * self.block_size + slot) * self.hidden
    }

    /// Writes the key/value vectors of one token into `(block, slot)` for
    /// `layer` (the "fused reshape and block write" path, §5.1).
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-range indices or wrong vector widths.
    pub fn write(&mut self, layer: usize, block: usize, slot: usize, key: &[f32], value: &[f32]) {
        debug_assert_eq!(key.len(), self.hidden);
        debug_assert_eq!(value.len(), self.hidden);
        let o = self.offset(block, slot);
        self.k[layer][o..o + self.hidden].copy_from_slice(key);
        self.v[layer][o..o + self.hidden].copy_from_slice(value);
    }

    /// Key vector stored at `(layer, block, slot)`.
    #[must_use]
    pub fn key(&self, layer: usize, block: usize, slot: usize) -> &[f32] {
        let o = self.offset(block, slot);
        &self.k[layer][o..o + self.hidden]
    }

    /// Value vector stored at `(layer, block, slot)`.
    #[must_use]
    pub fn value(&self, layer: usize, block: usize, slot: usize) -> &[f32] {
        let o = self.offset(block, slot);
        &self.v[layer][o..o + self.hidden]
    }

    /// The whole key block `(layer, block)` as `block_size × hidden`.
    #[must_use]
    pub fn key_block(&self, layer: usize, block: usize) -> &[f32] {
        let o = self.offset(block, 0);
        &self.k[layer][o..o + self.block_size * self.hidden]
    }

    /// The whole value block `(layer, block)` as `block_size × hidden`.
    #[must_use]
    pub fn value_block(&self, layer: usize, block: usize) -> &[f32] {
        let o = self.offset(block, 0);
        &self.v[layer][o..o + self.block_size * self.hidden]
    }

    /// Copies a whole block (all layers, K and V) within this pool.
    pub fn copy_block_within(&mut self, src: usize, dst: usize) {
        if src == dst {
            return;
        }
        let len = self.block_size * self.hidden;
        for layer in 0..self.k.len() {
            let s = self.offset(src, 0);
            let d = self.offset(dst, 0);
            // Non-overlapping: distinct blocks of the same layer buffer.
            let (k_src, k_dst) = split_two(&mut self.k[layer], s, d, len);
            k_dst.copy_from_slice(k_src);
            let (v_src, v_dst) = split_two(&mut self.v[layer], s, d, len);
            v_dst.copy_from_slice(v_src);
        }
    }

    /// Copies a whole block from `self` into `other` (swap transfer).
    ///
    /// # Panics
    ///
    /// Panics if the pools disagree on layer count, block size, or width.
    pub fn copy_block_to(&self, src: usize, other: &mut KvPool, dst: usize) {
        assert_eq!(self.k.len(), other.k.len());
        assert_eq!(self.block_size, other.block_size);
        assert_eq!(self.hidden, other.hidden);
        let len = self.block_size * self.hidden;
        for layer in 0..self.k.len() {
            let s = self.offset(src, 0);
            let d = other.offset(dst, 0);
            other.k[layer][d..d + len].copy_from_slice(&self.k[layer][s..s + len]);
            other.v[layer][d..d + len].copy_from_slice(&self.v[layer][s..s + len]);
        }
    }

    /// Gathers the K and V vectors of positions `0..len` addressed through a
    /// block table into contiguous `len × hidden` buffers (used by prefill
    /// over cached prefixes and by equivalence tests).
    #[must_use]
    pub fn gather(&self, layer: usize, block_table: &[usize], len: usize) -> (Vec<f32>, Vec<f32>) {
        let mut ks = Vec::with_capacity(len * self.hidden);
        let mut vs = Vec::with_capacity(len * self.hidden);
        for t in 0..len {
            let block = block_table[t / self.block_size];
            let slot = t % self.block_size;
            ks.extend_from_slice(self.key(layer, block, slot));
            vs.extend_from_slice(self.value(layer, block, slot));
        }
        (ks, vs)
    }
}

/// Splits one buffer into a `(src, dst)` pair of non-overlapping regions.
fn split_two(buf: &mut [f32], src: usize, dst: usize, len: usize) -> (&[f32], &mut [f32]) {
    assert!(src.abs_diff(dst) >= len, "regions must not overlap");
    if src < dst {
        let (a, b) = buf.split_at_mut(dst);
        (&a[src..src + len], &mut b[..len])
    } else {
        let (a, b) = buf.split_at_mut(src);
        (&b[..len], &mut a[dst..dst + len])
    }
}

/// GPU + CPU paged KV storage with the scheduler-driven transfer operations.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Active (GPU-analog) pool.
    pub gpu: KvPool,
    /// Swap-space (CPU-analog) pool.
    pub cpu: KvPool,
    /// Cumulative number of block copies performed (metrics).
    pub num_block_copies: u64,
    /// Cumulative number of swap transfers performed (metrics).
    pub num_swap_transfers: u64,
}

impl KvCache {
    /// Creates both pools.
    #[must_use]
    pub fn new(
        n_layers: usize,
        num_gpu_blocks: usize,
        num_cpu_blocks: usize,
        block_size: usize,
        hidden: usize,
    ) -> Self {
        Self {
            gpu: KvPool::new(n_layers, num_gpu_blocks, block_size, hidden),
            cpu: KvPool::new(n_layers, num_cpu_blocks, block_size, hidden),
            num_block_copies: 0,
            num_swap_transfers: 0,
        }
    }

    /// Applies the scheduler's cache operations for a step: swap-out, then
    /// swap-in, then the batched copy-on-write copies.
    pub fn apply(&mut self, ops: &CacheOps) {
        for c in &ops.swap_out {
            self.gpu.copy_block_to(c.src, &mut self.cpu, c.dst);
        }
        for c in &ops.swap_in {
            self.cpu.copy_block_to(c.src, &mut self.gpu, c.dst);
        }
        // The paper batches all pending copy-on-write copies into one kernel
        // launch ("fused block copy"); here one pass over the list.
        for c in &ops.copies {
            self.gpu.copy_block_within(c.src, c.dst);
        }
        self.num_swap_transfers += (ops.swap_in.len() + ops.swap_out.len()) as u64;
        self.num_block_copies += ops.copies.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vllm_core::block_manager::BlockCopy;

    fn filled_pool() -> KvPool {
        let mut p = KvPool::new(2, 4, 2, 3);
        for layer in 0..2 {
            for block in 0..4 {
                for slot in 0..2 {
                    let base = (layer * 100 + block * 10 + slot) as f32;
                    let k: Vec<f32> = (0..3).map(|i| base + i as f32 * 0.1).collect();
                    let v: Vec<f32> = (0..3).map(|i| -(base + i as f32 * 0.1)).collect();
                    p.write(layer, block, slot, &k, &v);
                }
            }
        }
        p
    }

    #[test]
    fn write_read_round_trip() {
        let p = filled_pool();
        assert_eq!(p.key(1, 2, 1), &[121.0, 121.1, 121.2]);
        assert_eq!(p.value(1, 2, 1), &[-121.0, -121.1, -121.2]);
    }

    #[test]
    fn copy_block_within_copies_all_layers() {
        let mut p = filled_pool();
        p.copy_block_within(2, 0);
        for layer in 0..2 {
            for slot in 0..2 {
                assert_eq!(p.key(layer, 0, slot), p.key(layer, 2, slot));
                assert_eq!(p.value(layer, 0, slot), p.value(layer, 2, slot));
            }
        }
        // Source untouched.
        assert_eq!(p.key(0, 2, 0), &[20.0, 20.1, 20.2]);
    }

    #[test]
    fn copy_block_within_same_block_noop() {
        let mut p = filled_pool();
        let before = p.key(0, 1, 0).to_vec();
        p.copy_block_within(1, 1);
        assert_eq!(p.key(0, 1, 0), &before[..]);
    }

    #[test]
    fn cross_pool_swap_round_trip() {
        let gpu = filled_pool();
        let mut cache = KvCache {
            gpu,
            cpu: KvPool::new(2, 4, 2, 3),
            num_block_copies: 0,
            num_swap_transfers: 0,
        };
        let original = cache.gpu.key(0, 3, 1).to_vec();
        cache.apply(&CacheOps {
            swap_out: vec![BlockCopy { src: 3, dst: 1 }],
            ..Default::default()
        });
        assert_eq!(cache.cpu.key(0, 1, 1), &original[..]);
        // Clobber the GPU copy, swap back in to a different block.
        cache.gpu.write(0, 3, 1, &[0.0; 3], &[0.0; 3]);
        cache.apply(&CacheOps {
            swap_in: vec![BlockCopy { src: 1, dst: 0 }],
            ..Default::default()
        });
        assert_eq!(cache.gpu.key(0, 0, 1), &original[..]);
        assert_eq!(cache.num_swap_transfers, 2);
    }

    #[test]
    fn gather_follows_block_table() {
        let p = filled_pool();
        // Logical order: block 3, then block 1 → positions 0..4.
        let (ks, _vs) = p.gather(0, &[3, 1], 4);
        assert_eq!(&ks[0..3], p.key(0, 3, 0));
        assert_eq!(&ks[3..6], p.key(0, 3, 1));
        assert_eq!(&ks[6..9], p.key(0, 1, 0));
        assert_eq!(&ks[9..12], p.key(0, 1, 1));
    }

    #[test]
    fn gather_partial_last_block() {
        let p = filled_pool();
        let (ks, vs) = p.gather(1, &[0, 2], 3);
        assert_eq!(ks.len(), 9);
        assert_eq!(vs.len(), 9);
        assert_eq!(&ks[6..9], p.key(1, 2, 0));
    }

    #[test]
    fn num_bytes_accounting() {
        let p = KvPool::new(2, 4, 2, 3);
        // 2 (K+V) * 2 layers * 4 blocks * 2 slots * 3 floats * 4 bytes.
        assert_eq!(p.num_bytes(), 2 * 2 * 4 * 2 * 3 * 4);
    }
}
