//! Paged KV cache storage (§4.2, §5.1).
//!
//! A [`KvPool`] owns one contiguous allocation per layer ("the block engine
//! allocates a contiguous chunk and divides it into physical KV blocks") and
//! addresses token slots by `(physical block, offset)`. The element type of
//! the stored K/V scalars is chosen by the kernel backend's
//! [`KvElement`] layout: plain `f32`, or `i8` with one `f32` dequantization
//! scale per stored vector (`quant-kv8`), which shrinks bytes-per-block and
//! therefore buys more blocks per memory budget. [`KvCache`] pairs a GPU
//! pool with a CPU pool (swap space) and applies the scheduler's cache
//! operations: batched copy-on-write copies ("fused block copy", §5.1) and
//! swap transfers (§4.5).

use vllm_core::block::Device;
use vllm_core::executor::CacheOps;
use vllm_core::handoff::KvBlockBytes;

use crate::backend::KvElement;

/// Backing storage for one pool, one variant per [`KvElement`].
#[derive(Debug, Clone)]
enum KvStorage {
    /// Plain f32 K/V: `num_blocks * block_size * hidden` floats per layer.
    F32 { k: Vec<Vec<f32>>, v: Vec<Vec<f32>> },
    /// int8 K/V with one f32 scale per stored vector: values are
    /// `num_blocks * block_size * hidden` bytes per layer, scales are
    /// `num_blocks * block_size` floats per layer (slot-major).
    Int8 {
        k: Vec<Vec<i8>>,
        v: Vec<Vec<i8>>,
        k_scale: Vec<Vec<f32>>,
        v_scale: Vec<Vec<f32>>,
    },
}

/// Per-layer paged key/value storage for one device.
#[derive(Debug, Clone)]
pub struct KvPool {
    storage: KvStorage,
    n_layers: usize,
    num_blocks: usize,
    block_size: usize,
    hidden: usize,
}

/// Quantizes one vector into int8: `scale = max|x| / 127`, elements
/// `round(x / scale)`. Returns the scale (0 for an all-zero vector, whose
/// dequantization is exactly zero). Reconstruction error per element is at
/// most `scale / 2`.
fn quantize_slot(src: &[f32], dst: &mut [i8]) -> f32 {
    let max_abs = src.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    max_abs / 127.0
}

impl KvPool {
    /// Allocates zeroed f32 storage for `num_blocks` blocks across
    /// `n_layers` layers with `hidden`-sized K and V vectors per token.
    #[must_use]
    pub fn new(n_layers: usize, num_blocks: usize, block_size: usize, hidden: usize) -> Self {
        Self::with_element(n_layers, num_blocks, block_size, hidden, KvElement::F32)
    }

    /// Allocates zeroed storage with the given element type (the layout the
    /// serving backend's attention kernel reads).
    #[must_use]
    pub fn with_element(
        n_layers: usize,
        num_blocks: usize,
        block_size: usize,
        hidden: usize,
        element: KvElement,
    ) -> Self {
        let layer_len = num_blocks * block_size * hidden;
        let storage = match element {
            KvElement::F32 => KvStorage::F32 {
                k: vec![vec![0.0; layer_len]; n_layers],
                v: vec![vec![0.0; layer_len]; n_layers],
            },
            KvElement::Int8Scaled => KvStorage::Int8 {
                k: vec![vec![0; layer_len]; n_layers],
                v: vec![vec![0; layer_len]; n_layers],
                k_scale: vec![vec![0.0; num_blocks * block_size]; n_layers],
                v_scale: vec![vec![0.0; num_blocks * block_size]; n_layers],
            },
        };
        Self {
            storage,
            n_layers,
            num_blocks,
            block_size,
            hidden,
        }
    }

    /// Element type of the stored K/V scalars.
    #[must_use]
    pub fn element(&self) -> KvElement {
        match &self.storage {
            KvStorage::F32 { .. } => KvElement::F32,
            KvStorage::Int8 { .. } => KvElement::Int8Scaled,
        }
    }

    /// Number of blocks in the pool.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// K/V vector width.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total bytes of K+V storage including any per-vector scales
    /// (capacity accounting; consistent with
    /// [`crate::backend::KvLayout::bytes_per_block`]).
    #[must_use]
    pub fn num_bytes(&self) -> usize {
        let slots = self.num_blocks * self.block_size;
        match &self.storage {
            KvStorage::F32 { .. } => {
                2 * self.n_layers * slots * self.hidden * std::mem::size_of::<f32>()
            }
            KvStorage::Int8 { .. } => {
                2 * self.n_layers * slots * (self.hidden + std::mem::size_of::<f32>())
            }
        }
    }

    #[inline]
    fn offset(&self, block: usize, slot: usize) -> usize {
        debug_assert!(block < self.num_blocks, "block {block} out of range");
        debug_assert!(slot < self.block_size, "slot {slot} out of range");
        (block * self.block_size + slot) * self.hidden
    }

    /// Writes the key/value vectors of one token into `(block, slot)` for
    /// `layer` (the "fused reshape and block write" path, §5.1). On an
    /// int8 pool the vectors are quantized in place with one scale each.
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-range indices or wrong vector widths.
    pub fn write(&mut self, layer: usize, block: usize, slot: usize, key: &[f32], value: &[f32]) {
        debug_assert_eq!(key.len(), self.hidden);
        debug_assert_eq!(value.len(), self.hidden);
        let o = self.offset(block, slot);
        let h = self.hidden;
        match &mut self.storage {
            KvStorage::F32 { k, v } => {
                k[layer][o..o + h].copy_from_slice(key);
                v[layer][o..o + h].copy_from_slice(value);
            }
            KvStorage::Int8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                let si = block * self.block_size + slot;
                k_scale[layer][si] = quantize_slot(key, &mut k[layer][o..o + h]);
                v_scale[layer][si] = quantize_slot(value, &mut v[layer][o..o + h]);
            }
        }
    }

    /// Key vector stored at `(layer, block, slot)`.
    ///
    /// # Panics
    ///
    /// Panics on an int8-quantized pool — use [`Self::key_block_q8`].
    #[must_use]
    pub fn key(&self, layer: usize, block: usize, slot: usize) -> &[f32] {
        let o = self.offset(block, slot);
        match &self.storage {
            KvStorage::F32 { k, .. } => &k[layer][o..o + self.hidden],
            KvStorage::Int8 { .. } => panic!("f32 KV accessor on int8-quantized pool"),
        }
    }

    /// Value vector stored at `(layer, block, slot)`.
    ///
    /// # Panics
    ///
    /// Panics on an int8-quantized pool — use [`Self::value_block_q8`].
    #[must_use]
    pub fn value(&self, layer: usize, block: usize, slot: usize) -> &[f32] {
        let o = self.offset(block, slot);
        match &self.storage {
            KvStorage::F32 { v, .. } => &v[layer][o..o + self.hidden],
            KvStorage::Int8 { .. } => panic!("f32 KV accessor on int8-quantized pool"),
        }
    }

    /// The whole key block `(layer, block)` as `block_size × hidden`.
    ///
    /// # Panics
    ///
    /// Panics on an int8-quantized pool — use [`Self::key_block_q8`].
    #[must_use]
    pub fn key_block(&self, layer: usize, block: usize) -> &[f32] {
        let o = self.offset(block, 0);
        match &self.storage {
            KvStorage::F32 { k, .. } => &k[layer][o..o + self.block_size * self.hidden],
            KvStorage::Int8 { .. } => panic!("f32 KV accessor on int8-quantized pool"),
        }
    }

    /// The whole value block `(layer, block)` as `block_size × hidden`.
    ///
    /// # Panics
    ///
    /// Panics on an int8-quantized pool — use [`Self::value_block_q8`].
    #[must_use]
    pub fn value_block(&self, layer: usize, block: usize) -> &[f32] {
        let o = self.offset(block, 0);
        match &self.storage {
            KvStorage::F32 { v, .. } => &v[layer][o..o + self.block_size * self.hidden],
            KvStorage::Int8 { .. } => panic!("f32 KV accessor on int8-quantized pool"),
        }
    }

    /// The whole quantized key block `(layer, block)`: `block_size × hidden`
    /// int8 values plus `block_size` per-slot dequantization scales.
    ///
    /// # Panics
    ///
    /// Panics on an f32 pool — use [`Self::key_block`].
    #[must_use]
    pub fn key_block_q8(&self, layer: usize, block: usize) -> (&[i8], &[f32]) {
        let o = self.offset(block, 0);
        let so = block * self.block_size;
        match &self.storage {
            KvStorage::Int8 { k, k_scale, .. } => (
                &k[layer][o..o + self.block_size * self.hidden],
                &k_scale[layer][so..so + self.block_size],
            ),
            KvStorage::F32 { .. } => panic!("int8 KV accessor on f32 pool"),
        }
    }

    /// The whole quantized value block `(layer, block)`: values + scales,
    /// like [`Self::key_block_q8`].
    ///
    /// # Panics
    ///
    /// Panics on an f32 pool — use [`Self::value_block`].
    #[must_use]
    pub fn value_block_q8(&self, layer: usize, block: usize) -> (&[i8], &[f32]) {
        let o = self.offset(block, 0);
        let so = block * self.block_size;
        match &self.storage {
            KvStorage::Int8 { v, v_scale, .. } => (
                &v[layer][o..o + self.block_size * self.hidden],
                &v_scale[layer][so..so + self.block_size],
            ),
            KvStorage::F32 { .. } => panic!("int8 KV accessor on f32 pool"),
        }
    }

    /// Copies a whole block (all layers, K and V, and any scales) within
    /// this pool.
    pub fn copy_block_within(&mut self, src: usize, dst: usize) {
        if src == dst {
            return;
        }
        let len = self.block_size * self.hidden;
        let s = self.offset(src, 0);
        let d = self.offset(dst, 0);
        let ss = src * self.block_size;
        let sd = dst * self.block_size;
        let bs = self.block_size;
        for layer in 0..self.n_layers {
            match &mut self.storage {
                KvStorage::F32 { k, v } => {
                    let (k_src, k_dst) = split_two(&mut k[layer], s, d, len);
                    k_dst.copy_from_slice(k_src);
                    let (v_src, v_dst) = split_two(&mut v[layer], s, d, len);
                    v_dst.copy_from_slice(v_src);
                }
                KvStorage::Int8 {
                    k,
                    v,
                    k_scale,
                    v_scale,
                } => {
                    let (k_src, k_dst) = split_two(&mut k[layer], s, d, len);
                    k_dst.copy_from_slice(k_src);
                    let (v_src, v_dst) = split_two(&mut v[layer], s, d, len);
                    v_dst.copy_from_slice(v_src);
                    let (ks_src, ks_dst) = split_two(&mut k_scale[layer], ss, sd, bs);
                    ks_dst.copy_from_slice(ks_src);
                    let (vs_src, vs_dst) = split_two(&mut v_scale[layer], ss, sd, bs);
                    vs_dst.copy_from_slice(vs_src);
                }
            }
        }
    }

    /// Copies a whole block from `self` into `other` (swap transfer).
    ///
    /// # Panics
    ///
    /// Panics if the pools disagree on layer count, block size, width, or
    /// element type.
    pub fn copy_block_to(&self, src: usize, other: &mut KvPool, dst: usize) {
        assert_eq!(self.n_layers, other.n_layers);
        assert_eq!(self.block_size, other.block_size);
        assert_eq!(self.hidden, other.hidden);
        assert_eq!(self.element(), other.element(), "pool element mismatch");
        let len = self.block_size * self.hidden;
        let s = self.offset(src, 0);
        let d = other.offset(dst, 0);
        let ss = src * self.block_size;
        let sd = dst * self.block_size;
        let bs = self.block_size;
        for layer in 0..self.n_layers {
            match (&self.storage, &mut other.storage) {
                (KvStorage::F32 { k, v }, KvStorage::F32 { k: ok, v: ov }) => {
                    ok[layer][d..d + len].copy_from_slice(&k[layer][s..s + len]);
                    ov[layer][d..d + len].copy_from_slice(&v[layer][s..s + len]);
                }
                (
                    KvStorage::Int8 {
                        k,
                        v,
                        k_scale,
                        v_scale,
                    },
                    KvStorage::Int8 {
                        k: ok,
                        v: ov,
                        k_scale: oks,
                        v_scale: ovs,
                    },
                ) => {
                    ok[layer][d..d + len].copy_from_slice(&k[layer][s..s + len]);
                    ov[layer][d..d + len].copy_from_slice(&v[layer][s..s + len]);
                    oks[layer][sd..sd + bs].copy_from_slice(&k_scale[layer][ss..ss + bs]);
                    ovs[layer][sd..sd + bs].copy_from_slice(&v_scale[layer][ss..ss + bs]);
                }
                _ => unreachable!("element types checked above"),
            }
        }
    }

    /// Resizes the pool to `num_blocks` blocks (elastic memory). Growth
    /// appends zeroed storage; shrinkage truncates — the block manager
    /// guarantees every id at or above the new bound was vacated by the
    /// compaction moves applied before the shrink.
    pub fn resize(&mut self, num_blocks: usize) {
        if num_blocks == self.num_blocks {
            return;
        }
        let layer_len = num_blocks * self.block_size * self.hidden;
        let slots = num_blocks * self.block_size;
        match &mut self.storage {
            KvStorage::F32 { k, v } => {
                for l in k.iter_mut().chain(v.iter_mut()) {
                    l.resize(layer_len, 0.0);
                }
            }
            KvStorage::Int8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                for l in k.iter_mut().chain(v.iter_mut()) {
                    l.resize(layer_len, 0);
                }
                for l in k_scale.iter_mut().chain(v_scale.iter_mut()) {
                    l.resize(slots, 0.0);
                }
            }
        }
        self.num_blocks = num_blocks;
    }

    /// Serializes one whole block (all layers, K and V, and any scales)
    /// into a layout-tagged [`KvBlockBytes`] for a KV handoff. Layer-major,
    /// matching [`Self::import_block_bytes`].
    #[must_use]
    pub fn export_block_bytes(&self, block: usize) -> KvBlockBytes {
        let len = self.block_size * self.hidden;
        let o = self.offset(block, 0);
        let so = block * self.block_size;
        let bs = self.block_size;
        match &self.storage {
            KvStorage::F32 { k, v } => {
                let mut ko = Vec::with_capacity(self.n_layers * len);
                let mut vo = Vec::with_capacity(self.n_layers * len);
                for layer in 0..self.n_layers {
                    ko.extend_from_slice(&k[layer][o..o + len]);
                    vo.extend_from_slice(&v[layer][o..o + len]);
                }
                KvBlockBytes::F32 { k: ko, v: vo }
            }
            KvStorage::Int8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                let mut ko = Vec::with_capacity(self.n_layers * len);
                let mut vo = Vec::with_capacity(self.n_layers * len);
                let mut ks = Vec::with_capacity(self.n_layers * bs);
                let mut vs = Vec::with_capacity(self.n_layers * bs);
                for layer in 0..self.n_layers {
                    ko.extend_from_slice(&k[layer][o..o + len]);
                    vo.extend_from_slice(&v[layer][o..o + len]);
                    ks.extend_from_slice(&k_scale[layer][so..so + bs]);
                    vs.extend_from_slice(&v_scale[layer][so..so + bs]);
                }
                KvBlockBytes::Int8 {
                    k: ko,
                    v: vo,
                    k_scales: ks,
                    v_scales: vs,
                }
            }
        }
    }

    /// Writes a serialized block produced by [`Self::export_block_bytes`]
    /// into `block`, returning whether it was applied. Payloads whose
    /// layout or shape disagree with this pool are left unapplied (`false`):
    /// empty-bodied blocks from storage-less backends, and full-width
    /// payloads landing on a tensor-parallel shard whose hidden slice is
    /// narrower, are both benign no-ops by design.
    pub fn import_block_bytes(&mut self, block: usize, data: &KvBlockBytes) -> bool {
        let len = self.block_size * self.hidden;
        let total = self.n_layers * len;
        let o = self.offset(block, 0);
        let so = block * self.block_size;
        let bs = self.block_size;
        match (&mut self.storage, data) {
            (KvStorage::F32 { k, v }, KvBlockBytes::F32 { k: ki, v: vi })
                if ki.len() == total && vi.len() == total =>
            {
                for layer in 0..self.n_layers {
                    k[layer][o..o + len].copy_from_slice(&ki[layer * len..(layer + 1) * len]);
                    v[layer][o..o + len].copy_from_slice(&vi[layer * len..(layer + 1) * len]);
                }
                true
            }
            (
                KvStorage::Int8 {
                    k,
                    v,
                    k_scale,
                    v_scale,
                },
                KvBlockBytes::Int8 {
                    k: ki,
                    v: vi,
                    k_scales: ksi,
                    v_scales: vsi,
                },
            ) if ki.len() == total
                && vi.len() == total
                && ksi.len() == self.n_layers * bs
                && vsi.len() == self.n_layers * bs =>
            {
                for layer in 0..self.n_layers {
                    k[layer][o..o + len].copy_from_slice(&ki[layer * len..(layer + 1) * len]);
                    v[layer][o..o + len].copy_from_slice(&vi[layer * len..(layer + 1) * len]);
                    k_scale[layer][so..so + bs].copy_from_slice(&ksi[layer * bs..(layer + 1) * bs]);
                    v_scale[layer][so..so + bs].copy_from_slice(&vsi[layer * bs..(layer + 1) * bs]);
                }
                true
            }
            _ => false,
        }
    }

    /// Gathers the K and V vectors of positions `0..len` addressed through a
    /// block table into contiguous `len × hidden` f32 buffers (used by
    /// prefill over cached prefixes and by equivalence tests). Quantized
    /// pools are dequantized on the way out.
    #[must_use]
    pub fn gather(&self, layer: usize, block_table: &[usize], len: usize) -> (Vec<f32>, Vec<f32>) {
        let mut ks = Vec::with_capacity(len * self.hidden);
        let mut vs = Vec::with_capacity(len * self.hidden);
        for t in 0..len {
            let block = block_table[t / self.block_size];
            let slot = t % self.block_size;
            let o = self.offset(block, slot);
            match &self.storage {
                KvStorage::F32 { k, v } => {
                    ks.extend_from_slice(&k[layer][o..o + self.hidden]);
                    vs.extend_from_slice(&v[layer][o..o + self.hidden]);
                }
                KvStorage::Int8 {
                    k,
                    v,
                    k_scale,
                    v_scale,
                } => {
                    let si = block * self.block_size + slot;
                    let kq = &k[layer][o..o + self.hidden];
                    let vq = &v[layer][o..o + self.hidden];
                    let (ksc, vsc) = (k_scale[layer][si], v_scale[layer][si]);
                    ks.extend(kq.iter().map(|&q| f32::from(q) * ksc));
                    vs.extend(vq.iter().map(|&q| f32::from(q) * vsc));
                }
            }
        }
        (ks, vs)
    }
}

/// Splits one buffer into a `(src, dst)` pair of non-overlapping regions.
fn split_two<T>(buf: &mut [T], src: usize, dst: usize, len: usize) -> (&[T], &mut [T]) {
    assert!(src.abs_diff(dst) >= len, "regions must not overlap");
    if src < dst {
        let (a, b) = buf.split_at_mut(dst);
        (&a[src..src + len], &mut b[..len])
    } else {
        let (a, b) = buf.split_at_mut(src);
        (&b[..len], &mut a[dst..dst + len])
    }
}

/// GPU + CPU paged KV storage with the scheduler-driven transfer operations.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Active (GPU-analog) pool.
    pub gpu: KvPool,
    /// Swap-space (CPU-analog) pool.
    pub cpu: KvPool,
    /// Cumulative number of block copies performed (metrics).
    pub num_block_copies: u64,
    /// Cumulative number of swap transfers performed (metrics).
    pub num_swap_transfers: u64,
    /// Cumulative number of defragmentation migrations performed (metrics).
    pub num_block_migrations: u64,
    /// Cumulative number of KV-handoff block installations applied (metrics).
    pub num_block_installs: u64,
}

impl KvCache {
    /// Creates both pools with f32 storage.
    #[must_use]
    pub fn new(
        n_layers: usize,
        num_gpu_blocks: usize,
        num_cpu_blocks: usize,
        block_size: usize,
        hidden: usize,
    ) -> Self {
        Self::with_element(
            n_layers,
            num_gpu_blocks,
            num_cpu_blocks,
            block_size,
            hidden,
            KvElement::F32,
        )
    }

    /// Creates both pools with the given element type (both sides of a swap
    /// share the layout, so transfers are raw block copies).
    #[must_use]
    pub fn with_element(
        n_layers: usize,
        num_gpu_blocks: usize,
        num_cpu_blocks: usize,
        block_size: usize,
        hidden: usize,
        element: KvElement,
    ) -> Self {
        Self {
            gpu: KvPool::with_element(n_layers, num_gpu_blocks, block_size, hidden, element),
            cpu: KvPool::with_element(n_layers, num_cpu_blocks, block_size, hidden, element),
            num_block_copies: 0,
            num_swap_transfers: 0,
            num_block_migrations: 0,
            num_block_installs: 0,
        }
    }

    /// Applies the scheduler's cache operations for a step, in the
    /// [`CacheOps`] ordering contract: pool growth, defragmentation moves,
    /// pool shrinkage, then swap-out, swap-in, the batched copy-on-write
    /// copies, and finally any KV-handoff installs.
    pub fn apply(&mut self, ops: &CacheOps) {
        if let Some(n) = ops.gpu_capacity {
            if n > self.gpu.num_blocks() {
                self.gpu.resize(n);
            }
        }
        if let Some(n) = ops.cpu_capacity {
            if n > self.cpu.num_blocks() {
                self.cpu.resize(n);
            }
        }
        for m in &ops.moves {
            match m.device {
                Device::Gpu => self.gpu.copy_block_within(m.src, m.dst),
                Device::Cpu => self.cpu.copy_block_within(m.src, m.dst),
            }
        }
        if let Some(n) = ops.gpu_capacity {
            if n < self.gpu.num_blocks() {
                self.gpu.resize(n);
            }
        }
        if let Some(n) = ops.cpu_capacity {
            if n < self.cpu.num_blocks() {
                self.cpu.resize(n);
            }
        }
        for c in &ops.swap_out {
            self.gpu.copy_block_to(c.src, &mut self.cpu, c.dst);
        }
        for c in &ops.swap_in {
            self.cpu.copy_block_to(c.src, &mut self.gpu, c.dst);
        }
        // The paper batches all pending copy-on-write copies into one kernel
        // launch ("fused block copy"); here one pass over the list.
        for c in &ops.copies {
            self.gpu.copy_block_within(c.src, c.dst);
        }
        for ins in &ops.installs {
            if self.gpu.import_block_bytes(ins.dst, &ins.data) {
                self.num_block_installs += 1;
            }
        }
        self.num_swap_transfers += (ops.swap_in.len() + ops.swap_out.len()) as u64;
        self.num_block_copies += ops.copies.len() as u64;
        self.num_block_migrations += ops.moves.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vllm_core::block_manager::BlockCopy;

    fn filled_pool() -> KvPool {
        let mut p = KvPool::new(2, 4, 2, 3);
        for layer in 0..2 {
            for block in 0..4 {
                for slot in 0..2 {
                    let base = (layer * 100 + block * 10 + slot) as f32;
                    let k: Vec<f32> = (0..3).map(|i| base + i as f32 * 0.1).collect();
                    let v: Vec<f32> = (0..3).map(|i| -(base + i as f32 * 0.1)).collect();
                    p.write(layer, block, slot, &k, &v);
                }
            }
        }
        p
    }

    fn filled_q8_pool() -> KvPool {
        let mut p = KvPool::with_element(2, 4, 2, 3, KvElement::Int8Scaled);
        for layer in 0..2 {
            for block in 0..4 {
                for slot in 0..2 {
                    let base = (layer * 100 + block * 10 + slot) as f32;
                    let k: Vec<f32> = (0..3).map(|i| base + i as f32 * 0.1).collect();
                    let v: Vec<f32> = (0..3).map(|i| -(base + i as f32 * 0.1)).collect();
                    p.write(layer, block, slot, &k, &v);
                }
            }
        }
        p
    }

    #[test]
    fn write_read_round_trip() {
        let p = filled_pool();
        assert_eq!(p.key(1, 2, 1), &[121.0, 121.1, 121.2]);
        assert_eq!(p.value(1, 2, 1), &[-121.0, -121.1, -121.2]);
    }

    #[test]
    fn copy_block_within_copies_all_layers() {
        let mut p = filled_pool();
        p.copy_block_within(2, 0);
        for layer in 0..2 {
            for slot in 0..2 {
                assert_eq!(p.key(layer, 0, slot), p.key(layer, 2, slot));
                assert_eq!(p.value(layer, 0, slot), p.value(layer, 2, slot));
            }
        }
        // Source untouched.
        assert_eq!(p.key(0, 2, 0), &[20.0, 20.1, 20.2]);
    }

    #[test]
    fn copy_block_within_same_block_noop() {
        let mut p = filled_pool();
        let before = p.key(0, 1, 0).to_vec();
        p.copy_block_within(1, 1);
        assert_eq!(p.key(0, 1, 0), &before[..]);
    }

    #[test]
    fn cross_pool_swap_round_trip() {
        let gpu = filled_pool();
        let mut cache = KvCache {
            gpu,
            cpu: KvPool::new(2, 4, 2, 3),
            num_block_copies: 0,
            num_swap_transfers: 0,
            num_block_migrations: 0,
            num_block_installs: 0,
        };
        let original = cache.gpu.key(0, 3, 1).to_vec();
        cache.apply(&CacheOps {
            swap_out: vec![BlockCopy { src: 3, dst: 1 }],
            ..Default::default()
        });
        assert_eq!(cache.cpu.key(0, 1, 1), &original[..]);
        // Clobber the GPU copy, swap back in to a different block.
        cache.gpu.write(0, 3, 1, &[0.0; 3], &[0.0; 3]);
        cache.apply(&CacheOps {
            swap_in: vec![BlockCopy { src: 1, dst: 0 }],
            ..Default::default()
        });
        assert_eq!(cache.gpu.key(0, 0, 1), &original[..]);
        assert_eq!(cache.num_swap_transfers, 2);
    }

    #[test]
    fn gather_follows_block_table() {
        let p = filled_pool();
        // Logical order: block 3, then block 1 → positions 0..4.
        let (ks, _vs) = p.gather(0, &[3, 1], 4);
        assert_eq!(&ks[0..3], p.key(0, 3, 0));
        assert_eq!(&ks[3..6], p.key(0, 3, 1));
        assert_eq!(&ks[6..9], p.key(0, 1, 0));
        assert_eq!(&ks[9..12], p.key(0, 1, 1));
    }

    #[test]
    fn gather_partial_last_block() {
        let p = filled_pool();
        let (ks, vs) = p.gather(1, &[0, 2], 3);
        assert_eq!(ks.len(), 9);
        assert_eq!(vs.len(), 9);
        assert_eq!(&ks[6..9], p.key(1, 2, 0));
    }

    #[test]
    fn num_bytes_accounting() {
        let p = KvPool::new(2, 4, 2, 3);
        // 2 (K+V) * 2 layers * 4 blocks * 2 slots * 3 floats * 4 bytes.
        assert_eq!(p.num_bytes(), 2 * 2 * 4 * 2 * 3 * 4);
        let q = KvPool::with_element(2, 4, 2, 3, KvElement::Int8Scaled);
        // Same shape, 1 byte per element plus one 4-byte scale per vector.
        assert_eq!(q.num_bytes(), 2 * 2 * 4 * 2 * (3 + 4));
        assert!(q.num_bytes() < p.num_bytes());
    }

    #[test]
    fn quantized_round_trip_error_bounded_by_half_scale() {
        let mut p = KvPool::with_element(1, 1, 1, 8, KvElement::Int8Scaled);
        let key = [0.9f32, -0.4, 0.05, -1.27, 0.0, 0.33, 1.2, -0.001];
        let value = [2.0f32, -3.0, 0.25, 0.125, -0.5, 1.0, 0.75, -2.5];
        p.write(0, 0, 0, &key, &value);
        let (ks, vs) = p.gather(0, &[0], 1);
        let k_scale = key.iter().fold(0.0f32, |m, &x| m.max(x.abs())) / 127.0;
        let v_scale = value.iter().fold(0.0f32, |m, &x| m.max(x.abs())) / 127.0;
        for (orig, got) in key.iter().zip(&ks) {
            assert!(
                (orig - got).abs() <= k_scale / 2.0 + 1e-7,
                "{orig} vs {got}"
            );
        }
        for (orig, got) in value.iter().zip(&vs) {
            assert!(
                (orig - got).abs() <= v_scale / 2.0 + 1e-7,
                "{orig} vs {got}"
            );
        }
    }

    #[test]
    fn quantized_zero_vector_round_trips_exactly() {
        let mut p = KvPool::with_element(1, 1, 2, 4, KvElement::Int8Scaled);
        p.write(0, 0, 0, &[0.0; 4], &[0.0; 4]);
        let (ks, vs) = p.gather(0, &[0], 1);
        assert_eq!(ks, vec![0.0; 4]);
        assert_eq!(vs, vec![0.0; 4]);
    }

    #[test]
    fn quantized_copy_and_swap_preserve_scales() {
        let p = filled_q8_pool();
        let (before_vals, before_scales) = {
            let (vals, scales) = p.key_block_q8(1, 3);
            (vals.to_vec(), scales.to_vec())
        };
        // In-pool copy.
        let mut p2 = p.clone();
        p2.copy_block_within(3, 0);
        let (vals, scales) = p2.key_block_q8(1, 0);
        assert_eq!(vals, &before_vals[..]);
        assert_eq!(scales, &before_scales[..]);
        // Cross-pool copy (swap transfer).
        let mut other = KvPool::with_element(2, 4, 2, 3, KvElement::Int8Scaled);
        p.copy_block_to(3, &mut other, 1);
        let (vals, scales) = other.key_block_q8(1, 1);
        assert_eq!(vals, &before_vals[..]);
        assert_eq!(scales, &before_scales[..]);
    }

    #[test]
    fn export_import_round_trip_f32() {
        let p = filled_pool();
        let bytes = p.export_block_bytes(2);
        let mut q = KvPool::new(2, 4, 2, 3);
        assert!(q.import_block_bytes(1, &bytes));
        for layer in 0..2 {
            for slot in 0..2 {
                assert_eq!(q.key(layer, 1, slot), p.key(layer, 2, slot));
                assert_eq!(q.value(layer, 1, slot), p.value(layer, 2, slot));
            }
        }
    }

    #[test]
    fn export_import_round_trip_q8_preserves_scales() {
        let p = filled_q8_pool();
        let bytes = p.export_block_bytes(3);
        let mut q = KvPool::with_element(2, 4, 2, 3, KvElement::Int8Scaled);
        assert!(q.import_block_bytes(0, &bytes));
        for layer in 0..2 {
            let (want_vals, want_scales) = p.key_block_q8(layer, 3);
            let (got_vals, got_scales) = q.key_block_q8(layer, 0);
            assert_eq!(got_vals, want_vals);
            assert_eq!(got_scales, want_scales);
        }
        // Dequantized reads agree too.
        assert_eq!(p.gather(1, &[3], 2), q.gather(1, &[0], 2));
    }

    #[test]
    fn import_rejects_mismatched_payloads() {
        let mut p = filled_pool();
        // Empty payload (storage-less backend) is a benign no-op.
        assert!(!p.import_block_bytes(0, &KvBlockBytes::empty()));
        // Layout mismatch is a no-op.
        let q8 = filled_q8_pool().export_block_bytes(0);
        assert!(!p.import_block_bytes(0, &q8));
        // Wrong width (a shard) is a no-op.
        let narrow = KvPool::new(2, 4, 2, 2).export_block_bytes(0);
        assert!(!p.import_block_bytes(0, &narrow));
    }

    #[test]
    fn apply_counts_only_applied_installs() {
        use vllm_core::handoff::KvBlockInstall;
        let src = filled_pool();
        let mut cache = KvCache::new(2, 4, 2, 2, 3);
        cache.apply(&CacheOps {
            installs: vec![
                KvBlockInstall {
                    dst: 0,
                    data: src.export_block_bytes(3),
                },
                KvBlockInstall {
                    dst: 1,
                    data: KvBlockBytes::empty(),
                },
            ],
            ..Default::default()
        });
        assert_eq!(cache.num_block_installs, 1);
        assert_eq!(cache.gpu.key(0, 0, 1), src.key(0, 3, 1));
    }

    #[test]
    #[should_panic(expected = "f32 KV accessor")]
    fn f32_accessor_on_quantized_pool_panics() {
        let p = filled_q8_pool();
        let _ = p.key_block(0, 0);
    }

    #[test]
    #[should_panic(expected = "element mismatch")]
    fn cross_element_swap_panics() {
        let p = filled_pool();
        let mut other = KvPool::with_element(2, 4, 2, 3, KvElement::Int8Scaled);
        p.copy_block_to(0, &mut other, 0);
    }
}
