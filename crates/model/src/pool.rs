//! Persistent worker pool for kernel parallelism.
//!
//! Every parallel kernel in this crate (row-split matmuls, the batched
//! PagedAttention decode kernel, tensor-parallel worker phases) used to
//! spawn scoped OS threads per call, paying thread create/teardown on every
//! layer of every step. This module replaces those with a pool of
//! long-lived threads and a [`WorkerPool::scoped`] API that mirrors
//! `std::thread::scope`: tasks may borrow from the caller's stack, and the
//! scope blocks until every spawned task has completed before returning.
//!
//! The pool size honors the `VLLM_NUM_THREADS` environment variable and
//! falls back to [`std::thread::available_parallelism`]. A process-wide
//! pool is shared by all executors (see [`global`]); independent pools can
//! be created for tests.
//!
//! Scheduling is help-first: a thread waiting on its scope drains the
//! shared queue instead of parking, so nested `scoped` calls from inside a
//! pool task cannot deadlock, and a pool configured with one thread simply
//! runs every task inline on the caller.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable naming the kernel thread count.
pub const NUM_THREADS_ENV: &str = "VLLM_NUM_THREADS";

/// A type-erased unit of work. Lifetimes are erased when a task is
/// enqueued; soundness is restored by the scope blocking until all of its
/// tasks have run (see [`WorkerPool::scoped`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool's threads and scope waiters.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals pool threads that work (or shutdown) is available.
    job_cv: Condvar,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// Completion tracking for one `scoped` call.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    /// Signaled when `pending` reaches zero.
    done_cv: Condvar,
    /// First panic payload observed in a task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Marks one task finished, recording its panic payload if any.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            self.panic.lock().unwrap().get_or_insert(p);
        }
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// A pool of persistent kernel worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Background threads (the caller of `scoped` acts as one more worker).
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Spawn handle passed to the closure of [`WorkerPool::scoped`].
///
/// The `'env` lifetime is invariant (as in `std::thread::scope`): spawned
/// tasks may borrow anything that outlives the `scoped` call.
pub struct Scope<'env> {
    pool: &'env WorkerPool,
    state: Arc<ScopeState>,
    _invariant: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Scope<'env> {
    /// Enqueues `f` for execution by the pool. Returns immediately; the
    /// surrounding [`WorkerPool::scoped`] call joins it.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.complete(result.err());
        });
        // SAFETY: only the lifetime is erased. `scoped` (via `ScopeGuard`)
        // blocks until `pending` reaches zero, so every borrow captured by
        // `f` strictly outlives the job's execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(job);
    }
}

/// Joins a scope's tasks even if the scope closure unwinds.
struct ScopeGuard<'a> {
    pool: &'a WorkerPool,
    state: &'a Arc<ScopeState>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.pool.wait(self.state);
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total workers (the thread calling
    /// [`WorkerPool::scoped`] counts as one: `threads == 1` means no
    /// background threads and inline execution).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let background = threads.max(1) - 1;
        let handles = (0..background)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vllm-kernel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total worker count, including the calling thread.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f` with a [`Scope`] whose spawned tasks may borrow from the
    /// caller's stack; blocks until every spawned task completes.
    ///
    /// The calling thread helps drain the queue while waiting, so nested
    /// `scoped` calls from inside a task make progress instead of
    /// deadlocking.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic observed in a spawned task (after all
    /// tasks have completed), matching `std::thread::scope` semantics.
    pub fn scoped<'env, F, R>(&'env self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _invariant: PhantomData,
        };
        let result = {
            let _guard = ScopeGuard {
                pool: self,
                state: &state,
            };
            f(&scope)
            // Guard drops here: joins all tasks before any borrow ends.
        };
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }

    fn push(&self, job: Job) {
        self.shared.queue.lock().unwrap().push_back(job);
        self.shared.job_cv.notify_one();
    }

    /// Blocks until `state.pending == 0`, executing queued jobs while
    /// waiting (help-first scheduling).
    fn wait(&self, state: &ScopeState) {
        loop {
            // Drain whatever is runnable. Jobs may belong to other scopes;
            // executing them is still productive and never blocks. The pop
            // is a standalone statement so the queue guard is released
            // before the job runs (a `while let` scrutinee would hold it).
            let job = self.shared.queue.lock().unwrap().pop_front();
            if let Some(job) = job {
                job();
                continue;
            }
            let pending = state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // The queue was empty at the check above, so all of this
            // scope's remaining tasks are running on other threads; their
            // completions signal `done_cv`.
            let _unused = state
                .done_cv
                .wait_timeout(pending, std::time::Duration::from_millis(1))
                .unwrap();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_cv.wait(queue).unwrap();
            }
        };
        job();
    }
}

/// Thread count from `VLLM_NUM_THREADS`, falling back to the machine's
/// available parallelism (minimum 1).
#[must_use]
pub fn configured_threads() -> usize {
    std::env::var(NUM_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// The process-wide kernel pool, created on first use.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_runs_all_tasks_with_borrows() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        pool.scoped(|s| {
            for (i, chunk) in data.chunks_mut(8).enumerate() {
                s.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 8 + j) as u64;
                    }
                });
            }
        });
        let expect: Vec<u64> = (0..64).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scoped(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scoped(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    pool.scoped(|s| {
                        for _ in 0..5 {
                            s.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 20 * 5);
    }

    #[test]
    fn task_panic_propagates_with_payload() {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                s.spawn(|| panic!("kernel exploded"));
                s.spawn(|| {}); // Sibling tasks still complete.
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("kernel exploded"), "payload preserved: {msg}");
    }

    #[test]
    fn env_override_parses() {
        // Only checks the parser contract; the global pool may already be
        // initialized by other tests, so don't touch it here.
        assert!(configured_threads() >= 1);
    }
}
