//! A from-scratch byte-pair-encoding tokenizer (§5's "we tokenize the
//! datasets" substrate).
//!
//! Training learns greedy byte-pair merges from a corpus; encoding applies
//! them in rank order (lowest-rank merge first, as in GPT-2's BPE). The
//! vocabulary is `256 byte tokens + merges + specials`, so any byte string
//! round-trips exactly.

use std::collections::HashMap;

use vllm_core::sampling::TokenId;

/// First id after the 256 byte tokens; merge tokens grow from here.
const FIRST_MERGE_ID: TokenId = 256;

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Merge rules: (left, right) → merged token id, in training order.
    merges: Vec<(TokenId, TokenId)>,
    /// Lookup from pair to (rank, merged id).
    ranks: HashMap<(TokenId, TokenId), (usize, TokenId)>,
    /// Expansion of every token id to its bytes.
    vocab: Vec<Vec<u8>>,
    /// Beginning-of-sequence token id.
    pub bos: TokenId,
    /// End-of-sequence token id.
    pub eos: TokenId,
}

impl BpeTokenizer {
    /// Trains a tokenizer with up to `num_merges` merge rules from `corpus`.
    ///
    /// Training is the classic greedy loop: repeatedly merge the most
    /// frequent adjacent pair. Pairs that appear fewer than 2 times stop
    /// the loop early.
    #[must_use]
    pub fn train(corpus: &str, num_merges: usize) -> Self {
        // Current tokenization of the corpus (starts as raw bytes).
        let mut tokens: Vec<TokenId> = corpus.bytes().map(TokenId::from).collect();
        let mut merges = Vec::with_capacity(num_merges);
        let mut vocab: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();

        for merge_idx in 0..num_merges {
            // Count adjacent pairs.
            let mut counts: HashMap<(TokenId, TokenId), usize> = HashMap::new();
            for w in tokens.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            // Deterministic argmax: highest count, then smallest pair.
            let Some((&pair, &count)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = FIRST_MERGE_ID + merge_idx as TokenId;
            merges.push(pair);
            let mut expansion = vocab[pair.0 as usize].clone();
            expansion.extend_from_slice(&vocab[pair.1 as usize]);
            vocab.push(expansion);

            // Apply the merge to the working corpus.
            let mut out = Vec::with_capacity(tokens.len());
            let mut i = 0;
            while i < tokens.len() {
                if i + 1 < tokens.len() && (tokens[i], tokens[i + 1]) == pair {
                    out.push(new_id);
                    i += 2;
                } else {
                    out.push(tokens[i]);
                    i += 1;
                }
            }
            tokens = out;
        }

        let bos = FIRST_MERGE_ID + merges.len() as TokenId;
        let eos = bos + 1;
        vocab.push(b"<bos>".to_vec());
        vocab.push(b"<eos>".to_vec());
        let ranks = merges
            .iter()
            .enumerate()
            .map(|(rank, &pair)| (pair, (rank, FIRST_MERGE_ID + rank as TokenId)))
            .collect();
        Self {
            merges,
            ranks,
            vocab,
            bos,
            eos,
        }
    }

    /// Vocabulary size (bytes + merges + specials).
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of learned merges.
    #[must_use]
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Encodes text: bytes first, then merges applied lowest rank first.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut tokens: Vec<TokenId> = text.bytes().map(TokenId::from).collect();
        loop {
            // Find the lowest-rank applicable pair.
            let best = tokens
                .windows(2)
                .filter_map(|w| self.ranks.get(&(w[0], w[1])))
                .min_by_key(|(rank, _)| *rank)
                .copied();
            let Some((rank, merged)) = best else {
                break;
            };
            let pair = self.merges[rank];
            let mut out = Vec::with_capacity(tokens.len());
            let mut i = 0;
            while i < tokens.len() {
                if i + 1 < tokens.len() && (tokens[i], tokens[i + 1]) == pair {
                    out.push(merged);
                    i += 2;
                } else {
                    out.push(tokens[i]);
                    i += 1;
                }
            }
            tokens = out;
        }
        tokens
    }

    /// Encodes with the `<bos>` prefix (serving prompts).
    #[must_use]
    pub fn encode_with_bos(&self, text: &str) -> Vec<TokenId> {
        std::iter::once(self.bos).chain(self.encode(text)).collect()
    }

    /// Decodes token ids to text (specials skipped, invalid UTF-8 replaced).
    #[must_use]
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            if t == self.bos || t == self.eos {
                continue;
            }
            if let Some(exp) = self.vocab.get(t as usize) {
                bytes.extend_from_slice(exp);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "the quick brown fox jumps over the lazy dog. \
                          the quick brown fox jumps over the lazy dog. \
                          the paged attention kernel reads the kv cache \
                          block by block. the kv cache grows block by block.";

    #[test]
    fn round_trip_exact() {
        let tok = BpeTokenizer::train(CORPUS, 50);
        for text in [
            "the quick brown fox",
            "completely unseen zebra text!",
            "héllo ✓ utf-8",
            "",
        ] {
            assert_eq!(tok.decode(&tok.encode(text)), text, "text {text:?}");
        }
    }

    #[test]
    fn merges_compress_training_text() {
        let tok = BpeTokenizer::train(CORPUS, 100);
        let text = "the quick brown fox jumps over the lazy dog.";
        let encoded = tok.encode(text);
        assert!(
            encoded.len() < text.len() / 2,
            "{} tokens for {} bytes",
            encoded.len(),
            text.len()
        );
    }

    #[test]
    fn unseen_text_falls_back_to_bytes() {
        let tok = BpeTokenizer::train(CORPUS, 50);
        let encoded = tok.encode("XYZQW");
        // No merges trained on these bytes: 1 token per byte.
        assert_eq!(encoded.len(), 5);
        assert!(encoded.iter().all(|&t| t < 256));
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTokenizer::train(CORPUS, 64);
        let b = BpeTokenizer::train(CORPUS, 64);
        assert_eq!(a.merges, b.merges);
        assert_eq!(a.encode("the kv cache"), b.encode("the kv cache"));
    }

    #[test]
    fn merge_budget_respected_and_early_stop() {
        let tok = BpeTokenizer::train(CORPUS, 10);
        assert_eq!(tok.num_merges(), 10);
        // A tiny corpus with no repeated pair stops early.
        let tiny = BpeTokenizer::train("ab", 100);
        assert_eq!(tiny.num_merges(), 0);
        assert_eq!(tiny.vocab_size(), 256 + 2);
    }

    #[test]
    fn specials_distinct_and_skipped() {
        let tok = BpeTokenizer::train(CORPUS, 20);
        assert_ne!(tok.bos, tok.eos);
        let ids = tok.encode_with_bos("fox");
        assert_eq!(ids[0], tok.bos);
        assert_eq!(tok.decode(&ids), "fox");
    }

    #[test]
    fn encode_matches_incremental_merge_semantics() {
        // Property: decoding the encoding of the training corpus itself is
        // exact and shorter than the byte length.
        let tok = BpeTokenizer::train(CORPUS, 80);
        let encoded = tok.encode(CORPUS);
        assert!(encoded.len() < CORPUS.len());
        assert_eq!(tok.decode(&encoded), CORPUS);
    }
}
