//! Binary weight checkpoints for [`Transformer`] models.
//!
//! A small self-describing little-endian format (magic, version, config
//! header, then raw `f32` tensors in a fixed order) so demo models can be
//! trained/perturbed externally, persisted, and served without
//! re-initializing from a seed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::config::ModelConfig;
use crate::transformer::{LayerWeights, Transformer};

/// File magic: `VLMR` (vLLM-Rust).
pub const MAGIC: u32 = 0x564c_4d52;
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors produced when decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before all tensors were read.
    Truncated,
    /// A header field is inconsistent (e.g. heads don't divide hidden).
    BadHeader(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a vllm checkpoint (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::BadHeader(msg) => write!(f, "bad checkpoint header: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_tensor(buf: &mut BytesMut, t: &[f32]) {
    buf.put_u64_le(t.len() as u64);
    for &v in t {
        buf.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut Bytes, expected_len: usize) -> Result<Vec<f32>, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let len = buf.get_u64_le() as usize;
    if len != expected_len {
        return Err(CheckpointError::BadHeader(format!(
            "tensor length {len}, expected {expected_len}"
        )));
    }
    if buf.remaining() < len * 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Serializes a model to the checkpoint format.
#[must_use]
pub fn save(model: &Transformer) -> Vec<u8> {
    let c = &model.config;
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(c.vocab_size as u64);
    buf.put_u64_le(c.hidden as u64);
    buf.put_u64_le(c.n_layers as u64);
    buf.put_u64_le(c.n_heads as u64);
    buf.put_u64_le(c.max_position as u64);
    buf.put_u32_le(c.eos_token_id);
    buf.put_u64_le(c.seed);
    buf.put_u8(match c.position_encoding {
        crate::config::PositionEncoding::Learned => 0,
        crate::config::PositionEncoding::Rotary => 1,
    });
    put_tensor(&mut buf, &model.wte);
    put_tensor(&mut buf, &model.wpe);
    put_tensor(&mut buf, &model.ln_f_g);
    put_tensor(&mut buf, &model.ln_f_b);
    for lw in &model.layers {
        for t in [
            &lw.ln1_g, &lw.ln1_b, &lw.w_qkv, &lw.b_qkv, &lw.w_o, &lw.b_o, &lw.ln2_g, &lw.ln2_b,
            &lw.w_fc, &lw.b_fc, &lw.w_proj, &lw.b_proj,
        ] {
            put_tensor(&mut buf, t);
        }
    }
    buf.to_vec()
}

/// Deserializes a model from the checkpoint format.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on malformed input.
pub fn load(data: &[u8]) -> Result<Transformer, CheckpointError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    if buf.remaining() < 5 * 8 + 4 + 8 + 1 {
        return Err(CheckpointError::Truncated);
    }
    let config = ModelConfig {
        vocab_size: buf.get_u64_le() as usize,
        hidden: buf.get_u64_le() as usize,
        n_layers: buf.get_u64_le() as usize,
        n_heads: buf.get_u64_le() as usize,
        max_position: buf.get_u64_le() as usize,
        eos_token_id: buf.get_u32_le(),
        seed: buf.get_u64_le(),
        position_encoding: match buf.get_u8() {
            0 => crate::config::PositionEncoding::Learned,
            1 => crate::config::PositionEncoding::Rotary,
            other => {
                return Err(CheckpointError::BadHeader(format!(
                    "unknown position encoding {other}"
                )))
            }
        },
        // The kernel backend is a serving-time choice, not a property of
        // the weights; loaded models pick it up from the environment.
        backend: crate::backend::BackendKind::from_env(),
    };
    if config.n_heads == 0 || config.hidden == 0 || !config.hidden.is_multiple_of(config.n_heads) {
        return Err(CheckpointError::BadHeader(
            "heads must divide hidden".into(),
        ));
    }
    if config.vocab_size == 0 || config.n_layers == 0 || config.max_position == 0 {
        return Err(CheckpointError::BadHeader("zero-sized dimension".into()));
    }
    let h = config.hidden;
    let wte = get_tensor(&mut buf, config.vocab_size * h)?;
    let wpe = get_tensor(&mut buf, config.max_position * h)?;
    let ln_f_g = get_tensor(&mut buf, h)?;
    let ln_f_b = get_tensor(&mut buf, h)?;
    let mut layers = Vec::with_capacity(config.n_layers);
    for _ in 0..config.n_layers {
        layers.push(LayerWeights {
            ln1_g: get_tensor(&mut buf, h)?,
            ln1_b: get_tensor(&mut buf, h)?,
            w_qkv: get_tensor(&mut buf, h * 3 * h)?,
            b_qkv: get_tensor(&mut buf, 3 * h)?,
            w_o: get_tensor(&mut buf, h * h)?,
            b_o: get_tensor(&mut buf, h)?,
            ln2_g: get_tensor(&mut buf, h)?,
            ln2_b: get_tensor(&mut buf, h)?,
            w_fc: get_tensor(&mut buf, h * 4 * h)?,
            b_fc: get_tensor(&mut buf, 4 * h)?,
            w_proj: get_tensor(&mut buf, 4 * h * h)?,
            b_proj: get_tensor(&mut buf, h)?,
        });
    }
    // The transposed LM-head copy is derived, not serialized.
    let wte_t = crate::ops::transpose(&wte, config.vocab_size, h);
    Ok(Transformer {
        config,
        wte,
        wte_t,
        wpe,
        layers,
        ln_f_g,
        ln_f_b,
    })
}

/// Saves a model to a file.
///
/// # Errors
///
/// Returns I/O errors from the filesystem.
pub fn save_to_file(model: &Transformer, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, save(model))
}

/// Loads a model from a file.
///
/// # Errors
///
/// Returns I/O errors, or `InvalidData` wrapping a [`CheckpointError`].
pub fn load_from_file(path: &std::path::Path) -> std::io::Result<Transformer> {
    let data = std::fs::read(path)?;
    load(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv_cache::KvPool;

    #[test]
    fn round_trip_preserves_weights() {
        let model = Transformer::new(ModelConfig::tiny());
        let bytes = save(&model);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.config, model.config);
        assert_eq!(loaded.wte, model.wte);
        assert_eq!(loaded.wpe, model.wpe);
        assert_eq!(loaded.layers.len(), model.layers.len());
        assert_eq!(loaded.layers[0].w_qkv, model.layers[0].w_qkv);
        assert_eq!(loaded.layers[1].b_proj, model.layers[1].b_proj);
    }

    #[test]
    fn round_trip_preserves_logits() {
        let cfg = ModelConfig::tiny();
        let model = Transformer::new(cfg.clone());
        let loaded = load(&save(&model)).unwrap();
        let mut pool_a = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        let mut pool_b = KvPool::new(cfg.n_layers, 8, 4, cfg.hidden);
        let a = model.forward_paged(&[3, 1, 4], &[0, 1, 2], &mut pool_a, &[0, 1], 0);
        let b = loaded.forward_paged(&[3, 1, 4], &[0, 1, 2], &mut pool_b, &[0, 1], 0);
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let model = Transformer::new(ModelConfig::tiny());
        let mut bytes = save(&model);
        bytes[0] ^= 0xff;
        assert!(matches!(load(&bytes), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let model = Transformer::new(ModelConfig::tiny());
        let bytes = save(&model);
        for cut in [4usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn corrupt_header_rejected() {
        let model = Transformer::new(ModelConfig::tiny());
        let mut bytes = save(&model);
        // Zero the hidden dimension (offset: magic 4 + version 4 + vocab 8).
        for b in &mut bytes[16..24] {
            *b = 0;
        }
        assert!(matches!(
            load(&bytes),
            Err(CheckpointError::BadHeader(_)) | Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn file_round_trip() {
        let model = Transformer::new(ModelConfig::tiny());
        let dir = std::env::temp_dir().join("vllm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.vlmr");
        save_to_file(&model, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.wte, model.wte);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let model = Transformer::new(ModelConfig::tiny());
        let mut bytes = save(&model);
        bytes[4] = 99;
        assert!(matches!(load(&bytes), Err(CheckpointError::BadVersion(99))));
    }
}
