//! Model hyper-parameters for the CPU transformer substrate.

use crate::backend::BackendKind;

/// How token positions are injected (§2.1 substrate detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionEncoding {
    /// Learned absolute position embeddings (OPT/GPT style).
    Learned,
    /// Rotary position embeddings applied to Q/K (LLaMA style). Keys are
    /// stored post-rotation in the KV cache, as in real serving systems.
    Rotary,
}

/// Configuration of a GPT/OPT-style decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden dimension (`d` in the paper).
    pub hidden: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of attention heads; must divide `hidden`.
    pub n_heads: usize,
    /// Maximum sequence length (learned positional embeddings).
    pub max_position: usize,
    /// End-of-sequence token id.
    pub eos_token_id: u32,
    /// Seed for deterministic weight initialization.
    pub seed: u64,
    /// Position-encoding scheme.
    pub position_encoding: PositionEncoding,
    /// Kernel backend serving this model (selects the matmul/attention
    /// kernels and the KV cache element layout). Presets read
    /// [`crate::backend::BACKEND_ENV`]; not serialized in checkpoints.
    pub backend: BackendKind,
}

impl ModelConfig {
    /// A tiny model for unit tests (fast, still multi-head/multi-layer).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            vocab_size: 128,
            hidden: 32,
            n_layers: 2,
            n_heads: 4,
            max_position: 512,
            eos_token_id: 0,
            seed: 0x5eed,
            position_encoding: PositionEncoding::Learned,
            backend: BackendKind::from_env(),
        }
    }

    /// A tiny LLaMA-style model (rotary positions) for tests.
    #[must_use]
    pub fn tiny_rotary() -> Self {
        Self {
            position_encoding: PositionEncoding::Rotary,
            seed: 0x11a,
            ..Self::tiny()
        }
    }

    /// A small demo model for examples (byte-level vocabulary).
    #[must_use]
    pub fn small() -> Self {
        Self {
            vocab_size: 260,
            hidden: 64,
            n_layers: 4,
            n_heads: 8,
            max_position: 1024,
            eos_token_id: 257,
            seed: 0xcafe,
            position_encoding: PositionEncoding::Learned,
            backend: BackendKind::from_env(),
        }
    }

    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not a multiple of `n_heads` or any dimension is
    /// zero.
    pub fn validate(&self) {
        assert!(self.vocab_size > 0 && self.hidden > 0 && self.n_layers > 0);
        assert!(
            self.n_heads > 0 && self.hidden.is_multiple_of(self.n_heads),
            "hidden ({}) must be divisible by n_heads ({})",
            self.hidden,
            self.n_heads
        );
        assert!(self.max_position > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        ModelConfig::tiny().validate();
        ModelConfig::small().validate();
        assert_eq!(ModelConfig::tiny().head_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn invalid_heads_panics() {
        let mut c = ModelConfig::tiny();
        c.n_heads = 5;
        c.validate();
    }
}
