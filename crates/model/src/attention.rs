//! Attention kernels: the contiguous reference and the PagedAttention
//! kernel that reads K/V through a block table (§4.1, Eq. 4).
//!
//! The paged kernel streams over KV blocks with an online-softmax
//! accumulator, exactly mirroring the blockwise decomposition of Eq. 4: per
//! block it computes the score row `A_ij = softmax(q·K_j)` contribution and
//! accumulates `V_j A_ij` without materializing the full attention row.

use crate::kv_cache::KvPool;
use crate::ops::{axpy, dot, softmax, timing};
use crate::pool::WorkerPool;

/// Multi-head causal attention over contiguous K/V buffers.
///
/// Queries `q` are `nq × hidden` at absolute positions `q_start ..
/// q_start + nq`; keys/values are `nk × hidden` at positions `0 .. nk`.
/// Query at absolute position `p` attends to keys `0 ..= p`. Used for the
/// prompt phase ("the prefill step uses a conventional self-attention
/// algorithm", §4.3) and as the FasterTransformer-style baseline kernel.
///
/// # Panics
///
/// Panics if shapes disagree or `q_start + nq > nk`.
#[allow(clippy::too_many_arguments)]
pub fn contiguous_causal_attention(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    nq: usize,
    nk: usize,
    q_start: usize,
    n_heads: usize,
    head_dim: usize,
    out: &mut [f32],
) {
    let hidden = n_heads * head_dim;
    assert_eq!(q.len(), nq * hidden);
    assert_eq!(k.len(), nk * hidden);
    assert_eq!(v.len(), nk * hidden);
    assert_eq!(out.len(), nq * hidden);
    assert!(q_start + nq <= nk, "queries attend beyond provided keys");
    let scale = 1.0 / (head_dim as f32).sqrt();

    let mut scores = vec![0.0f32; nk];
    for qi in 0..nq {
        let pos = q_start + qi;
        let ctx = pos + 1;
        for h in 0..n_heads {
            let ho = h * head_dim;
            let q_h = &q[qi * hidden + ho..qi * hidden + ho + head_dim];
            let s = &mut scores[..ctx];
            for (t, s_t) in s.iter_mut().enumerate() {
                let k_h = &k[t * hidden + ho..t * hidden + ho + head_dim];
                *s_t = dot(q_h, k_h) * scale;
            }
            softmax(s);
            let o = &mut out[qi * hidden + ho..qi * hidden + ho + head_dim];
            o.fill(0.0);
            for (t, &w) in s.iter().enumerate() {
                let v_h = &v[t * hidden + ho..t * hidden + ho + head_dim];
                axpy(o, w, v_h);
            }
        }
    }
}

/// Prefill attention over paged K/V (whole prompts and scheduler-budgeted
/// chunks): gathers the first `context_len` positions through the block
/// table — dequantizing as the pool's layout requires — then runs the
/// contiguous causal kernel over query rows `num_cached .. num_cached + nq`.
/// Rows attend to every prior chunk's KV plus a causal intra-chunk mask.
///
/// Determinism contract: per row, score and output accumulation orders are
/// functions of the reduction index alone (k-order [`dot`], t-order
/// [`axpy`]), so a row's output depends only on its query and KV
/// `[0 ..= row]` — never on which chunk the row arrived in or what else is
/// batched. This is the property that makes chunked prefill logits
/// bit-identical to an unchunked prefill on every backend.
///
/// # Panics
///
/// Panics if shapes disagree or the block table does not cover
/// `context_len`.
#[allow(clippy::too_many_arguments)]
pub fn paged_attention_prefill(
    q: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    nq: usize,
    context_len: usize,
    num_cached: usize,
    n_heads: usize,
    head_dim: usize,
    out: &mut [f32],
) {
    assert!(
        block_table.len() * pool.block_size() >= context_len,
        "block table too short for prefill context"
    );
    let t0 = std::time::Instant::now();
    let (ks, vs) = pool.gather(layer, block_table, context_len);
    contiguous_causal_attention(
        q,
        &ks,
        &vs,
        nq,
        context_len,
        num_cached,
        n_heads,
        head_dim,
        out,
    );
    timing::record_attention(t0.elapsed());
}

/// Single-query attention over contiguous K/V (the FasterTransformer-style
/// decode kernel used as the Fig. 18a baseline).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn contiguous_attention_decode(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    context_len: usize,
    n_heads: usize,
    head_dim: usize,
    out: &mut [f32],
) {
    contiguous_causal_attention(
        q,
        k,
        v,
        1,
        context_len,
        context_len - 1,
        n_heads,
        head_dim,
        out,
    );
}

/// PagedAttention for one query token (§4.1): K/V are fetched block by
/// block through `block_table` from the paged pool, with an online softmax
/// so the full score row is never materialized.
///
/// `context_len` counts the valid KV slots (the query token's own K/V must
/// already be written at position `context_len - 1`).
///
/// # Panics
///
/// Panics if the block table is too short for `context_len` or shapes
/// disagree.
#[allow(clippy::too_many_arguments)]
pub fn paged_attention_decode(
    q: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    n_heads: usize,
    head_dim: usize,
    out: &mut [f32],
) {
    check_decode_shapes(q, pool, block_table, context_len, n_heads, head_dim, out);
    for h in 0..n_heads {
        let ho = h * head_dim;
        decode_head(
            &q[ho..ho + head_dim],
            pool,
            layer,
            block_table,
            context_len,
            ho,
            &mut out[ho..ho + head_dim],
        );
    }
}

/// Validates the shared preconditions of a solo decode call: query/output
/// widths, pool width, and block-table coverage of `context_len`.
///
/// # Panics
///
/// Panics when any precondition is violated.
pub(crate) fn check_decode_shapes(
    q: &[f32],
    pool: &KvPool,
    block_table: &[usize],
    context_len: usize,
    n_heads: usize,
    head_dim: usize,
    out: &[f32],
) {
    let hidden = n_heads * head_dim;
    assert_eq!(q.len(), hidden);
    assert_eq!(out.len(), hidden);
    assert_eq!(pool.hidden(), hidden);
    let bs = pool.block_size();
    let num_blocks = context_len.div_ceil(bs);
    assert!(
        block_table.len() >= num_blocks,
        "block table has {} entries, context needs {num_blocks}",
        block_table.len()
    );
}

/// Online-softmax PagedAttention for one (query, head) pair: the shared
/// inner routine of the solo and batched decode kernels, so their outputs
/// are bit-identical by construction. Backends with their own inner loops
/// (SIMD lanes, quantized KV) supply a head routine of this same shape to
/// [`decode_batch_driver`].
///
/// `q_h` and `o` are `head_dim`-sized slices; `ho` is the head's offset
/// into the `hidden`-wide K/V vectors of the pool.
pub(crate) fn decode_head(
    q_h: &[f32],
    pool: &KvPool,
    layer: usize,
    block_table: &[usize],
    context_len: usize,
    ho: usize,
    o: &mut [f32],
) {
    let head_dim = q_h.len();
    let hidden = pool.hidden();
    let bs = pool.block_size();
    let num_blocks = context_len.div_ceil(bs);
    let scale = 1.0 / (head_dim as f32).sqrt();
    // Online softmax state for this head.
    let mut m = f32::NEG_INFINITY;
    let mut l = 0.0f32;
    let mut acc = vec![0.0f32; head_dim];
    for (j, &block) in block_table.iter().take(num_blocks).enumerate() {
        let fill = (context_len - j * bs).min(bs);
        let k_block = pool.key_block(layer, block);
        let v_block = pool.value_block(layer, block);
        for slot in 0..fill {
            let k_h = &k_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            let s = dot(q_h, k_h) * scale;
            let m_new = m.max(s);
            let correction = (m - m_new).exp();
            let w = (s - m_new).exp();
            l = l * correction + w;
            for a in acc.iter_mut() {
                *a *= correction;
            }
            let v_h = &v_block[slot * hidden + ho..slot * hidden + ho + head_dim];
            axpy(&mut acc, w, v_h);
            m = m_new;
        }
    }
    if l > 0.0 {
        for (dst, a) in o.iter_mut().zip(&acc) {
            *dst = a / l;
        }
    } else {
        o.fill(0.0);
    }
}

/// One sequence's KV addressing for the batched decode kernel.
#[derive(Debug, Clone, Copy)]
pub struct DecodeSeq<'a> {
    /// Physical block indices for the sequence's logical blocks.
    pub block_table: &'a [usize],
    /// Valid KV slots (the query's own K/V already written at the end).
    pub context_len: usize,
}

/// Batched PagedAttention decode (§4.3, §5.1): one query token per
/// sequence, all sequences in one call, parallelized over (sequence, head)
/// pairs on the worker pool with independent online-softmax state per
/// pair.
///
/// `q` and `out` are `batch × hidden` with row `i` belonging to `seqs[i]`.
/// Each pair runs the same inner routine as [`paged_attention_decode`], so
/// every output row is bit-identical to a solo call for that sequence.
///
/// # Panics
///
/// Panics if shapes disagree or any block table is too short for its
/// context length.
#[allow(clippy::too_many_arguments)]
pub fn paged_attention_decode_batch(
    q: &[f32],
    pool: &KvPool,
    layer: usize,
    seqs: &[DecodeSeq<'_>],
    n_heads: usize,
    head_dim: usize,
    workers: &WorkerPool,
    out: &mut [f32],
) {
    decode_batch_driver(
        q,
        pool,
        layer,
        seqs,
        n_heads,
        head_dim,
        workers,
        out,
        decode_head,
    );
}

/// The batched-decode scaffolding shared by every backend: validates
/// shapes, splits the (sequence, head) pair space across the worker pool,
/// runs `head` on each pair, and records the span into the attention
/// kernel counters. Solo/batched bit-identity per backend follows from
/// each backend passing the same head routine to both entry points.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_batch_driver<F>(
    q: &[f32],
    pool: &KvPool,
    layer: usize,
    seqs: &[DecodeSeq<'_>],
    n_heads: usize,
    head_dim: usize,
    workers: &WorkerPool,
    out: &mut [f32],
    head: F,
) where
    F: Fn(&[f32], &KvPool, usize, &[usize], usize, usize, &mut [f32]) + Sync,
{
    let start = std::time::Instant::now();
    let hidden = n_heads * head_dim;
    let batch = seqs.len();
    assert_eq!(q.len(), batch * hidden);
    assert_eq!(out.len(), batch * hidden);
    assert_eq!(pool.hidden(), hidden);
    let bs = pool.block_size();
    for s in seqs {
        let num_blocks = s.context_len.div_ceil(bs);
        assert!(
            s.block_table.len() >= num_blocks,
            "block table has {} entries, context needs {num_blocks}",
            s.block_table.len()
        );
    }
    let total_pairs = batch * n_heads;
    if total_pairs == 0 {
        return;
    }
    // Split the (sequence, head) pair space into contiguous ranges, one
    // per worker. `out` is pair-major (`batch × n_heads × head_dim`), so a
    // pair range is a contiguous `&mut` chunk.
    let n_tasks = workers.parallelism().min(total_pairs);
    let pairs_per_task = total_pairs.div_ceil(n_tasks);
    let head = &head;
    workers.scoped(|scope| {
        for (t, out_chunk) in out.chunks_mut(pairs_per_task * head_dim).enumerate() {
            let base = t * pairs_per_task;
            scope.spawn(move || {
                for (i, o) in out_chunk.chunks_mut(head_dim).enumerate() {
                    let pair = base + i;
                    let seq = pair / n_heads;
                    let ho = (pair % n_heads) * head_dim;
                    let q_h = &q[seq * hidden + ho..seq * hidden + ho + head_dim];
                    head(
                        q_h,
                        pool,
                        layer,
                        seqs[seq].block_table,
                        seqs[seq].context_len,
                        ho,
                        o,
                    );
                }
            });
        }
    });
    timing::record_attention(start.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: usize = 2;
    const HD: usize = 4;
    const HIDDEN: usize = H * HD;

    /// Deterministic pseudo-random fill.
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 / 1000.0) - 1.0
            })
            .collect()
    }

    fn build_pool(k: &[f32], v: &[f32], ctx: usize, bs: usize) -> (KvPool, Vec<usize>) {
        let num_blocks = ctx.div_ceil(bs) + 2;
        let mut pool = KvPool::new(1, num_blocks, bs, HIDDEN);
        // Scramble the physical order to prove non-contiguity is handled.
        let table: Vec<usize> = (0..ctx.div_ceil(bs))
            .map(|j| (j * 7 + 3) % num_blocks)
            .collect();
        // Ensure table entries are distinct.
        let mut seen = std::collections::HashSet::new();
        let table: Vec<usize> = table
            .into_iter()
            .map(|b| {
                let mut b = b;
                while !seen.insert(b) {
                    b = (b + 1) % num_blocks;
                }
                b
            })
            .collect();
        for t in 0..ctx {
            pool.write(
                0,
                table[t / bs],
                t % bs,
                &k[t * HIDDEN..(t + 1) * HIDDEN],
                &v[t * HIDDEN..(t + 1) * HIDDEN],
            );
        }
        (pool, table)
    }

    #[test]
    fn paged_matches_contiguous_across_shapes() {
        for &ctx in &[1usize, 2, 5, 16, 17, 33, 64] {
            for &bs in &[1usize, 2, 4, 16] {
                let q = fill(1, HIDDEN);
                let k = fill(2 + ctx as u64, ctx * HIDDEN);
                let v = fill(3 + ctx as u64, ctx * HIDDEN);
                let mut reference = vec![0.0; HIDDEN];
                contiguous_attention_decode(&q, &k, &v, ctx, H, HD, &mut reference);

                let (pool, table) = build_pool(&k, &v, ctx, bs);
                let mut paged = vec![0.0; HIDDEN];
                paged_attention_decode(&q, &pool, 0, &table, ctx, H, HD, &mut paged);
                for (i, (a, b)) in reference.iter().zip(&paged).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-4,
                        "ctx={ctx} bs={bs} idx={i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn causal_mask_respected() {
        // With a single key visible, output must equal that value vector.
        let q = fill(10, HIDDEN);
        let k = fill(11, 4 * HIDDEN);
        let v = fill(12, 4 * HIDDEN);
        let mut out = vec![0.0; HIDDEN];
        contiguous_causal_attention(&q, &k, &v, 1, 4, 0, H, HD, &mut out);
        for (o, expect) in out.iter().zip(&v[0..HIDDEN]) {
            assert!((o - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn prefill_last_row_matches_decode() {
        let ctx = 9;
        let q = fill(20, ctx * HIDDEN);
        let k = fill(21, ctx * HIDDEN);
        let v = fill(22, ctx * HIDDEN);
        let mut full = vec![0.0; ctx * HIDDEN];
        contiguous_causal_attention(&q, &k, &v, ctx, ctx, 0, H, HD, &mut full);
        let mut last = vec![0.0; HIDDEN];
        contiguous_attention_decode(&q[(ctx - 1) * HIDDEN..], &k, &v, ctx, H, HD, &mut last);
        for (a, b) in full[(ctx - 1) * HIDDEN..].iter().zip(&last) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn offset_queries_attend_prefix() {
        // Queries starting at position 2 must see keys 0..=2, 0..=3.
        let nk = 4;
        let q = fill(30, 2 * HIDDEN);
        let k = fill(31, nk * HIDDEN);
        let v = fill(32, nk * HIDDEN);
        let mut out = vec![0.0; 2 * HIDDEN];
        contiguous_causal_attention(&q, &k, &v, 2, nk, 2, H, HD, &mut out);
        // Row 0 == decode over ctx 3 with the same query.
        let mut d = vec![0.0; HIDDEN];
        contiguous_attention_decode(
            &q[0..HIDDEN],
            &k[..3 * HIDDEN],
            &v[..3 * HIDDEN],
            3,
            H,
            HD,
            &mut d,
        );
        for (a, b) in out[..HIDDEN].iter().zip(&d) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn batched_decode_bit_identical_to_solo() {
        let workers = WorkerPool::new(3);
        for &bs in &[1usize, 4, 16] {
            let ctxs = [1usize, 5, 17, 33];
            // One shared physical pool holding all sequences.
            let blocks_needed: usize = ctxs.iter().map(|c| c.div_ceil(bs)).sum();
            let mut pool = KvPool::new(1, blocks_needed + 1, bs, HIDDEN);
            let mut tables: Vec<Vec<usize>> = Vec::new();
            let mut next_block = 0;
            for (si, &ctx) in ctxs.iter().enumerate() {
                let nb = ctx.div_ceil(bs);
                let table: Vec<usize> = (next_block..next_block + nb).collect();
                next_block += nb;
                let k = fill(100 + si as u64, ctx * HIDDEN);
                let v = fill(200 + si as u64, ctx * HIDDEN);
                for t in 0..ctx {
                    pool.write(
                        0,
                        table[t / bs],
                        t % bs,
                        &k[t * HIDDEN..(t + 1) * HIDDEN],
                        &v[t * HIDDEN..(t + 1) * HIDDEN],
                    );
                }
                tables.push(table);
            }
            let q = fill(300, ctxs.len() * HIDDEN);
            let seqs: Vec<DecodeSeq<'_>> = ctxs
                .iter()
                .zip(&tables)
                .map(|(&context_len, table)| DecodeSeq {
                    block_table: table,
                    context_len,
                })
                .collect();
            let mut batched = vec![0.0; ctxs.len() * HIDDEN];
            paged_attention_decode_batch(&q, &pool, 0, &seqs, H, HD, &workers, &mut batched);
            for (si, s) in seqs.iter().enumerate() {
                let mut solo = vec![0.0; HIDDEN];
                paged_attention_decode(
                    &q[si * HIDDEN..(si + 1) * HIDDEN],
                    &pool,
                    0,
                    s.block_table,
                    s.context_len,
                    H,
                    HD,
                    &mut solo,
                );
                assert_eq!(
                    &batched[si * HIDDEN..(si + 1) * HIDDEN],
                    &solo[..],
                    "bs={bs} seq={si}: batched row must be bit-identical to solo"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "block table")]
    fn short_block_table_panics() {
        let pool = KvPool::new(1, 2, 4, HIDDEN);
        let q = vec![0.0; HIDDEN];
        let mut out = vec![0.0; HIDDEN];
        paged_attention_decode(&q, &pool, 0, &[0], 9, H, HD, &mut out);
    }
}
