//! Typed error taxonomy for the vLLM core.
//!
//! Every failure carries an [`ErrorKind`] classifying *who* can fix it and a
//! retryability verdict so callers (replica loops, routers, frontends) can
//! decide mechanically whether to retry, re-route, or surface the error:
//!
//! * [`ErrorKind::Resource`] — a pool ran dry (GPU/CPU blocks). Transient:
//!   capacity frees as requests finish, so retrying is sound.
//! * [`ErrorKind::Request`] — the request itself is at fault (bad
//!   parameters, too large, past its deadline). Retrying the same request
//!   cannot help.
//! * [`ErrorKind::Internal`] — accounting bugs and executor failures.
//!   Not retryable against the same engine.
//! * [`ErrorKind::Unavailable`] — the serving component cannot take the
//!   work right now (admission queue full, replica dead or draining).
//!   Retryable, optionally after a hinted delay.
//! * [`ErrorKind::Protocol`] — the two ends of a wire connection disagree
//!   (unknown verb, malformed frame, version mismatch, corrupt KV-handoff
//!   payload). Not retryable: resending the same bytes cannot help.
//!
//! The frontend serializes errors as `ERR\t<kind>\t<retryable>\t<msg>` using
//! [`ErrorKind::wire_name`] and [`VllmError::is_retryable`].

use std::fmt;

/// Coarse classification of a [`VllmError`], stable across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A memory pool is exhausted; capacity returns as work finishes.
    Resource,
    /// The request is invalid or can never be served as stated.
    Request,
    /// An invariant was violated (bug) or the executor failed.
    Internal,
    /// The serving component is temporarily not accepting work.
    Unavailable,
    /// The wire-protocol peers disagree (unknown verb, bad frame, version
    /// mismatch, corrupt handoff payload).
    Protocol,
}

impl ErrorKind {
    /// The lowercase name used in the `ERR\t<kind>\t...` wire format.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Resource => "resource",
            Self::Request => "request",
            Self::Internal => "internal",
            Self::Unavailable => "unavailable",
            Self::Protocol => "protocol",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Errors produced by KV-cache management, scheduling, and the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum VllmError {
    /// The GPU block pool has no free block left.
    OutOfGpuBlocks,
    /// The CPU (swap) block pool has no free block left.
    OutOfCpuBlocks,
    /// A block id was used that is not part of the pool.
    InvalidBlock(usize),
    /// A block was freed (or dereferenced) more times than it was allocated.
    DoubleFree(usize),
    /// A sequence id was not found in a block table or queue.
    UnknownSequence(u64),
    /// A request id was not found in the engine.
    UnknownRequest(String),
    /// A request could not be admitted (e.g. prompt longer than the whole pool).
    RequestTooLarge {
        /// Request identifier.
        request_id: String,
        /// Number of blocks the prompt alone requires.
        required_blocks: usize,
        /// Total number of blocks in the GPU pool.
        total_blocks: usize,
    },
    /// Configuration values are inconsistent.
    InvalidConfig(String),
    /// A request's fields are malformed (builder validation, wire parsing).
    InvalidRequest(String),
    /// A request's deadline expired before it finished; it was cancelled.
    DeadlineExceeded {
        /// Request identifier.
        request_id: String,
        /// How far past the deadline the cancellation happened, in seconds.
        missed_by: f64,
    },
    /// Admission refused because a bounded queue is full (backpressure).
    Rejected {
        /// Suggested client back-off before retrying, in seconds.
        retry_after: f64,
    },
    /// The engine/replica is not serving (dead, draining, or restarting).
    Unavailable(String),
    /// The model executor failed.
    Executor(String),
    /// A wire-protocol violation: unknown verb, malformed frame, protocol
    /// version mismatch, or a corrupt/truncated KV-handoff payload.
    Protocol(String),
}

impl VllmError {
    /// The taxonomy bucket this error falls into.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        match self {
            Self::OutOfGpuBlocks | Self::OutOfCpuBlocks => ErrorKind::Resource,
            Self::UnknownRequest(_)
            | Self::RequestTooLarge { .. }
            | Self::InvalidConfig(_)
            | Self::InvalidRequest(_)
            | Self::DeadlineExceeded { .. } => ErrorKind::Request,
            Self::InvalidBlock(_)
            | Self::DoubleFree(_)
            | Self::UnknownSequence(_)
            | Self::Executor(_) => ErrorKind::Internal,
            Self::Rejected { .. } | Self::Unavailable(_) => ErrorKind::Unavailable,
            Self::Protocol(_) => ErrorKind::Protocol,
        }
    }

    /// Whether retrying the same request (possibly elsewhere, possibly after
    /// [`retry_after`](Self::retry_after)) can succeed.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self.kind() {
            ErrorKind::Resource | ErrorKind::Unavailable => true,
            ErrorKind::Request | ErrorKind::Internal | ErrorKind::Protocol => false,
        }
    }

    /// Suggested back-off in seconds before retrying, when the error carries
    /// one (backpressure rejections do; other retryable errors leave the
    /// schedule to the caller).
    #[must_use]
    pub fn retry_after(&self) -> Option<f64> {
        match self {
            Self::Rejected { retry_after } => Some(*retry_after),
            _ => None,
        }
    }

    /// Serializes the error as the frontend's machine-parseable line body:
    /// `<kind>\t<retryable>\t<message>` (the caller prepends `ERR\t`).
    #[must_use]
    pub fn wire_body(&self) -> String {
        format!(
            "{}\t{}\t{}",
            self.kind().wire_name(),
            self.is_retryable(),
            self
        )
    }
}

impl fmt::Display for VllmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfGpuBlocks => write!(f, "out of free GPU KV blocks"),
            Self::OutOfCpuBlocks => write!(f, "out of free CPU (swap) KV blocks"),
            Self::InvalidBlock(id) => write!(f, "invalid physical block id {id}"),
            Self::DoubleFree(id) => write!(f, "double free of physical block id {id}"),
            Self::UnknownSequence(id) => write!(f, "unknown sequence id {id}"),
            Self::UnknownRequest(id) => write!(f, "unknown request id {id:?}"),
            Self::RequestTooLarge {
                request_id,
                required_blocks,
                total_blocks,
            } => write!(
                f,
                "request {request_id:?} needs {required_blocks} blocks but the pool only has {total_blocks}"
            ),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Self::DeadlineExceeded {
                request_id,
                missed_by,
            } => write!(
                f,
                "request {request_id:?} cancelled {missed_by:.3}s past its deadline"
            ),
            Self::Rejected { retry_after } => write!(
                f,
                "admission queue full; retry after {retry_after:.3}s"
            ),
            Self::Unavailable(msg) => write!(f, "replica unavailable: {msg}"),
            Self::Executor(msg) => write!(f, "model executor error: {msg}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for VllmError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, VllmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_retryability() {
        assert_eq!(VllmError::OutOfGpuBlocks.kind(), ErrorKind::Resource);
        assert!(VllmError::OutOfGpuBlocks.is_retryable());
        assert_eq!(VllmError::OutOfCpuBlocks.kind(), ErrorKind::Resource);

        let req = VllmError::InvalidRequest("bad".into());
        assert_eq!(req.kind(), ErrorKind::Request);
        assert!(!req.is_retryable());
        assert!(!VllmError::DeadlineExceeded {
            request_id: "r".into(),
            missed_by: 0.5
        }
        .is_retryable());

        assert_eq!(VllmError::DoubleFree(3).kind(), ErrorKind::Internal);
        assert!(!VllmError::Executor("boom".into()).is_retryable());

        let rej = VllmError::Rejected { retry_after: 0.25 };
        assert_eq!(rej.kind(), ErrorKind::Unavailable);
        assert!(rej.is_retryable());
        assert_eq!(rej.retry_after(), Some(0.25));
        assert!(VllmError::Unavailable("draining".into()).is_retryable());
        assert_eq!(VllmError::Unavailable("x".into()).retry_after(), None);

        let proto = VllmError::Protocol("unknown verb FOO".into());
        assert_eq!(proto.kind(), ErrorKind::Protocol);
        assert_eq!(proto.kind().wire_name(), "protocol");
        assert!(!proto.is_retryable());
    }

    #[test]
    fn wire_body_is_machine_parseable() {
        let body = VllmError::Rejected { retry_after: 0.5 }.wire_body();
        let mut parts = body.splitn(3, '\t');
        assert_eq!(parts.next(), Some("unavailable"));
        assert_eq!(parts.next(), Some("true"));
        assert!(parts.next().unwrap().contains("retry after"));
    }
}
