//! Error types for the vLLM core.

use std::fmt;

/// Errors produced by KV-cache management, scheduling, and the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VllmError {
    /// The GPU block pool has no free block left.
    OutOfGpuBlocks,
    /// The CPU (swap) block pool has no free block left.
    OutOfCpuBlocks,
    /// A block id was used that is not part of the pool.
    InvalidBlock(usize),
    /// A block was freed (or dereferenced) more times than it was allocated.
    DoubleFree(usize),
    /// A sequence id was not found in a block table or queue.
    UnknownSequence(u64),
    /// A request id was not found in the engine.
    UnknownRequest(String),
    /// A request could not be admitted (e.g. prompt longer than the whole pool).
    RequestTooLarge {
        /// Request identifier.
        request_id: String,
        /// Number of blocks the prompt alone requires.
        required_blocks: usize,
        /// Total number of blocks in the GPU pool.
        total_blocks: usize,
    },
    /// Configuration values are inconsistent.
    InvalidConfig(String),
    /// The model executor failed.
    Executor(String),
}

impl fmt::Display for VllmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfGpuBlocks => write!(f, "out of free GPU KV blocks"),
            Self::OutOfCpuBlocks => write!(f, "out of free CPU (swap) KV blocks"),
            Self::InvalidBlock(id) => write!(f, "invalid physical block id {id}"),
            Self::DoubleFree(id) => write!(f, "double free of physical block id {id}"),
            Self::UnknownSequence(id) => write!(f, "unknown sequence id {id}"),
            Self::UnknownRequest(id) => write!(f, "unknown request id {id:?}"),
            Self::RequestTooLarge {
                request_id,
                required_blocks,
                total_blocks,
            } => write!(
                f,
                "request {request_id:?} needs {required_blocks} blocks but the pool only has {total_blocks}"
            ),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Executor(msg) => write!(f, "model executor error: {msg}"),
        }
    }
}

impl std::error::Error for VllmError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, VllmError>;
