//! Shared-prefix cache (§4.4 "shared prefix", Fig. 10).
//!
//! Service providers register long system prompts once; the KV cache of a
//! registered prefix is computed ahead of time and its physical blocks are
//! pinned. Requests whose prompt starts with a registered prefix map their
//! leading logical blocks onto the pinned blocks (last partial block
//! copy-on-write) and skip the prefix's prefill computation.

use crate::block::PhysicalBlockId;
use crate::sampling::TokenId;

/// Identifier of a registered prefix.
pub type PrefixId = usize;

/// Hashes the leading block-aligned chunks of `tokens`: element `k` is a
/// 64-bit FNV hash of `tokens[..(k + 1) * block_size]`. Cluster routers
/// compare a prompt's chunk hashes against a replica's prefix coverage to
/// find the longest block-aligned prefix whose KV cache is already resident
/// (the fleet-level analog of §4.4 block sharing).
#[must_use]
pub fn chunk_hashes(tokens: &[TokenId], block_size: usize) -> Vec<u64> {
    if block_size == 0 {
        return Vec::new();
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hashes = Vec::with_capacity(tokens.len() / block_size);
    for (i, &t) in tokens.iter().enumerate() {
        for b in t.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if (i + 1) % block_size == 0 {
            hashes.push(h);
        }
    }
    hashes
}

/// A registered shared prefix.
#[derive(Debug, Clone)]
pub struct Prefix {
    /// Prefix tokens.
    pub tokens: Vec<TokenId>,
    /// Pinned physical GPU blocks holding the prefix KV cache.
    pub blocks: Vec<PhysicalBlockId>,
    /// Whether the prefix KV cache has been computed (warm-up done).
    pub computed: bool,
}

impl Prefix {
    /// Prefix length in tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the prefix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Registry of pinned prefixes.
#[derive(Debug, Default)]
pub struct PrefixPool {
    prefixes: Vec<Prefix>,
    /// Bumped on every insert/remove so observers (replica load publishers)
    /// can cheaply detect coverage changes.
    version: u64,
}

impl PrefixPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a prefix whose blocks have been pinned by the block
    /// manager, returning its id.
    pub fn insert(&mut self, tokens: Vec<TokenId>, blocks: Vec<PhysicalBlockId>) -> PrefixId {
        self.prefixes.push(Prefix {
            tokens,
            blocks,
            computed: false,
        });
        self.version += 1;
        self.prefixes.len() - 1
    }

    /// Marks a prefix's KV cache as computed.
    pub fn mark_computed(&mut self, id: PrefixId) {
        if let Some(p) = self.prefixes.get_mut(id) {
            p.computed = true;
            self.version += 1;
        }
    }

    /// Monotone counter bumped whenever the set of usable prefixes changes
    /// (insert, mark-computed, remove). Lets a publisher skip rehashing
    /// coverage when nothing changed.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The pool's prefix coverage: the sorted, deduplicated union of
    /// [`chunk_hashes`] over every computed prefix. A prompt whose `k`-th
    /// chunk hash appears here has its first `k` blocks of KV cache resident
    /// in this pool.
    #[must_use]
    pub fn coverage_hashes(&self, block_size: usize) -> Vec<u64> {
        let mut hashes: Vec<u64> = self
            .prefixes
            .iter()
            .filter(|p| p.computed)
            .flat_map(|p| chunk_hashes(&p.tokens, block_size))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes
    }

    /// Looks up a prefix.
    #[must_use]
    pub fn get(&self, id: PrefixId) -> Option<&Prefix> {
        self.prefixes.get(id)
    }

    /// Removes a prefix from the pool, returning it so its blocks can be
    /// released. The slot is tombstoned (never reused) so other prefix ids
    /// stay valid.
    pub fn remove(&mut self, id: PrefixId) -> Option<Prefix> {
        let p = self.prefixes.get_mut(id)?;
        if p.tokens.is_empty() {
            return None;
        }
        let taken = Prefix {
            tokens: std::mem::take(&mut p.tokens),
            blocks: std::mem::take(&mut p.blocks),
            computed: p.computed,
        };
        p.computed = false;
        self.version += 1;
        Some(taken)
    }

    /// Rewrites pinned block ids after a pool compaction. `mapping` is the
    /// old→new physical id map returned by the block manager's compactor;
    /// blocks not in the map stay put. Bumps the version so coverage
    /// publishers notice even though the token coverage is unchanged.
    pub fn remap_blocks(
        &mut self,
        mapping: &std::collections::HashMap<PhysicalBlockId, PhysicalBlockId>,
    ) {
        if mapping.is_empty() {
            return;
        }
        let mut touched = false;
        for p in &mut self.prefixes {
            for b in &mut p.blocks {
                if let Some(&nb) = mapping.get(b) {
                    *b = nb;
                    touched = true;
                }
            }
        }
        if touched {
            self.version += 1;
        }
    }

    /// Finds the longest registered, computed prefix that `prompt` starts
    /// with (providers may register nested prefixes, e.g. 1-shot and 5-shot
    /// variants that share the instruction).
    #[must_use]
    pub fn match_prompt(&self, prompt: &[TokenId]) -> Option<PrefixId> {
        self.prefixes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.computed && prompt.len() > p.len() && prompt.starts_with(&p.tokens))
            .max_by_key(|(_, p)| p.len())
            .map(|(id, _)| id)
    }

    /// Number of registered prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether no prefix is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_requires_computed() {
        let mut pool = PrefixPool::new();
        let id = pool.insert(vec![1, 2, 3], vec![0]);
        assert_eq!(pool.match_prompt(&[1, 2, 3, 4]), None);
        pool.mark_computed(id);
        assert_eq!(pool.match_prompt(&[1, 2, 3, 4]), Some(id));
    }

    #[test]
    fn match_prefers_longest() {
        let mut pool = PrefixPool::new();
        let short = pool.insert(vec![1, 2], vec![0]);
        let long = pool.insert(vec![1, 2, 3, 4], vec![1, 2]);
        pool.mark_computed(short);
        pool.mark_computed(long);
        assert_eq!(pool.match_prompt(&[1, 2, 3, 4, 5]), Some(long));
        assert_eq!(pool.match_prompt(&[1, 2, 9]), Some(short));
    }

    #[test]
    fn prompt_must_extend_prefix() {
        let mut pool = PrefixPool::new();
        let id = pool.insert(vec![1, 2, 3], vec![0]);
        pool.mark_computed(id);
        // A prompt equal to the prefix has no task input; no match.
        assert_eq!(pool.match_prompt(&[1, 2, 3]), None);
        assert_eq!(pool.match_prompt(&[2, 3, 4]), None);
    }
}
