//! Physical KV blocks and the reference-counted block allocator (§4.2, §4.4).

use serde::{Deserialize, Serialize};

use crate::error::{Result, VllmError};

/// Index of a physical KV block within a device pool.
pub type PhysicalBlockId = usize;

/// Which pool a physical block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// GPU high-bandwidth memory (active sequences).
    Gpu,
    /// CPU RAM swap space (§4.5).
    Cpu,
}

/// A block-table entry: a physical block plus residency information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalBlock {
    /// Index within the device pool.
    pub id: PhysicalBlockId,
    /// Pool the block currently resides in.
    pub device: Device,
}

impl PhysicalBlock {
    /// Creates a GPU-resident block reference.
    #[must_use]
    pub fn gpu(id: PhysicalBlockId) -> Self {
        Self {
            id,
            device: Device::Gpu,
        }
    }

    /// Creates a CPU-resident block reference.
    #[must_use]
    pub fn cpu(id: PhysicalBlockId) -> Self {
        Self {
            id,
            device: Device::Cpu,
        }
    }
}

/// Reference-counted free-list allocator over a fixed pool of KV blocks.
///
/// Every block has the same size, so there is no external fragmentation by
/// construction (§4.1). Reference counts implement block sharing for
/// parallel sampling, beam search, and shared prefixes; copy-on-write
/// triggers when a sequence writes to a block with `ref_count > 1` (§4.4).
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    device: Device,
    num_blocks: usize,
    /// LIFO free list; freeing then allocating reuses the hottest block.
    free_list: Vec<PhysicalBlockId>,
    ref_counts: Vec<u32>,
}

impl BlockAllocator {
    /// Creates an allocator managing `num_blocks` blocks on `device`.
    #[must_use]
    pub fn new(device: Device, num_blocks: usize) -> Self {
        Self {
            device,
            num_blocks,
            // Reverse order so block 0 is handed out first (LIFO pop).
            free_list: (0..num_blocks).rev().collect(),
            ref_counts: vec![0; num_blocks],
        }
    }

    /// Device this allocator manages.
    #[must_use]
    pub fn device(&self) -> Device {
        self.device
    }

    /// Total number of blocks in the pool.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of currently free blocks.
    #[must_use]
    pub fn num_free(&self) -> usize {
        self.free_list.len()
    }

    /// Number of currently allocated blocks.
    #[must_use]
    pub fn num_allocated(&self) -> usize {
        self.num_blocks - self.free_list.len()
    }

    /// Allocates a block with an initial reference count of 1.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] / [`VllmError::OutOfCpuBlocks`]
    /// when the pool is exhausted.
    pub fn allocate(&mut self) -> Result<PhysicalBlockId> {
        let id = self.free_list.pop().ok_or(match self.device {
            Device::Gpu => VllmError::OutOfGpuBlocks,
            Device::Cpu => VllmError::OutOfCpuBlocks,
        })?;
        debug_assert_eq!(self.ref_counts[id], 0);
        self.ref_counts[id] = 1;
        Ok(id)
    }

    /// Increments the reference count of an allocated block (sharing).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidBlock`] for out-of-range ids and
    /// [`VllmError::DoubleFree`] if the block is not currently allocated.
    pub fn incr_ref(&mut self, id: PhysicalBlockId) -> Result<()> {
        self.check(id)?;
        if self.ref_counts[id] == 0 {
            return Err(VllmError::DoubleFree(id));
        }
        self.ref_counts[id] += 1;
        Ok(())
    }

    /// Decrements the reference count, returning the block to the free list
    /// when it reaches zero. Returns the new reference count.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidBlock`] for out-of-range ids and
    /// [`VllmError::DoubleFree`] if the block is already free.
    pub fn free(&mut self, id: PhysicalBlockId) -> Result<u32> {
        self.check(id)?;
        if self.ref_counts[id] == 0 {
            return Err(VllmError::DoubleFree(id));
        }
        self.ref_counts[id] -= 1;
        if self.ref_counts[id] == 0 {
            self.free_list.push(id);
        }
        Ok(self.ref_counts[id])
    }

    /// Current reference count of a block.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidBlock`] for out-of-range ids.
    pub fn ref_count(&self, id: PhysicalBlockId) -> Result<u32> {
        self.check(id)?;
        Ok(self.ref_counts[id])
    }

    /// Sum of all reference counts (number of block-table entries pointing
    /// into this pool); used by sharing metrics (Fig. 15).
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.ref_counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Grows the pool to `new_total` blocks (elastic inflate). New ids are
    /// appended above the current bound and handed out lowest-first, after
    /// any already-free blocks.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if `new_total` is smaller than
    /// the current pool.
    pub fn grow(&mut self, new_total: usize) -> Result<()> {
        if new_total < self.num_blocks {
            return Err(VllmError::InvalidConfig(format!(
                "grow to {new_total} blocks below current {}",
                self.num_blocks
            )));
        }
        // Reverse order so the lowest new id pops first once the existing
        // free list drains.
        let fresh: Vec<PhysicalBlockId> = (self.num_blocks..new_total).rev().collect();
        self.free_list.splice(0..0, fresh);
        self.ref_counts.resize(new_total, 0);
        self.num_blocks = new_total;
        Ok(())
    }

    /// Shrinks the pool to `new_total` blocks (elastic deflate). Every id at
    /// or above the new bound must be free — compact first.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if a live block sits above the
    /// new bound.
    pub fn shrink(&mut self, new_total: usize) -> Result<()> {
        if let Some(id) = (new_total..self.num_blocks).find(|&id| self.ref_counts[id] > 0) {
            return Err(VllmError::InvalidConfig(format!(
                "cannot shrink to {new_total} blocks: block {id} is live"
            )));
        }
        self.free_list.retain(|&id| id < new_total);
        self.ref_counts.truncate(new_total);
        self.num_blocks = new_total;
        Ok(())
    }

    /// Live block ids at or above `bound`, ascending (the compactor's
    /// migration work list).
    #[must_use]
    pub fn live_at_or_above(&self, bound: usize) -> Vec<PhysicalBlockId> {
        (bound.min(self.num_blocks)..self.num_blocks)
            .filter(|&id| self.ref_counts[id] > 0)
            .collect()
    }

    /// Lowest free block id strictly below `bound`, if any (the compactor's
    /// migration target).
    #[must_use]
    pub fn lowest_free_below(&self, bound: usize) -> Option<PhysicalBlockId> {
        self.free_list
            .iter()
            .copied()
            .filter(|&id| id < bound)
            .min()
    }

    /// Highest live block id, if any block is allocated.
    #[must_use]
    pub fn highest_live(&self) -> Option<PhysicalBlockId> {
        (0..self.num_blocks)
            .rev()
            .find(|&id| self.ref_counts[id] > 0)
    }

    /// Moves a live block's identity from `src` to the free block `dst`:
    /// `dst` takes over `src`'s whole reference count and `src` becomes
    /// free. The data move is the caller's to journal.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidBlock`] for out-of-range ids and
    /// [`VllmError::DoubleFree`] if `src` is free or `dst` is live.
    pub fn relocate(&mut self, src: PhysicalBlockId, dst: PhysicalBlockId) -> Result<()> {
        self.check(src)?;
        self.check(dst)?;
        if self.ref_counts[src] == 0 {
            return Err(VllmError::DoubleFree(src));
        }
        if self.ref_counts[dst] != 0 {
            return Err(VllmError::InvalidBlock(dst));
        }
        self.ref_counts[dst] = self.ref_counts[src];
        self.ref_counts[src] = 0;
        self.free_list.retain(|&id| id != dst);
        self.free_list.push(src);
        Ok(())
    }

    fn check(&self, id: PhysicalBlockId) -> Result<()> {
        if id >= self.num_blocks {
            return Err(VllmError::InvalidBlock(id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_exhausted() {
        let mut a = BlockAllocator::new(Device::Gpu, 3);
        assert_eq!(a.allocate().unwrap(), 0);
        assert_eq!(a.allocate().unwrap(), 1);
        assert_eq!(a.allocate().unwrap(), 2);
        assert_eq!(a.allocate(), Err(VllmError::OutOfGpuBlocks));
        assert_eq!(a.num_free(), 0);
        assert_eq!(a.num_allocated(), 3);
    }

    #[test]
    fn cpu_pool_reports_cpu_exhaustion() {
        let mut a = BlockAllocator::new(Device::Cpu, 1);
        a.allocate().unwrap();
        assert_eq!(a.allocate(), Err(VllmError::OutOfCpuBlocks));
    }

    #[test]
    fn free_returns_block_to_pool() {
        let mut a = BlockAllocator::new(Device::Gpu, 2);
        let b = a.allocate().unwrap();
        assert_eq!(a.free(b).unwrap(), 0);
        assert_eq!(a.num_free(), 2);
        // LIFO: the freed block is reused first.
        assert_eq!(a.allocate().unwrap(), b);
    }

    #[test]
    fn sharing_via_ref_counts() {
        let mut a = BlockAllocator::new(Device::Gpu, 2);
        let b = a.allocate().unwrap();
        a.incr_ref(b).unwrap();
        assert_eq!(a.ref_count(b).unwrap(), 2);
        assert_eq!(a.free(b).unwrap(), 1);
        // Still allocated: one sharer remains.
        assert_eq!(a.num_allocated(), 1);
        assert_eq!(a.free(b).unwrap(), 0);
        assert_eq!(a.num_allocated(), 0);
    }

    #[test]
    fn double_free_detected() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        let b = a.allocate().unwrap();
        a.free(b).unwrap();
        assert_eq!(a.free(b), Err(VllmError::DoubleFree(b)));
    }

    #[test]
    fn incr_ref_on_free_block_rejected() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        assert_eq!(a.incr_ref(0), Err(VllmError::DoubleFree(0)));
    }

    #[test]
    fn invalid_ids_rejected() {
        let mut a = BlockAllocator::new(Device::Gpu, 1);
        assert_eq!(a.free(5), Err(VllmError::InvalidBlock(5)));
        assert_eq!(a.incr_ref(5), Err(VllmError::InvalidBlock(5)));
        assert!(a.ref_count(5).is_err());
    }

    #[test]
    fn grow_appends_low_ids_first_among_new_blocks() {
        let mut a = BlockAllocator::new(Device::Gpu, 2);
        let b0 = a.allocate().unwrap();
        let b1 = a.allocate().unwrap();
        a.grow(4).unwrap();
        assert_eq!(a.num_blocks(), 4);
        assert_eq!(a.num_free(), 2);
        // Fresh ids hand out lowest-first.
        assert_eq!(a.allocate().unwrap(), 2);
        assert_eq!(a.allocate().unwrap(), 3);
        assert!(a.grow(3).is_err(), "grow cannot shrink");
        for b in [b0, b1, 2, 3] {
            a.free(b).unwrap();
        }
    }

    #[test]
    fn shrink_requires_vacated_tail() {
        let mut a = BlockAllocator::new(Device::Gpu, 4);
        let b0 = a.allocate().unwrap();
        let b1 = a.allocate().unwrap();
        assert!(a.shrink(1).is_err(), "block 1 is live above the bound");
        a.free(b1).unwrap();
        a.shrink(1).unwrap();
        assert_eq!(a.num_blocks(), 1);
        assert_eq!(a.num_free(), 0);
        assert_eq!(a.allocate(), Err(VllmError::OutOfGpuBlocks));
        a.free(b0).unwrap();
        assert_eq!(a.num_free(), 1);
    }

    #[test]
    fn relocate_moves_refcount_and_frees_source() {
        let mut a = BlockAllocator::new(Device::Gpu, 4);
        let b0 = a.allocate().unwrap();
        let _b1 = a.allocate().unwrap();
        let b2 = a.allocate().unwrap();
        a.incr_ref(b2).unwrap();
        a.free(b0).unwrap(); // Hole at 0.
        assert_eq!(a.live_at_or_above(2), vec![2]);
        assert_eq!(a.lowest_free_below(2), Some(0));
        assert_eq!(a.highest_live(), Some(2));
        a.relocate(b2, 0).unwrap();
        assert_eq!(a.ref_count(0).unwrap(), 2);
        assert_eq!(a.ref_count(2).unwrap(), 0);
        assert_eq!(a.highest_live(), Some(1));
        // Relocating a free source or onto a live target is rejected.
        assert!(a.relocate(2, 3).is_err());
        assert!(a.relocate(0, 1).is_err());
    }

    #[test]
    fn total_refs_counts_sharers() {
        let mut a = BlockAllocator::new(Device::Gpu, 4);
        let b0 = a.allocate().unwrap();
        let _b1 = a.allocate().unwrap();
        a.incr_ref(b0).unwrap();
        a.incr_ref(b0).unwrap();
        assert_eq!(a.total_refs(), 4);
    }
}
