//! Sequences and sequence groups (§4.5, §5.2).
//!
//! A [`Sequence`] is one stream of tokens (prompt + generated output). A
//! [`SequenceGroup`] is the set of sequences spawned by one request — e.g.
//! the `n` samples of parallel sampling or the `k` candidates of beam search
//! — which are gang-scheduled and preempted together (§4.5).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vllm_telemetry::TraceContext;

use crate::sampling::{SamplingParams, TokenId};

/// Globally unique sequence identifier.
pub type SeqId = u64;

/// Lifecycle state of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequenceStatus {
    /// Not yet admitted (or preempted by recomputation).
    Waiting,
    /// Currently resident in GPU KV memory and being decoded.
    Running,
    /// Preempted; its KV blocks live in the CPU swap pool.
    Swapped,
    /// Finished because the end-of-sequence token was emitted.
    FinishedStopped,
    /// Finished because the per-request `max_tokens` or the model context
    /// length was reached.
    FinishedLengthCapped,
    /// Dropped by beam search (no longer among the top-k candidates).
    FinishedDropped,
    /// Aborted by the client.
    FinishedAborted,
    /// Cancelled because the request's deadline passed before it finished.
    FinishedDeadline,
}

impl SequenceStatus {
    /// Whether the sequence has reached a terminal state.
    #[must_use]
    pub fn is_finished(self) -> bool {
        matches!(
            self,
            Self::FinishedStopped
                | Self::FinishedLengthCapped
                | Self::FinishedDropped
                | Self::FinishedAborted
                | Self::FinishedDeadline
        )
    }
}

/// Token data of a sequence.
///
/// `prompt_len` marks the boundary between prompt and generated tokens. On
/// recomputation-based preemption the generated tokens are merged into the
/// prompt (§4.5: "the tokens generated at decoding can be concatenated with
/// the original user prompt as a new prompt").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceData {
    tokens: Vec<TokenId>,
    prompt_len: usize,
    /// Length of the original user prompt, before any recompute merging.
    original_prompt_len: usize,
    /// Number of tokens whose KV cache has been computed and stored.
    num_computed_tokens: usize,
}

impl SequenceData {
    /// Creates sequence data from a prompt.
    #[must_use]
    pub fn new(prompt: Vec<TokenId>) -> Self {
        let prompt_len = prompt.len();
        Self {
            tokens: prompt,
            prompt_len,
            original_prompt_len: prompt_len,
            num_computed_tokens: 0,
        }
    }

    /// All tokens (prompt followed by output).
    #[must_use]
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Total number of tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Current prompt length (may include merged output after recompute).
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// Length of the original user prompt.
    #[must_use]
    pub fn original_prompt_len(&self) -> usize {
        self.original_prompt_len
    }

    /// The prompt tokens.
    #[must_use]
    pub fn prompt_tokens(&self) -> &[TokenId] {
        &self.tokens[..self.prompt_len]
    }

    /// The generated tokens (relative to the current prompt boundary).
    #[must_use]
    pub fn output_tokens(&self) -> &[TokenId] {
        &self.tokens[self.prompt_len..]
    }

    /// Number of generated tokens relative to the *original* prompt; this is
    /// the output length used for normalized-latency metrics even after
    /// recompute merging.
    #[must_use]
    pub fn num_output_tokens(&self) -> usize {
        self.tokens.len() - self.original_prompt_len
    }

    /// Appends one generated token.
    pub fn append_token(&mut self, token: TokenId) {
        self.tokens.push(token);
    }

    /// The most recent token (input for the next generation iteration).
    #[must_use]
    pub fn last_token(&self) -> Option<TokenId> {
        self.tokens.last().copied()
    }

    /// Number of tokens whose KV entries are stored in the cache.
    #[must_use]
    pub fn num_computed_tokens(&self) -> usize {
        self.num_computed_tokens
    }

    /// Records that the KV cache now covers `n` tokens.
    pub fn set_num_computed_tokens(&mut self, n: usize) {
        debug_assert!(n <= self.tokens.len());
        self.num_computed_tokens = n;
    }

    /// Whether prompt rows remain uncomputed: the sequence is mid-prefill
    /// (under chunked prefill, its chunk cursor is
    /// [`num_computed_tokens`](Self::num_computed_tokens)).
    #[must_use]
    pub fn in_prefill(&self) -> bool {
        self.num_computed_tokens < self.prompt_len
    }

    /// Prompt rows still to compute before the sequence can decode.
    #[must_use]
    pub fn remaining_prompt_tokens(&self) -> usize {
        self.prompt_len.saturating_sub(self.num_computed_tokens)
    }

    /// Merges generated tokens into the prompt and resets the computed-token
    /// counter, preparing the sequence for recomputation (§4.5).
    pub fn reset_for_recompute(&mut self) {
        self.prompt_len = self.tokens.len();
        self.num_computed_tokens = 0;
    }
}

/// One stream of tokens plus its decode bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Unique id.
    pub seq_id: SeqId,
    /// Token data.
    pub data: SequenceData,
    /// Lifecycle status.
    pub status: SequenceStatus,
    /// Cumulative log-probability of the generated tokens (beam search).
    pub cumulative_logprob: f64,
    /// KV block size, cached here to derive logical block counts.
    block_size: usize,
}

impl Sequence {
    /// Creates a new waiting sequence from a prompt.
    #[must_use]
    pub fn new(seq_id: SeqId, prompt: Vec<TokenId>, block_size: usize) -> Self {
        Self {
            seq_id,
            data: SequenceData::new(prompt),
            status: SequenceStatus::Waiting,
            cumulative_logprob: 0.0,
            block_size,
        }
    }

    /// Total token count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of logical KV blocks needed for the current tokens.
    #[must_use]
    pub fn num_logical_blocks(&self) -> usize {
        self.data.len().div_ceil(self.block_size)
    }

    /// Number of KV slots used in the last logical block (0 means the last
    /// block is exactly full).
    #[must_use]
    pub fn last_block_fill(&self) -> usize {
        self.data.len() % self.block_size
    }

    /// Whether the sequence is in a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.status.is_finished()
    }

    /// KV block size this sequence was created with.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Creates a child sequence that shares this sequence's token history
    /// (the `fork` primitive of §5.2). Block-table sharing is handled by the
    /// block manager; this only duplicates the token bookkeeping.
    #[must_use]
    pub fn fork(&self, child_id: SeqId) -> Self {
        let mut child = self.clone();
        child.seq_id = child_id;
        child
    }
}

/// A group of sequences originating from one request, gang-scheduled as a
/// unit (§4.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceGroup {
    /// Client-visible request id.
    pub request_id: String,
    /// Member sequences keyed by id. Iteration uses sorted order for
    /// determinism.
    seqs: HashMap<SeqId, Sequence>,
    /// Sampling parameters of the request.
    pub sampling_params: SamplingParams,
    /// Arrival time in seconds (drives FCFS ordering).
    pub arrival_time: f64,
    /// Time the first token was produced, for latency metrics.
    pub first_token_time: Option<f64>,
    /// Time the most recent token was produced, for inter-token latency
    /// metrics.
    pub last_token_time: Option<f64>,
    /// Number of times this group was preempted (metrics only).
    pub num_preemptions: u32,
    /// Length of the shared prefix (in tokens) this request reuses from the
    /// prefix cache, if any (§4.4 "shared prefix").
    pub cached_prefix_len: usize,
    /// Pinned physical block ids backing the cached prefix, in logical
    /// order; empty unless `cached_prefix_len > 0`.
    pub prefix_blocks: Vec<usize>,
    /// Absolute deadline in engine (virtual) time seconds; the engine
    /// cancels the group if it is unfinished when the clock passes this.
    pub deadline: Option<f64>,
    /// Scheduling priority: higher is admitted first, ties break FCFS.
    pub priority: i32,
    /// Trace context minted (or propagated) at admission; inactive
    /// (`trace_id == 0`) when the request was not sampled for tracing.
    pub trace: TraceContext,
    /// Virtual time this group was first scheduled (start of its prefill),
    /// for the `queue`/`prefill` span boundary.
    pub first_scheduled_time: Option<f64>,
}

impl SequenceGroup {
    /// Creates a group holding one initial sequence.
    ///
    /// Parallel sampling and beam search groups also start with a single
    /// sequence; the engine forks it after the prompt run (Fig. 8).
    #[must_use]
    pub fn new(
        request_id: impl Into<String>,
        seq: Sequence,
        sampling_params: SamplingParams,
        arrival_time: f64,
    ) -> Self {
        let mut seqs = HashMap::new();
        seqs.insert(seq.seq_id, seq);
        Self {
            request_id: request_id.into(),
            seqs,
            sampling_params,
            arrival_time,
            first_token_time: None,
            last_token_time: None,
            num_preemptions: 0,
            cached_prefix_len: 0,
            prefix_blocks: Vec::new(),
            deadline: None,
            priority: 0,
            trace: TraceContext::default(),
            first_scheduled_time: None,
        }
    }

    /// Returns the sequence with the given id.
    #[must_use]
    pub fn get(&self, seq_id: SeqId) -> Option<&Sequence> {
        self.seqs.get(&seq_id)
    }

    /// Returns the sequence with the given id, mutably.
    pub fn get_mut(&mut self, seq_id: SeqId) -> Option<&mut Sequence> {
        self.seqs.get_mut(&seq_id)
    }

    /// Inserts a (forked) sequence into the group.
    pub fn add(&mut self, seq: Sequence) {
        self.seqs.insert(seq.seq_id, seq);
    }

    /// Removes a sequence from the group, returning it.
    pub fn remove(&mut self, seq_id: SeqId) -> Option<Sequence> {
        self.seqs.remove(&seq_id)
    }

    /// All member sequences in ascending id order.
    #[must_use]
    pub fn seqs(&self) -> Vec<&Sequence> {
        let mut v: Vec<&Sequence> = self.seqs.values().collect();
        v.sort_by_key(|s| s.seq_id);
        v
    }

    /// Ids of member sequences in the given status, ascending.
    #[must_use]
    pub fn seq_ids_with_status(&self, status: SequenceStatus) -> Vec<SeqId> {
        let mut v: Vec<SeqId> = self
            .seqs
            .values()
            .filter(|s| s.status == status)
            .map(|s| s.seq_id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Member sequences in the given status, ascending id order.
    #[must_use]
    pub fn seqs_with_status(&self, status: SequenceStatus) -> Vec<&Sequence> {
        let mut v: Vec<&Sequence> = self.seqs.values().filter(|s| s.status == status).collect();
        v.sort_by_key(|s| s.seq_id);
        v
    }

    /// Number of unfinished sequences.
    #[must_use]
    pub fn num_unfinished(&self) -> usize {
        self.seqs.values().filter(|s| !s.is_finished()).count()
    }

    /// Number of member sequences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the group holds no sequences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Whether every member sequence is finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.seqs.values().all(Sequence::is_finished)
    }

    /// Whether the group is still in the prompt phase (no member has a
    /// computed KV cache yet).
    #[must_use]
    pub fn is_prompt_phase(&self) -> bool {
        self.seqs
            .values()
            .all(|s| s.data.num_computed_tokens() == 0)
    }

    /// Sets every unfinished sequence to `status`.
    pub fn set_status_all(&mut self, status: SequenceStatus) {
        for seq in self.seqs.values_mut() {
            if !seq.is_finished() {
                seq.status = status;
            }
        }
    }

    /// Upper bound on the number of sequences this group will ever run
    /// concurrently (used by admission control).
    #[must_use]
    pub fn max_num_seqs(&self) -> usize {
        self.sampling_params.n.max(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: SeqId, n_tokens: usize) -> Sequence {
        Sequence::new(id, (0..n_tokens as TokenId).collect(), 16)
    }

    #[test]
    fn logical_block_count_rounds_up() {
        assert_eq!(seq(0, 1).num_logical_blocks(), 1);
        assert_eq!(seq(0, 16).num_logical_blocks(), 1);
        assert_eq!(seq(0, 17).num_logical_blocks(), 2);
        assert_eq!(seq(0, 32).num_logical_blocks(), 2);
    }

    #[test]
    fn last_block_fill() {
        assert_eq!(seq(0, 16).last_block_fill(), 0);
        assert_eq!(seq(0, 17).last_block_fill(), 1);
        assert_eq!(seq(0, 31).last_block_fill(), 15);
    }

    #[test]
    fn append_and_output_tokens() {
        let mut s = seq(0, 4);
        s.data.append_token(99);
        assert_eq!(s.len(), 5);
        assert_eq!(s.data.output_tokens(), &[99]);
        assert_eq!(s.data.num_output_tokens(), 1);
        assert_eq!(s.data.last_token(), Some(99));
    }

    #[test]
    fn recompute_merges_output_into_prompt() {
        let mut s = seq(0, 4);
        s.data.append_token(7);
        s.data.append_token(8);
        s.data.set_num_computed_tokens(6);
        s.data.reset_for_recompute();
        assert_eq!(s.data.prompt_len(), 6);
        assert_eq!(s.data.original_prompt_len(), 4);
        assert_eq!(s.data.num_computed_tokens(), 0);
        assert_eq!(s.data.output_tokens(), &[] as &[TokenId]);
        // Output length for metrics still counts from the original prompt.
        assert_eq!(s.data.num_output_tokens(), 2);
    }

    #[test]
    fn fork_copies_history() {
        let mut s = seq(0, 4);
        s.data.append_token(5);
        let child = s.fork(1);
        assert_eq!(child.seq_id, 1);
        assert_eq!(child.data.tokens(), s.data.tokens());
    }

    #[test]
    fn group_status_tracking() {
        let s = seq(0, 4);
        let mut g = SequenceGroup::new("r0", s, SamplingParams::greedy(8), 0.0);
        assert!(g.is_prompt_phase());
        assert_eq!(g.num_unfinished(), 1);
        g.get_mut(0).unwrap().status = SequenceStatus::FinishedStopped;
        assert!(g.is_finished());
    }

    #[test]
    fn group_seqs_sorted_by_id() {
        let mut g = SequenceGroup::new("r0", seq(5, 4), SamplingParams::parallel(3, 8), 0.0);
        g.add(seq(2, 4));
        g.add(seq(9, 4));
        let ids: Vec<SeqId> = g.seqs().iter().map(|s| s.seq_id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn set_status_all_skips_finished() {
        let mut g = SequenceGroup::new("r0", seq(0, 4), SamplingParams::parallel(2, 8), 0.0);
        g.add(seq(1, 4));
        g.get_mut(1).unwrap().status = SequenceStatus::FinishedStopped;
        g.set_status_all(SequenceStatus::Running);
        assert_eq!(g.get(0).unwrap().status, SequenceStatus::Running);
        assert_eq!(g.get(1).unwrap().status, SequenceStatus::FinishedStopped);
    }
}
