//! The model-executor interface between the engine and a backend.
//!
//! The engine (scheduler + block manager) is backend-agnostic: the numeric
//! CPU transformer in `vllm-model` and the discrete-event cost model in
//! `vllm-sim` both implement [`ModelExecutor`]. This mirrors Fig. 4, where
//! the centralized scheduler sends per-iteration control messages (token
//! ids, positions, block tables, cache operations) to the GPU workers.

use crate::block::{Device, PhysicalBlockId};
use crate::block_manager::BlockCopy;
use crate::error::Result;
use crate::handoff::{KvBlockBytes, KvBlockInstall};
use crate::plan::StepPlan;
use crate::sampling::{DecodingMode, TokenId};
use crate::sequence::SeqId;

/// One sequence's slice of an iteration.
#[derive(Debug, Clone)]
pub struct SeqStepInput {
    /// Sequence identifier.
    pub seq_id: SeqId,
    /// Tokens to process this step: the whole prompt for a prefill, or the
    /// single newest token for a generation step.
    pub tokens: Vec<TokenId>,
    /// Position of `tokens[0]` within the sequence.
    pub first_position: usize,
    /// Number of leading tokens whose KV cache already exists (shared-prefix
    /// prefills skip recomputing these; 0 otherwise).
    pub num_cached_tokens: usize,
    /// Physical GPU block ids backing this sequence, in logical order.
    pub block_table: Vec<PhysicalBlockId>,
    /// Number of `(token, logprob)` candidates to return: 1 for greedy /
    /// single sampling, `n` for the prompt step of parallel sampling, `2k`
    /// for beam search, 0 for KV-only runs (prefix warm-up).
    pub num_candidates: usize,
    /// Decoding mode governing candidate selection.
    pub mode: DecodingMode,
    /// Seed for this sequence's sampling stream.
    pub seed: u64,
    /// Whether this item is a scheduler-budgeted prefill chunk. Chunked
    /// items must run the prefill attention path even when only one new row
    /// remains, so chunked logits stay bit-identical to an unchunked
    /// prefill (which computes every row with the same kernel).
    pub chunked: bool,
}

impl SeqStepInput {
    /// Context length after this step completes.
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.first_position + self.tokens.len()
    }

    /// Whether this item is a prompt (multi-token) run.
    #[must_use]
    pub fn is_prompt(&self) -> bool {
        self.first_position == 0
    }
}

/// One defragmentation migration: the contents of block `src` move to block
/// `dst` within the same device's pool, after which `src` is free. Recorded
/// by the block manager's compactor and replayed by executors in journal
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMove {
    /// Pool the migration happens in.
    pub device: Device,
    /// Source physical block id (live before the move, free after).
    pub src: PhysicalBlockId,
    /// Destination physical block id (free before the move, live after).
    pub dst: PhysicalBlockId,
}

/// Cache-management operations the executor must apply before computing the
/// step (§4.3: the scheduler piggybacks memory-management instructions on the
/// step's control message).
///
/// Ordering contract (what `KvCache::apply` and the sim cost model follow):
///
/// 1. pool **growth** to a larger `gpu_capacity`/`cpu_capacity`, so later
///    operations may reference newly minted block ids;
/// 2. **moves**, in journal order — the compactor only targets blocks that
///    were free when the move was recorded, and the allocator cannot re-issue
///    a destination, so replay is conflict-free;
/// 3. pool **shrinkage** to a smaller capacity (every id above the new bound
///    has been vacated by step 2);
/// 4. `swap_out`, then `swap_in`, then `copies`, as before;
/// 5. **installs** last — KV-handoff payloads written into freshly
///    allocated anchor blocks, which no earlier operation in the step can
///    reference.
#[derive(Debug, Clone, Default)]
pub struct CacheOps {
    /// CPU→GPU block transfers (swap in).
    pub swap_in: Vec<BlockCopy>,
    /// GPU→CPU block transfers (swap out).
    pub swap_out: Vec<BlockCopy>,
    /// GPU→GPU block copies (copy-on-write), batched into one kernel in the
    /// paper (§5.1 "fused block copy").
    pub copies: Vec<BlockCopy>,
    /// Defragmentation migrations (elastic pool compaction), in journal
    /// order.
    pub moves: Vec<BlockMove>,
    /// New GPU pool size in blocks, when the pool was resized this step.
    pub gpu_capacity: Option<usize>,
    /// New CPU pool size in blocks, when the pool was resized this step.
    pub cpu_capacity: Option<usize>,
    /// KV-handoff installations: serialized block contents (shipped from a
    /// prefill replica or the shared prefix tier) written into anchor
    /// blocks, applied after all other operations.
    pub installs: Vec<KvBlockInstall>,
}

impl CacheOps {
    /// Whether no operation is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.swap_in.is_empty()
            && self.swap_out.is_empty()
            && self.copies.is_empty()
            && self.moves.is_empty()
            && self.gpu_capacity.is_none()
            && self.cpu_capacity.is_none()
            && self.installs.is_empty()
    }
}

/// One sequence's output for the step.
#[derive(Debug, Clone)]
pub struct SeqStepOutput {
    /// Sequence identifier.
    pub seq_id: SeqId,
    /// Candidate `(token, logprob)` pairs, most preferred first; length
    /// equals the requested `num_candidates`.
    pub candidates: Vec<(TokenId, f32)>,
}

/// One kernel dispatch executed during a step, reported by the backend so
/// the engine can lay kernel spans under the request's trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name (e.g. `matmul`, `paged_attention`, `forward`).
    pub name: String,
    /// Time spent in the kernel this step, in seconds.
    pub seconds: f64,
}

/// The result of executing one iteration.
#[derive(Debug, Clone, Default)]
pub struct StepResult {
    /// Per-sequence outputs, in the same order as the batch items.
    pub outputs: Vec<SeqStepOutput>,
    /// Time the iteration took, in seconds: wall-clock for the numeric
    /// backend, modeled time for the simulator.
    pub elapsed: f64,
    /// Per-kernel dispatch timings for this step, in dispatch order. May be
    /// empty for backends that don't break the step down.
    pub kernels: Vec<KernelTiming>,
}

/// A backend that executes planned iterations.
///
/// The contract is batch-oriented: the executor receives the step's whole
/// [`StepPlan`] — materialized per-sequence inputs plus the batched cache
/// operations — applies the cache operations (swap in/out, block copies)
/// before any KV access, runs one model iteration over `plan.items`, and
/// returns one [`SeqStepOutput`] per item in order. A plan with no items but
/// non-empty cache operations (e.g. a step that only swaps a preempted group
/// out) must still apply those operations and return an empty output list.
pub trait ModelExecutor {
    /// Applies the plan's cache operations and runs one model iteration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::VllmError::Executor`] on backend failure.
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult>;

    /// Hands the executor the engine's telemetry bundle so it can register
    /// backend-specific instruments (forward-pass timings, all-reduce
    /// timings, ...). Called once when the engine is constructed; the
    /// default implementation registers nothing.
    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<vllm_telemetry::Telemetry>) {
        let _ = telemetry;
    }

    /// Short stable label of the serving backend, used to tag kernel spans
    /// and metrics (`backend="..."`). Defaults to `"mock"`.
    fn backend_label(&self) -> &str {
        "mock"
    }

    /// Serializes the contents of the given GPU blocks for a KV handoff,
    /// one [`KvBlockBytes`] per block in order. Backends without
    /// addressable KV storage (scripted mock, discrete-event simulator)
    /// return empty-bodied blocks from the default implementation: the
    /// handoff bookkeeping still runs end to end, installation is a no-op.
    fn export_kv_blocks(&self, blocks: &[PhysicalBlockId]) -> Vec<KvBlockBytes> {
        blocks.iter().map(|_| KvBlockBytes::empty()).collect()
    }
}
