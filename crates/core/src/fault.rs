//! Deterministic fault injection at the executor boundary.
//!
//! [`FaultInjector`] wraps any [`ModelExecutor`] and perturbs its behaviour
//! under the direction of a shared [`FaultControls`] handle: it can fail the
//! next N forward passes (modelling a crashed worker) and inflate the
//! reported iteration time per cache operation (modelling a slow swap
//! device). Because the perturbations are applied to the *virtual* step
//! result — an error return or extra modeled seconds — runs remain exactly
//! reproducible: the same control schedule against the same request stream
//! yields the same token streams, preemptions, and failures.
//!
//! Higher layers (`vllm-cluster`'s `FaultPlan`) own the schedule of *when*
//! to flip these controls; this module only provides the mechanism.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, VllmError};
use crate::executor::{ModelExecutor, StepResult};
use crate::plan::StepPlan;

/// Shared, thread-safe switchboard for executor-level faults.
///
/// Cloneable via `Arc`; the serving side keeps one handle to arm faults
/// while the engine-owned [`FaultInjector`] consumes them.
#[derive(Debug, Default)]
pub struct FaultControls {
    /// Number of upcoming forward passes to fail.
    fail_forwards: AtomicU32,
    /// Extra seconds charged per cache operation (f64 bit pattern).
    delay_per_op_bits: AtomicU64,
    /// Total forward failures injected so far.
    forward_failures: AtomicU64,
    /// Total steps whose elapsed time was inflated.
    delayed_steps: AtomicU64,
}

impl FaultControls {
    /// Creates an armed-with-nothing control block.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms the injector to fail the next `n` forward passes with
    /// [`VllmError::Executor`].
    pub fn fail_next_forwards(&self, n: u32) {
        self.fail_forwards.store(n, Ordering::SeqCst);
    }

    /// Charges `seconds` of extra modeled time per cache operation (swap
    /// in/out, CoW copy) applied by each subsequent step; `0.0` disarms.
    pub fn set_cache_op_delay(&self, seconds: f64) {
        self.delay_per_op_bits
            .store(seconds.to_bits(), Ordering::SeqCst);
    }

    /// The currently armed per-cache-op delay in seconds.
    #[must_use]
    pub fn cache_op_delay(&self) -> f64 {
        f64::from_bits(self.delay_per_op_bits.load(Ordering::SeqCst))
    }

    /// Number of forward passes failed so far.
    #[must_use]
    pub fn num_forward_failures(&self) -> u64 {
        self.forward_failures.load(Ordering::SeqCst)
    }

    /// Number of steps whose elapsed time was inflated so far.
    #[must_use]
    pub fn num_delayed_steps(&self) -> u64 {
        self.delayed_steps.load(Ordering::SeqCst)
    }

    /// Consumes one armed forward failure, if any.
    fn take_forward_failure(&self) -> bool {
        let mut cur = self.fail_forwards.load(Ordering::SeqCst);
        while cur > 0 {
            match self.fail_forwards.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.forward_failures.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(now) => cur = now,
            }
        }
        false
    }
}

/// A [`ModelExecutor`] decorator that injects the faults armed on its
/// [`FaultControls`].
#[derive(Debug)]
pub struct FaultInjector<E: ModelExecutor> {
    inner: E,
    controls: Arc<FaultControls>,
}

impl<E: ModelExecutor> FaultInjector<E> {
    /// Wraps `inner`, taking a handle to the shared control block.
    #[must_use]
    pub fn new(inner: E, controls: Arc<FaultControls>) -> Self {
        Self { inner, controls }
    }

    /// The wrapped executor.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The shared control block.
    #[must_use]
    pub fn controls(&self) -> &Arc<FaultControls> {
        &self.controls
    }
}

impl<E: ModelExecutor> ModelExecutor for FaultInjector<E> {
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult> {
        if self.controls.take_forward_failure() {
            return Err(VllmError::Executor("injected forward fault".into()));
        }
        let mut result = self.inner.begin_step(plan)?;
        let delay = self.controls.cache_op_delay();
        if delay > 0.0 {
            let ops = plan.cache_ops.swap_in.len()
                + plan.cache_ops.swap_out.len()
                + plan.cache_ops.copies.len();
            if ops > 0 {
                result.elapsed += delay * ops as f64;
                self.controls.delayed_steps.fetch_add(1, Ordering::SeqCst);
            }
        }
        Ok(result)
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<vllm_telemetry::Telemetry>) {
        self.inner.attach_telemetry(telemetry);
    }

    fn backend_label(&self) -> &str {
        self.inner.backend_label()
    }

    fn export_kv_blocks(
        &self,
        blocks: &[crate::block::PhysicalBlockId],
    ) -> Vec<crate::handoff::KvBlockBytes> {
        self.inner.export_kv_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, PreemptionMode, SchedulerConfig};
    use crate::mock::MockExecutor;
    use crate::sampling::SamplingParams;
    use crate::LlmEngine;

    fn engine(controls: &Arc<FaultControls>) -> LlmEngine<FaultInjector<MockExecutor>> {
        let cache = CacheConfig::new(4, 64, 16)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
        LlmEngine::new(
            FaultInjector::new(MockExecutor::new(1000), Arc::clone(controls)),
            cache,
            sched,
        )
    }

    #[test]
    fn armed_forward_failures_surface_then_clear() {
        let controls = FaultControls::new();
        let mut e = engine(&controls);
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(4))
            .unwrap();
        controls.fail_next_forwards(2);
        let err = e.step().unwrap_err();
        assert!(matches!(err, VllmError::Executor(_)));
        assert!(e.step().is_err());
        assert_eq!(controls.num_forward_failures(), 2);
        // Third step succeeds; recovery path: abort everything live.
        let ids = e.abort_all().unwrap();
        assert_eq!(ids, vec!["r0".to_string()]);
        let outs = e.step().unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn cache_op_delay_inflates_virtual_time_deterministically() {
        // Force swap preemption, then compare clocks with and without the
        // armed delay: the delayed run's clock must be strictly larger and
        // both runs must produce identical tokens.
        let run = |delay: f64| {
            let controls = FaultControls::new();
            controls.set_cache_op_delay(delay);
            let cache = CacheConfig::new(4, 4, 8)
                .unwrap()
                .with_watermark(0.0)
                .unwrap();
            let sched = SchedulerConfig::new(2048, 64, 2048)
                .unwrap()
                .with_preemption_mode(PreemptionMode::Swap);
            let mut e = LlmEngine::new(
                FaultInjector::new(MockExecutor::new(1000), Arc::clone(&controls)),
                cache,
                sched,
            );
            e.add_request(
                "a",
                vec![1, 2, 3, 4, 5, 6, 7, 8],
                SamplingParams::greedy(4).with_ignore_eos(),
            )
            .unwrap();
            e.add_request(
                "b",
                vec![9, 10, 11, 12, 13, 14, 15, 16],
                SamplingParams::greedy(4).with_ignore_eos(),
            )
            .unwrap();
            let mut outs = e.run_to_completion().unwrap();
            outs.sort_by(|x, y| x.request_id.cmp(&y.request_id));
            let tokens: Vec<Vec<u32>> = outs
                .iter()
                .flat_map(|o| o.outputs.iter().map(|c| c.tokens.clone()))
                .collect();
            (e.clock(), tokens, controls.num_delayed_steps())
        };
        let (clock_plain, tokens_plain, delayed_plain) = run(0.0);
        let (clock_slow, tokens_slow, delayed_slow) = run(0.5);
        assert_eq!(delayed_plain, 0);
        assert!(delayed_slow > 0);
        assert!(clock_slow > clock_plain);
        assert_eq!(tokens_plain, tokens_slow);
    }
}
