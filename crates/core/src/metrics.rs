//! Serving metrics: normalized latency (§6.1), batch occupancy (Fig. 13),
//! KV memory utilization (Fig. 2), sharing savings (Fig. 15), and aggregated
//! per-stage pipeline timings ([`TraceStats`]).

use serde::{Deserialize, Serialize};
use vllm_telemetry::{BucketSpec, Counter, Histogram, Telemetry};

use crate::block_manager::BlockManagerMetrics;
use crate::plan::{StageTimings, StepTrace};
use crate::scheduler::SchedulerMetrics;

/// Per-request latency record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestLatency {
    /// Arrival time in seconds.
    pub arrival_time: f64,
    /// Completion time in seconds.
    pub finish_time: f64,
    /// Mean number of generated tokens per output sequence.
    pub output_len: f64,
    /// End-to-end latency divided by output length (§6.1 "normalized
    /// latency", following Orca).
    pub normalized_latency: f64,
    /// Time to first token in seconds, if the request produced any output.
    pub ttft: Option<f64>,
    /// Absolute virtual time the first token was produced, on the same
    /// serving clock as `arrival_time`/`finish_time` and span timestamps.
    pub first_token_time: Option<f64>,
}

/// Collects per-request latencies and derives the paper's key metric.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    records: Vec<RequestLatency>,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn record(&mut self, arrival_time: f64, finish_time: f64, output_len: f64) {
        self.record_with_ttft(arrival_time, finish_time, output_len, None);
    }

    /// Records one finished request with its time to first token, given as
    /// a relative duration. Compatibility wrapper over
    /// [`LatencyTracker::record_request`]; the absolute first-token
    /// timestamp is reconstructed as `arrival_time + ttft`.
    pub fn record_with_ttft(
        &mut self,
        arrival_time: f64,
        finish_time: f64,
        output_len: f64,
        ttft: Option<f64>,
    ) {
        self.record_request(
            arrival_time,
            finish_time,
            output_len,
            ttft.map(|t| arrival_time + t),
        );
    }

    /// Records one finished request from absolute serving-clock timestamps.
    /// TTFT is derived here as `first_token_time - arrival_time`, so
    /// percentiles come from the same clock as span timestamps and the
    /// engine's event log.
    pub fn record_request(
        &mut self,
        arrival_time: f64,
        finish_time: f64,
        output_len: f64,
        first_token_time: Option<f64>,
    ) {
        let latency = finish_time - arrival_time;
        let denom = output_len.max(1.0);
        self.records.push(RequestLatency {
            arrival_time,
            finish_time,
            output_len,
            normalized_latency: latency / denom,
            ttft: first_token_time.map(|t| t - arrival_time),
            first_token_time,
        });
    }

    /// Number of finished requests.
    #[must_use]
    pub fn num_requests(&self) -> usize {
        self.records.len()
    }

    /// Mean normalized latency in seconds per token (the y-axis of
    /// Figs. 12, 14, 16, 17). Returns `None` before any request finishes.
    #[must_use]
    pub fn mean_normalized_latency(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(
            self.records
                .iter()
                .map(|r| r.normalized_latency)
                .sum::<f64>()
                / self.records.len() as f64,
        )
    }

    /// p-th percentile (0–100) of normalized latency.
    #[must_use]
    pub fn percentile_normalized_latency(&self, p: f64) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.records.iter().map(|r| r.normalized_latency).collect();
        v.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[idx.min(v.len() - 1)])
    }

    /// Mean time to first token over requests that produced output.
    #[must_use]
    pub fn mean_ttft(&self) -> Option<f64> {
        let ttfts: Vec<f64> = self.records.iter().filter_map(|r| r.ttft).collect();
        if ttfts.is_empty() {
            return None;
        }
        Some(ttfts.iter().sum::<f64>() / ttfts.len() as f64)
    }

    /// p-th percentile (0–100) of time to first token.
    #[must_use]
    pub fn percentile_ttft(&self, p: f64) -> Option<f64> {
        let mut v: Vec<f64> = self.records.iter().filter_map(|r| r.ttft).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[idx.min(v.len() - 1)])
    }

    /// All records (for custom aggregation in harnesses).
    #[must_use]
    pub fn records(&self) -> &[RequestLatency] {
        &self.records
    }
}

/// One step's snapshot of memory/batch state, weighted by step duration when
/// aggregated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepSnapshot {
    /// Wall/virtual duration of the step in seconds.
    pub duration: f64,
    /// Number of requests in the running queue.
    pub running_requests: usize,
    /// Number of running sequences (≥ requests with parallel decoding).
    pub running_seqs: usize,
    /// Tokens processed in this step.
    pub batched_tokens: usize,
    /// KV slots holding actual token state (Fig. 2 "token states").
    pub used_slots: usize,
    /// KV slots inside allocated blocks (used + internal fragmentation).
    pub allocated_slots: usize,
    /// Total KV slots in the GPU pool.
    pub total_slots: usize,
    /// Fraction of blocks saved by sharing (Fig. 15).
    pub sharing_savings: f64,
    /// Sum over sequences of logical GPU blocks (sharing denominator).
    pub logical_blocks: usize,
    /// Physical GPU blocks in use.
    pub physical_blocks: usize,
}

/// Time-weighted aggregation of [`StepSnapshot`]s over a run.
#[derive(Debug, Clone, Default)]
pub struct MemoryStats {
    total_time: f64,
    w_running_requests: f64,
    w_running_seqs: f64,
    w_batched_tokens: f64,
    w_used_slots: f64,
    w_allocated_slots: f64,
    w_total_slots: f64,
    w_sharing: f64,
    /// Time during which at least one block was allocated (sharing metric
    /// denominators only count busy time).
    busy_time: f64,
    num_steps: u64,
}

impl MemoryStats {
    /// Creates an empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one step's snapshot.
    pub fn observe(&mut self, s: &StepSnapshot) {
        let w = s.duration;
        self.total_time += w;
        self.num_steps += 1;
        self.w_running_requests += w * s.running_requests as f64;
        self.w_running_seqs += w * s.running_seqs as f64;
        self.w_batched_tokens += w * s.batched_tokens as f64;
        self.w_used_slots += w * s.used_slots as f64;
        self.w_allocated_slots += w * s.allocated_slots as f64;
        self.w_total_slots += w * s.total_slots as f64;
        if s.physical_blocks > 0 {
            self.busy_time += w;
            self.w_sharing += w * s.sharing_savings;
        }
    }

    /// Number of observed steps.
    #[must_use]
    pub fn num_steps(&self) -> u64 {
        self.num_steps
    }

    /// Total observed (virtual) time.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Time-weighted average number of batched requests (Fig. 13).
    #[must_use]
    pub fn avg_running_requests(&self) -> f64 {
        if self.total_time == 0.0 {
            return 0.0;
        }
        self.w_running_requests / self.total_time
    }

    /// Time-weighted average number of running sequences.
    #[must_use]
    pub fn avg_running_seqs(&self) -> f64 {
        if self.total_time == 0.0 {
            return 0.0;
        }
        self.w_running_seqs / self.total_time
    }

    /// Time-weighted average number of batched tokens per step.
    #[must_use]
    pub fn avg_batched_tokens(&self) -> f64 {
        if self.total_time == 0.0 {
            return 0.0;
        }
        self.w_batched_tokens / self.total_time
    }

    /// Fraction of *allocated* KV slots holding token state; the complement
    /// is internal fragmentation (Fig. 2's vLLM bar decomposition).
    #[must_use]
    pub fn utilization_of_allocated(&self) -> f64 {
        if self.w_allocated_slots == 0.0 {
            return 1.0;
        }
        self.w_used_slots / self.w_allocated_slots
    }

    /// Time-weighted average fraction of the whole pool holding token state.
    #[must_use]
    pub fn utilization_of_pool(&self) -> f64 {
        if self.w_total_slots == 0.0 {
            return 0.0;
        }
        self.w_used_slots / self.w_total_slots
    }

    /// Time-weighted average sharing savings over busy time (Fig. 15).
    #[must_use]
    pub fn avg_sharing_savings(&self) -> f64 {
        if self.busy_time == 0.0 {
            return 0.0;
        }
        self.w_sharing / self.busy_time
    }
}

/// Aggregation of [`StepTrace`]s across an engine's lifetime: cumulative
/// per-stage host wall times, token/cache-op totals, and preemption counts.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    num_steps: u64,
    num_prompt_runs: u64,
    stage_totals: StageTimings,
    tokens_scheduled: u64,
    blocks_copied: u64,
    blocks_swapped_in: u64,
    blocks_swapped_out: u64,
    blocks_migrated: u64,
    num_preemptions: u64,
    num_swap_preemptions: u64,
    num_recompute_preemptions: u64,
}

impl TraceStats {
    /// Adds one step's trace.
    pub fn observe(&mut self, trace: &StepTrace) {
        self.num_steps += 1;
        if trace.is_prompt_run {
            self.num_prompt_runs += 1;
        }
        self.stage_totals.schedule += trace.stages.schedule;
        self.stage_totals.prepare += trace.stages.prepare;
        self.stage_totals.execute += trace.stages.execute;
        self.stage_totals.postprocess += trace.stages.postprocess;
        self.tokens_scheduled += trace.tokens_scheduled as u64;
        self.blocks_copied += trace.blocks_copied as u64;
        self.blocks_swapped_in += trace.blocks_swapped_in as u64;
        self.blocks_swapped_out += trace.blocks_swapped_out as u64;
        self.blocks_migrated += trace.blocks_migrated as u64;
        self.num_preemptions += trace.preemptions.len() as u64;
        self.num_swap_preemptions += trace.num_swap_preemptions() as u64;
        self.num_recompute_preemptions += trace.num_recompute_preemptions() as u64;
    }

    /// Number of steps observed (prompt, decode, and empty steps alike).
    #[must_use]
    pub fn num_steps(&self) -> u64 {
        self.num_steps
    }

    /// Number of prompt (prefill) iterations.
    #[must_use]
    pub fn num_prompt_runs(&self) -> u64 {
        self.num_prompt_runs
    }

    /// Cumulative host wall time per pipeline stage.
    #[must_use]
    pub fn stage_totals(&self) -> StageTimings {
        self.stage_totals
    }

    /// Total tokens scheduled across all steps.
    #[must_use]
    pub fn tokens_scheduled(&self) -> u64 {
        self.tokens_scheduled
    }

    /// Total copy-on-write block copies carried by step plans.
    #[must_use]
    pub fn blocks_copied(&self) -> u64 {
        self.blocks_copied
    }

    /// Total blocks swapped CPU→GPU.
    #[must_use]
    pub fn blocks_swapped_in(&self) -> u64 {
        self.blocks_swapped_in
    }

    /// Total blocks swapped GPU→CPU.
    #[must_use]
    pub fn blocks_swapped_out(&self) -> u64 {
        self.blocks_swapped_out
    }

    /// Total defragmentation block migrations carried by step plans.
    #[must_use]
    pub fn blocks_migrated(&self) -> u64 {
        self.blocks_migrated
    }

    /// Total preemption events.
    #[must_use]
    pub fn num_preemptions(&self) -> u64 {
        self.num_preemptions
    }

    /// Preemptions recovered by swapping.
    #[must_use]
    pub fn num_swap_preemptions(&self) -> u64 {
        self.num_swap_preemptions
    }

    /// Preemptions recovered by recomputation.
    #[must_use]
    pub fn num_recompute_preemptions(&self) -> u64 {
        self.num_recompute_preemptions
    }
}

/// Cached telemetry handles for engine-level counters and histograms,
/// bundling the scheduler's and block manager's handle sets. Registered once
/// at engine construction; the hot path only touches atomics and short
/// histogram critical sections.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// `vllm_engine_steps_total` counter.
    pub steps_total: Counter,
    /// `vllm_engine_prompt_steps_total` counter.
    pub prompt_steps_total: Counter,
    /// `vllm_engine_tokens_scheduled_total` counter.
    pub tokens_scheduled_total: Counter,
    /// `vllm_engine_requests_arrived_total` counter.
    pub requests_arrived_total: Counter,
    /// `vllm_engine_requests_finished_total` counter.
    pub requests_finished_total: Counter,
    /// `vllm_engine_requests_ignored_total` counter (rejected/aborted by the
    /// scheduler).
    pub requests_ignored_total: Counter,
    /// `vllm_engine_deadline_cancellations_total` counter.
    pub deadline_cancellations_total: Counter,
    /// `vllm_engine_prefill_chunks_total` counter: prompt chunks dispatched
    /// under chunked-prefill mode (one per scheduled [`PrefillChunk`]).
    ///
    /// [`PrefillChunk`]: crate::scheduler::PrefillChunk
    pub prefill_chunks_total: Counter,
    /// `vllm_request_deadline_miss_seconds` histogram: how far past its
    /// deadline a cancelled request was when the engine cancelled it.
    pub request_deadline_miss_seconds: Histogram,
    /// `vllm_step_schedule_seconds` histogram (host wall time).
    pub step_schedule_seconds: Histogram,
    /// `vllm_step_prepare_seconds` histogram (host wall time).
    pub step_prepare_seconds: Histogram,
    /// `vllm_step_execute_seconds` histogram (host wall time).
    pub step_execute_seconds: Histogram,
    /// `vllm_step_postprocess_seconds` histogram (host wall time).
    pub step_postprocess_seconds: Histogram,
    /// `vllm_step_model_seconds` histogram: the executor-reported iteration
    /// time (wall-clock for numeric backends, modeled for the simulator).
    pub step_model_seconds: Histogram,
    /// `vllm_request_ttft_seconds` histogram (serving-clock time).
    pub request_ttft_seconds: Histogram,
    /// `vllm_request_e2e_seconds` histogram (serving-clock time).
    pub request_e2e_seconds: Histogram,
    /// `vllm_request_normalized_latency_seconds` histogram (§6.1, seconds
    /// per generated token).
    pub request_normalized_latency_seconds: Histogram,
    /// `vllm_request_inter_token_seconds` histogram (serving-clock gap
    /// between consecutive decode iterations of a request).
    pub request_inter_token_seconds: Histogram,
    /// The scheduler's handle set.
    pub scheduler: SchedulerMetrics,
    /// The block manager's handle set.
    pub block_manager: BlockManagerMetrics,
}

impl EngineMetrics {
    /// Registers every engine-layer instrument in `telemetry`.
    #[must_use]
    pub fn register(telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        let secs = BucketSpec::seconds;
        Self {
            steps_total: r.counter("vllm_engine_steps_total", "Engine steps executed."),
            prompt_steps_total: r.counter(
                "vllm_engine_prompt_steps_total",
                "Prompt (prefill) iterations executed.",
            ),
            tokens_scheduled_total: r.counter(
                "vllm_engine_tokens_scheduled_total",
                "Tokens scheduled into iterations.",
            ),
            requests_arrived_total: r.counter(
                "vllm_engine_requests_arrived_total",
                "Requests admitted to the engine.",
            ),
            requests_finished_total: r.counter(
                "vllm_engine_requests_finished_total",
                "Requests that finished with output.",
            ),
            requests_ignored_total: r.counter(
                "vllm_engine_requests_ignored_total",
                "Requests rejected or aborted by the scheduler.",
            ),
            deadline_cancellations_total: r.counter(
                "vllm_engine_deadline_cancellations_total",
                "Requests cancelled because their deadline passed.",
            ),
            prefill_chunks_total: r.counter(
                "vllm_engine_prefill_chunks_total",
                "Prompt chunks dispatched under chunked-prefill mode.",
            ),
            request_deadline_miss_seconds: r.histogram(
                "vllm_request_deadline_miss_seconds",
                "Seconds past the deadline when a request was cancelled.",
                secs(),
            ),
            step_schedule_seconds: r.histogram(
                "vllm_step_schedule_seconds",
                "Schedule-stage host wall time per step.",
                secs(),
            ),
            step_prepare_seconds: r.histogram(
                "vllm_step_prepare_seconds",
                "Prepare-stage host wall time per step.",
                secs(),
            ),
            step_execute_seconds: r.histogram(
                "vllm_step_execute_seconds",
                "Execute-stage host wall time per step.",
                secs(),
            ),
            step_postprocess_seconds: r.histogram(
                "vllm_step_postprocess_seconds",
                "Postprocess-stage host wall time per step.",
                secs(),
            ),
            step_model_seconds: r.histogram(
                "vllm_step_model_seconds",
                "Executor-reported model iteration time per step.",
                secs(),
            ),
            request_ttft_seconds: r.histogram(
                "vllm_request_ttft_seconds",
                "Time to first token per request (serving clock).",
                secs(),
            ),
            request_e2e_seconds: r.histogram(
                "vllm_request_e2e_seconds",
                "End-to-end latency per finished request (serving clock).",
                secs(),
            ),
            request_normalized_latency_seconds: r.histogram(
                "vllm_request_normalized_latency_seconds",
                "End-to-end latency per generated token (normalized latency).",
                secs(),
            ),
            request_inter_token_seconds: r.histogram(
                "vllm_request_inter_token_seconds",
                "Gap between consecutive decode iterations of a request.",
                secs(),
            ),
            scheduler: SchedulerMetrics::register(telemetry),
            block_manager: BlockManagerMetrics::register(telemetry),
        }
    }

    /// Observes one completed step trace: step counters plus per-stage
    /// timing histograms. Stages that did not run this step (zero duration)
    /// are skipped so empty iterations don't skew the distributions.
    pub fn observe_trace(&self, trace: &StepTrace) {
        self.steps_total.inc();
        if trace.is_prompt_run {
            self.prompt_steps_total.inc();
        }
        self.tokens_scheduled_total
            .inc_by(trace.tokens_scheduled as u64);
        for (hist, t) in [
            (&self.step_schedule_seconds, trace.stages.schedule),
            (&self.step_prepare_seconds, trace.stages.prepare),
            (&self.step_execute_seconds, trace.stages.execute),
            (&self.step_postprocess_seconds, trace.stages.postprocess),
        ] {
            if t > 0.0 {
                hist.observe(t);
            }
        }
    }

    /// Observes one finished request's latency profile (TTFT is observed
    /// live when the first token is produced, not here).
    pub fn observe_request(&self, e2e: f64, normalized: f64) {
        self.requests_finished_total.inc();
        self.request_e2e_seconds.observe(e2e);
        self.request_normalized_latency_seconds.observe(normalized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_latency_divides_by_output_len() {
        let mut t = LatencyTracker::new();
        t.record(0.0, 10.0, 20.0);
        assert_eq!(t.mean_normalized_latency(), Some(0.5));
    }

    #[test]
    fn normalized_latency_guards_zero_output() {
        let mut t = LatencyTracker::new();
        t.record(0.0, 3.0, 0.0);
        assert_eq!(t.mean_normalized_latency(), Some(3.0));
    }

    #[test]
    fn empty_tracker_returns_none() {
        let t = LatencyTracker::new();
        assert_eq!(t.mean_normalized_latency(), None);
        assert_eq!(t.percentile_normalized_latency(50.0), None);
    }

    #[test]
    fn percentile_ordering() {
        let mut t = LatencyTracker::new();
        for (fin, out) in [(1.0, 1.0), (2.0, 1.0), (10.0, 1.0)] {
            t.record(0.0, fin, out);
        }
        assert_eq!(t.percentile_normalized_latency(0.0), Some(1.0));
        assert_eq!(t.percentile_normalized_latency(100.0), Some(10.0));
        assert_eq!(t.percentile_normalized_latency(50.0), Some(2.0));
    }

    #[test]
    fn memory_stats_time_weighted() {
        let mut m = MemoryStats::new();
        m.observe(&StepSnapshot {
            duration: 1.0,
            running_requests: 10,
            used_slots: 50,
            allocated_slots: 100,
            total_slots: 200,
            ..Default::default()
        });
        m.observe(&StepSnapshot {
            duration: 3.0,
            running_requests: 2,
            used_slots: 100,
            allocated_slots: 100,
            total_slots: 200,
            ..Default::default()
        });
        assert!((m.avg_running_requests() - 4.0).abs() < 1e-12);
        assert!((m.utilization_of_allocated() - 0.875).abs() < 1e-12);
        assert!((m.utilization_of_pool() - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn sharing_only_counts_busy_time() {
        let mut m = MemoryStats::new();
        m.observe(&StepSnapshot {
            duration: 1.0,
            sharing_savings: 0.5,
            physical_blocks: 10,
            ..Default::default()
        });
        m.observe(&StepSnapshot {
            duration: 9.0,
            sharing_savings: 0.0,
            physical_blocks: 0,
            ..Default::default()
        });
        assert!((m.avg_sharing_savings() - 0.5).abs() < 1e-12);
    }
}
