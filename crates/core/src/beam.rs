//! Beam-search planning (§4.4, Fig. 9).
//!
//! Each decode iteration, every live beam proposes its top `2k` candidate
//! continuations. [`plan_beam_step`] picks the global top-`k`, decides which
//! live sequences are reused, forked, or dropped, and separates candidates
//! that terminate with the end-of-sequence token. The plan is pure data; the
//! engine applies it with the `fork`/`append`/`free` primitives (§5.2), so
//! beam bookkeeping is testable without a model or block manager.

use crate::sampling::TokenId;
use crate::sequence::SeqId;

/// One live beam's continuation candidates for a step.
#[derive(Debug, Clone)]
pub struct BeamInput {
    /// The live sequence proposing candidates.
    pub seq_id: SeqId,
    /// Its cumulative log-probability before this step.
    pub cumulative_logprob: f64,
    /// Top candidate `(token, logprob)` pairs, most probable first.
    pub candidates: Vec<(TokenId, f32)>,
}

/// A continuation kept by the beam step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamExtension {
    /// Parent live sequence.
    pub parent: SeqId,
    /// Token appended to the parent's history.
    pub token: TokenId,
    /// Cumulative log-probability including `token`.
    pub cumulative_logprob: f64,
}

/// The engine-facing plan for one beam-search step.
#[derive(Debug, Clone, Default)]
pub struct BeamPlan {
    /// Continuations that reuse their parent sequence in place (append).
    pub appends: Vec<BeamExtension>,
    /// Continuations that fork a new sequence from their parent before the
    /// token is appended. Forks must be applied before appends so children
    /// copy the pre-append parent state.
    pub forks: Vec<BeamExtension>,
    /// Live sequences with no surviving continuation; their blocks are freed.
    pub drops: Vec<SeqId>,
    /// Candidates that emitted the end-of-sequence token; they become
    /// finished hypotheses and occupy no KV blocks.
    pub finished: Vec<BeamExtension>,
}

/// Plans one beam-search step: keep the global top-`width` non-terminal
/// candidates as the new live set and surface terminal (eos) candidates as
/// finished hypotheses.
///
/// Candidates equal to `eos` never join the live set. At most `width`
/// finished hypotheses are emitted per step (the most probable ones).
#[must_use]
pub fn plan_beam_step(inputs: &[BeamInput], width: usize, eos: Option<TokenId>) -> BeamPlan {
    let mut live_cands: Vec<BeamExtension> = Vec::new();
    let mut eos_cands: Vec<BeamExtension> = Vec::new();
    for input in inputs {
        for &(token, logprob) in &input.candidates {
            let ext = BeamExtension {
                parent: input.seq_id,
                token,
                cumulative_logprob: input.cumulative_logprob + f64::from(logprob),
            };
            if Some(token) == eos {
                eos_cands.push(ext);
            } else {
                live_cands.push(ext);
            }
        }
    }
    // Most probable first; ties broken by (parent, token) for determinism.
    let by_prob = |a: &BeamExtension, b: &BeamExtension| {
        b.cumulative_logprob
            .total_cmp(&a.cumulative_logprob)
            .then_with(|| a.parent.cmp(&b.parent))
            .then_with(|| a.token.cmp(&b.token))
    };
    live_cands.sort_by(by_prob);
    live_cands.truncate(width);
    eos_cands.sort_by(by_prob);
    eos_cands.truncate(width);

    let mut plan = BeamPlan {
        finished: eos_cands,
        ..BeamPlan::default()
    };
    // The first (most probable) continuation of each parent reuses the
    // parent in place; further continuations fork (Fig. 9: candidates 1 and
    // 2 each spawn two of the next step's beams).
    for ext in live_cands {
        let reused = plan.appends.iter().any(|e| e.parent == ext.parent);
        if reused {
            plan.forks.push(ext);
        } else {
            plan.appends.push(ext);
        }
    }
    for input in inputs {
        let survives = plan.appends.iter().any(|e| e.parent == input.seq_id);
        if !survives {
            plan.drops.push(input.seq_id);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(seq_id: SeqId, cum: f64, cands: &[(TokenId, f32)]) -> BeamInput {
        BeamInput {
            seq_id,
            cumulative_logprob: cum,
            candidates: cands.to_vec(),
        }
    }

    #[test]
    fn keeps_global_top_k() {
        // Beam 0 (cum -1.0) and beam 1 (cum -5.0): beam 0's candidates
        // dominate, so beam 1 is dropped and beam 0 forks.
        let inputs = vec![
            input(0, -1.0, &[(10, -0.1), (11, -0.2), (12, -3.0), (13, -4.0)]),
            input(1, -5.0, &[(20, -0.1), (21, -0.2), (22, -3.0), (23, -4.0)]),
        ];
        let plan = plan_beam_step(&inputs, 2, None);
        assert_eq!(plan.appends.len(), 1);
        assert_eq!(plan.appends[0].parent, 0);
        assert_eq!(plan.appends[0].token, 10);
        assert_eq!(plan.forks.len(), 1);
        assert_eq!(plan.forks[0].parent, 0);
        assert_eq!(plan.forks[0].token, 11);
        assert_eq!(plan.drops, vec![1]);
        assert!(plan.finished.is_empty());
    }

    #[test]
    fn each_parent_reuses_once() {
        // Both beams keep exactly one continuation: no forks, no drops.
        let inputs = vec![
            input(0, 0.0, &[(10, -0.1), (11, -9.0)]),
            input(1, 0.0, &[(20, -0.2), (21, -9.0)]),
        ];
        let plan = plan_beam_step(&inputs, 2, None);
        assert_eq!(plan.appends.len(), 2);
        assert!(plan.forks.is_empty());
        assert!(plan.drops.is_empty());
    }

    #[test]
    fn eos_candidates_become_finished() {
        const EOS: TokenId = 2;
        let inputs = vec![input(0, 0.0, &[(EOS, -0.05), (10, -0.1), (11, -0.2)])];
        let plan = plan_beam_step(&inputs, 2, Some(EOS));
        assert_eq!(plan.finished.len(), 1);
        assert_eq!(plan.finished[0].token, EOS);
        // Live set still has width 2, drawn from non-eos candidates.
        assert_eq!(plan.appends.len() + plan.forks.len(), 2);
        assert!(plan
            .appends
            .iter()
            .chain(plan.forks.iter())
            .all(|e| e.token != EOS));
    }

    #[test]
    fn cumulative_logprobs_accumulate() {
        let inputs = vec![input(0, -2.0, &[(10, -0.5)])];
        let plan = plan_beam_step(&inputs, 1, None);
        assert!((plan.appends[0].cumulative_logprob - (-2.5)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tie_break() {
        let inputs = vec![input(1, 0.0, &[(10, -0.5)]), input(0, 0.0, &[(10, -0.5)])];
        let a = plan_beam_step(&inputs, 1, None);
        let b = plan_beam_step(&inputs, 1, None);
        assert_eq!(a.appends[0].parent, b.appends[0].parent);
        assert_eq!(a.appends[0].parent, 0);
    }

    #[test]
    fn finished_capped_at_width() {
        const EOS: TokenId = 2;
        let inputs = vec![
            input(0, 0.0, &[(EOS, -0.1)]),
            input(1, -0.5, &[(EOS, -0.1)]),
            input(2, -1.0, &[(EOS, -0.1)]),
        ];
        let plan = plan_beam_step(&inputs, 2, Some(EOS));
        assert_eq!(plan.finished.len(), 2);
        assert_eq!(plan.finished[0].parent, 0);
        // Everyone drops: no live candidates remain.
        assert_eq!(plan.drops.len(), 3);
    }

    #[test]
    fn fig9_style_reshuffle() {
        // Four beams; the new top-4 all originate from beams 1 and 2
        // (Fig. 9): beams 0 and 3 are freed, 1 and 2 each split in two.
        let inputs = vec![
            input(0, -10.0, &[(1, -0.1), (2, -0.2)]),
            input(1, -1.0, &[(3, -0.1), (4, -0.2)]),
            input(2, -1.1, &[(5, -0.1), (6, -0.2)]),
            input(3, -9.0, &[(7, -0.1), (8, -0.2)]),
        ];
        let plan = plan_beam_step(&inputs, 4, None);
        assert_eq!(plan.appends.len(), 2);
        assert_eq!(plan.forks.len(), 2);
        let mut parents: Vec<SeqId> = plan
            .appends
            .iter()
            .chain(plan.forks.iter())
            .map(|e| e.parent)
            .collect();
        parents.sort_unstable();
        assert_eq!(parents, vec![1, 1, 2, 2]);
        let mut drops = plan.drops.clone();
        drops.sort_unstable();
        assert_eq!(drops, vec![0, 3]);
    }
}
