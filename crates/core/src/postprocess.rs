//! The postprocess stage of the step pipeline: applying executor outputs to
//! engine state.
//!
//! After the execute stage returns sampled candidates, this module routes
//! them per decoding mode — plain append for greedy/single sampling,
//! `fork` + append for the parallel-sampling prompt step (Fig. 8), and the
//! beam planner's fork/append/drop program for beam search (§4.4) — then
//! applies stop conditions (eos/stop tokens, length caps), optional KV
//! retention promotion, and reaps finished requests into
//! [`RequestOutput`]s.

use std::collections::HashMap;

use vllm_telemetry::{EventKind, Span};

use crate::beam::{plan_beam_step, BeamInput, BeamPlan};
use crate::engine::{CompletionOutput, LlmEngine, RequestOutput};
use crate::error::{Result, VllmError};
use crate::executor::{ModelExecutor, StepResult};
use crate::plan::StepPlan;
use crate::sampling::{DecodingMode, SamplingParams, TokenId};
use crate::sequence::{SeqId, SequenceGroup, SequenceStatus};

impl<E: ModelExecutor> LlmEngine<E> {
    /// Forks the child's block table from the parent, honouring the sharing
    /// ablation switch. Eager-copy forks record their block copies in the
    /// block manager's pending cache ops, carried by the next step's plan.
    fn fork_blocks(&mut self, parent: SeqId, child: SeqId) -> Result<()> {
        if self.sharing_enabled {
            self.scheduler.fork_seq(parent, child)
        } else {
            self.scheduler
                .block_manager_mut()
                .fork_eager(parent, child)?;
            Ok(())
        }
    }

    /// Promotes a finishing sequence's KV into the prefix cache. Returns
    /// `true` when the blocks were taken over (caller must then skip the
    /// free).
    fn promote_seq_to_prefix(&mut self, request_id: &str, seq_id: SeqId) -> Result<bool> {
        let (tokens, computed) = {
            let group = self
                .scheduler
                .group(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            (seq.data.tokens().to_vec(), seq.data.num_computed_tokens())
        };
        if computed == 0 {
            return Ok(false);
        }
        let bs = self.cache_config.block_size;
        let num_blocks = computed.div_ceil(bs);
        let blocks = self
            .scheduler
            .block_manager_mut()
            .take_table_as_anchor(seq_id, num_blocks)?;
        let id = self.prefix_pool.insert(tokens[..computed].to_vec(), blocks);
        self.prefix_pool.mark_computed(id);
        self.promoted_prefixes.insert(request_id.to_string(), id);
        Ok(true)
    }

    /// Applies one step's sampled candidates to every scheduled group.
    pub(crate) fn process_outputs(&mut self, plan: &StepPlan, result: &StepResult) -> Result<()> {
        let out_map: HashMap<SeqId, &Vec<(TokenId, f32)>> = result
            .outputs
            .iter()
            .map(|o| (o.seq_id, &o.candidates))
            .collect();

        for sg in &plan.scheduled {
            // A non-final prefill chunk is KV-only: advance the chunk cursor
            // and emit its per-chunk span, but touch none of the token-time
            // bookkeeping — TTFT must close at the first *sampled* token,
            // which the final chunk produces.
            if let Some(chunk) = sg.chunk.filter(|c| !c.is_final) {
                let group = self
                    .scheduler
                    .group_mut(&sg.request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?;
                for &seq_id in &sg.seq_ids {
                    let seq = group
                        .get_mut(seq_id)
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    seq.data.set_num_computed_tokens(chunk.end);
                }
                if group.trace.is_active() {
                    // Chunk spans nest under the request's `prefill` span
                    // (child 2), keyed by the chunk cursor so replays are
                    // deterministic.
                    let p = group.trace.child(2).child(0x4000_0000 + chunk.start as u64);
                    self.telemetry.spans().record(Span {
                        trace_id: p.trace_id,
                        span_id: p.span_id,
                        parent_span_id: p.parent_span_id,
                        name: "prefill.chunk".to_string(),
                        start: self.clock - result.elapsed,
                        end: self.clock,
                        attrs: vec![
                            ("chunk_start".to_string(), chunk.start.to_string()),
                            ("chunk_len".to_string(), chunk.len().to_string()),
                        ],
                    });
                }
                continue;
            }
            // Mark the KV cache as computed up to the current length and
            // update the group's token-time bookkeeping.
            let (first_token, inter_token_gap, prefill_span, final_chunk_span) = {
                let group = self
                    .scheduler
                    .group_mut(&sg.request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?;
                let first_token = if group.first_token_time.is_none() {
                    group.first_token_time = Some(self.clock);
                    Some(self.clock - group.arrival_time)
                } else {
                    None
                };
                let gap = group.last_token_time.map(|t| self.clock - t);
                group.last_token_time = Some(self.clock);
                for &seq_id in &sg.seq_ids {
                    let seq = group
                        .get_mut(seq_id)
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    let len = seq.len();
                    seq.data.set_num_computed_tokens(len);
                }
                // The prefill span closes when the first token lands:
                // [first schedule, first token] on the serving clock.
                let prefill_span = if first_token.is_some() && group.trace.is_active() {
                    Some((
                        group.trace,
                        group.first_scheduled_time.unwrap_or(group.arrival_time),
                    ))
                } else {
                    None
                };
                // The final chunk of a split prefill also records its own
                // per-chunk span under `prefill`.
                let final_chunk_span = sg
                    .chunk
                    .filter(|c| !c.is_first && group.trace.is_active())
                    .map(|c| (group.trace, c));
                (first_token, gap, prefill_span, final_chunk_span)
            };
            if let Some(ttft) = first_token {
                self.tmetrics.request_ttft_seconds.observe(ttft);
                self.telemetry
                    .events()
                    .record(&sg.request_id, self.clock, EventKind::FirstToken);
            }
            if let Some((trace, prefill_start)) = prefill_span {
                let p = trace.child(2);
                self.telemetry.spans().record(Span {
                    trace_id: p.trace_id,
                    span_id: p.span_id,
                    parent_span_id: p.parent_span_id,
                    name: "prefill".to_string(),
                    start: prefill_start,
                    end: self.clock,
                    attrs: Vec::new(),
                });
            }
            if let Some(gap) = inter_token_gap {
                self.tmetrics.request_inter_token_seconds.observe(gap);
            }
            if let Some((trace, chunk)) = final_chunk_span {
                let p = trace.child(2).child(0x4000_0000 + chunk.start as u64);
                self.telemetry.spans().record(Span {
                    trace_id: p.trace_id,
                    span_id: p.span_id,
                    parent_span_id: p.parent_span_id,
                    name: "prefill.chunk".to_string(),
                    start: self.clock - result.elapsed,
                    end: self.clock,
                    attrs: vec![
                        ("chunk_start".to_string(), chunk.start.to_string()),
                        ("chunk_len".to_string(), chunk.len().to_string()),
                    ],
                });
            }

            let params = self
                .scheduler
                .group(&sg.request_id)
                .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?
                .sampling_params
                .clone();

            if let DecodingMode::Beam { width } = params.mode {
                self.process_beam_group(
                    sg.request_id.clone(),
                    &sg.seq_ids,
                    &out_map,
                    width,
                    &params,
                )?;
            } else if sg.is_prompt && params.n > 1 {
                self.process_parallel_prompt(&sg.request_id, sg.seq_ids[0], &out_map, &params)?;
            } else {
                for &seq_id in &sg.seq_ids {
                    let cands = out_map
                        .get(&seq_id)
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    let &(token, logprob) = cands
                        .first()
                        .ok_or_else(|| VllmError::Executor("missing candidate".into()))?;
                    self.append_and_check(&sg.request_id, seq_id, token, logprob, &params)?;
                }
            }

            if !sg.is_prompt {
                let tokens = self
                    .scheduler
                    .group(&sg.request_id)
                    .map(|g| {
                        g.seqs()
                            .iter()
                            .map(|s| s.data.num_output_tokens())
                            .max()
                            .unwrap_or(0)
                    })
                    .unwrap_or(0);
                self.telemetry.events().record(
                    &sg.request_id,
                    self.clock,
                    EventKind::Decoded { tokens },
                );
            }
        }
        Ok(())
    }

    /// Parallel sampling prompt step (Fig. 8): the executor sampled `n`
    /// tokens from the prompt's distribution; fork `n - 1` children that
    /// share the prompt's blocks, then append each sample to its sequence.
    fn process_parallel_prompt(
        &mut self,
        request_id: &str,
        parent: SeqId,
        out_map: &HashMap<SeqId, &Vec<(TokenId, f32)>>,
        params: &SamplingParams,
    ) -> Result<()> {
        let cands = (*out_map
            .get(&parent)
            .ok_or(VllmError::UnknownSequence(parent))?)
        .clone();
        if cands.len() < params.n {
            return Err(VllmError::Executor(format!(
                "expected {} samples, got {}",
                params.n,
                cands.len()
            )));
        }
        let child_ids: Vec<SeqId> = (1..params.n).map(|_| self.alloc_seq_id()).collect();
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            for &cid in &child_ids {
                let child = group
                    .get(parent)
                    .ok_or(VllmError::UnknownSequence(parent))?
                    .fork(cid);
                group.add(child);
            }
        }
        for &cid in &child_ids {
            self.fork_blocks(parent, cid)?;
        }
        // Append sample 0 to the parent, sample i to child i-1.
        let seq_ids: Vec<SeqId> = std::iter::once(parent).chain(child_ids).collect();
        for (i, &sid) in seq_ids.iter().enumerate() {
            let (token, logprob) = cands[i];
            self.append_and_check(request_id, sid, token, logprob, params)?;
        }
        Ok(())
    }

    fn process_beam_group(
        &mut self,
        request_id: String,
        seq_ids: &[SeqId],
        out_map: &HashMap<SeqId, &Vec<(TokenId, f32)>>,
        width: usize,
        params: &SamplingParams,
    ) -> Result<()> {
        let plan = {
            let group = self
                .scheduler
                .group(&request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.clone()))?;
            let mut inputs = Vec::with_capacity(seq_ids.len());
            for &sid in seq_ids {
                let seq = group.get(sid).ok_or(VllmError::UnknownSequence(sid))?;
                let cands = out_map.get(&sid).ok_or(VllmError::UnknownSequence(sid))?;
                inputs.push(BeamInput {
                    seq_id: sid,
                    cumulative_logprob: seq.cumulative_logprob,
                    candidates: (*cands).clone(),
                });
            }
            let eos = if params.ignore_eos {
                None
            } else {
                params.eos_token_id
            };
            plan_beam_step(&inputs, width, eos)
        };
        self.apply_beam_plan(&request_id, &plan, width, params)
    }

    fn apply_beam_plan(
        &mut self,
        request_id: &str,
        plan: &BeamPlan,
        width: usize,
        params: &SamplingParams,
    ) -> Result<()> {
        // 1. Materialize finished (eos) hypotheses from pre-append parent
        //    state; they hold no KV blocks.
        let finished_ids: Vec<SeqId> = (0..plan.finished.len())
            .map(|_| self.alloc_seq_id())
            .collect();
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            for (ext, &cid) in plan.finished.iter().zip(&finished_ids) {
                let parent = group
                    .get(ext.parent)
                    .ok_or(VllmError::UnknownSequence(ext.parent))?;
                let mut hyp = parent.fork(cid);
                hyp.data.append_token(ext.token);
                hyp.cumulative_logprob = ext.cumulative_logprob;
                hyp.status = SequenceStatus::FinishedStopped;
                group.add(hyp);
            }
        }

        // 2. Forks share the parent's blocks before the parent appends.
        for ext in &plan.forks {
            let cid = self.alloc_seq_id();
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                let child = group
                    .get(ext.parent)
                    .ok_or(VllmError::UnknownSequence(ext.parent))?
                    .fork(cid);
                group.add(child);
            }
            self.fork_blocks(ext.parent, cid)?;
            self.append_beam_token(request_id, cid, ext.token, ext.cumulative_logprob, params)?;
        }

        // 3. Appends reuse their parent in place.
        for ext in &plan.appends {
            self.append_beam_token(
                request_id,
                ext.parent,
                ext.token,
                ext.cumulative_logprob,
                params,
            )?;
        }

        // 4. Drop parents with no surviving continuation.
        for &sid in &plan.drops {
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                if let Some(seq) = group.get_mut(sid) {
                    if !seq.is_finished() {
                        seq.status = SequenceStatus::FinishedDropped;
                    }
                }
            }
            self.scheduler.free_seq(sid)?;
        }

        // 5. Early termination: once `width` hypotheses have finished, the
        //    remaining live beams are dropped.
        let to_drop: Vec<SeqId> = {
            let group = self
                .scheduler
                .group(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let num_finished = group
                .seqs()
                .iter()
                .filter(|s| {
                    matches!(
                        s.status,
                        SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                    )
                })
                .count();
            if num_finished >= width {
                group.seq_ids_with_status(SequenceStatus::Running)
            } else {
                Vec::new()
            }
        };
        for sid in to_drop {
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                if let Some(seq) = group.get_mut(sid) {
                    seq.status = SequenceStatus::FinishedDropped;
                }
            }
            self.scheduler.free_seq(sid)?;
        }
        Ok(())
    }

    /// Appends a beam token with explicit cumulative logprob and applies
    /// the length-cap checks (eos was already diverted by the planner).
    fn append_beam_token(
        &mut self,
        request_id: &str,
        seq_id: SeqId,
        token: TokenId,
        cumulative_logprob: f64,
        params: &SamplingParams,
    ) -> Result<()> {
        let max_model_len = self.scheduler.config().max_model_len;
        let mut finished = false;
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get_mut(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            seq.data.append_token(token);
            seq.cumulative_logprob = cumulative_logprob;
            if seq.data.num_output_tokens() >= params.max_tokens || seq.len() >= max_model_len {
                seq.status = SequenceStatus::FinishedLengthCapped;
                finished = true;
            }
        }
        if finished {
            self.scheduler.free_seq(seq_id)?;
        }
        Ok(())
    }

    /// Appends a sampled token and applies stop conditions.
    fn append_and_check(
        &mut self,
        request_id: &str,
        seq_id: SeqId,
        token: TokenId,
        logprob: f32,
        params: &SamplingParams,
    ) -> Result<()> {
        let max_model_len = self.scheduler.config().max_model_len;
        let mut finished = false;
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get_mut(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            seq.data.append_token(token);
            seq.cumulative_logprob += f64::from(logprob);
            if params.is_stop_token(token) {
                seq.status = SequenceStatus::FinishedStopped;
                finished = true;
            } else if seq.data.num_output_tokens() >= params.max_tokens
                || seq.len() >= max_model_len
            {
                seq.status = SequenceStatus::FinishedLengthCapped;
                finished = true;
            }
        }
        if finished {
            let promoted = if self.retain_requests.remove(request_id) {
                self.promote_seq_to_prefix(request_id, seq_id)?
            } else {
                false
            };
            if !promoted {
                self.scheduler.free_seq(seq_id)?;
            }
        }
        Ok(())
    }

    /// Collects finished groups into request outputs, recording latency
    /// metrics and lifecycle events.
    pub(crate) fn reap(&mut self) -> Result<Vec<RequestOutput>> {
        let finished_groups = self.scheduler.reap_finished()?;
        let mut outputs = Vec::with_capacity(finished_groups.len());
        for group in finished_groups {
            let output = self.make_request_output(&group);
            if !output.outputs.is_empty() {
                let e2e = output.finish_time - output.arrival_time;
                self.latency.record_request(
                    output.arrival_time,
                    output.finish_time,
                    output.mean_output_len(),
                    output.first_token_time,
                );
                self.tmetrics
                    .observe_request(e2e, e2e / output.mean_output_len().max(1.0));
                // The decode span is emitted exactly when the e2e histogram
                // observes a sample, so span-duration sums and histogram
                // sums agree (the trace bench's CI gate).
                if group.trace.is_active() {
                    let d = group.trace.child(3);
                    self.telemetry.spans().record(Span {
                        trace_id: d.trace_id,
                        span_id: d.span_id,
                        parent_span_id: d.parent_span_id,
                        name: "decode".to_string(),
                        start: output.first_token_time.unwrap_or(self.clock),
                        end: self.clock,
                        attrs: Vec::new(),
                    });
                }
            }
            if group.trace.is_active() {
                // A group reaped without outputs (abort, kill, deadline) died
                // mid-phase: its prefill or decode span was never closed, but
                // kernel spans were already recorded under those contexts.
                // Close the open phase here, marked truncated, so every
                // recorded parent resolves. Truncated spans are deliberately
                // excluded from the span/e2e consistency gate — only clean
                // decode spans pair 1:1 with e2e histogram samples.
                if output.outputs.is_empty() {
                    let open_phase = match group.first_token_time {
                        Some(first_token) => Some((group.trace.child(3), "decode", first_token)),
                        None => group
                            .first_scheduled_time
                            .map(|t| (group.trace.child(2), "prefill", t)),
                    };
                    if let Some((ctx, name, start)) = open_phase {
                        self.telemetry.spans().record(Span {
                            trace_id: ctx.trace_id,
                            span_id: ctx.span_id,
                            parent_span_id: ctx.parent_span_id,
                            name: name.to_string(),
                            start,
                            end: self.clock,
                            attrs: vec![("truncated".to_string(), "true".to_string())],
                        });
                    }
                }
                // The attempt envelope: the span this group's context names,
                // covering the request's whole stay in this engine. Retries
                // mint sibling contexts, so their attempt spans share a
                // parent.
                self.telemetry.spans().record(Span {
                    trace_id: group.trace.trace_id,
                    span_id: group.trace.span_id,
                    parent_span_id: group.trace.parent_span_id,
                    name: "attempt".to_string(),
                    start: group.arrival_time,
                    end: self.clock,
                    attrs: vec![("request_id".to_string(), group.request_id.clone())],
                });
            }
            let deadline_cancelled = group
                .seqs()
                .iter()
                .any(|s| s.status == SequenceStatus::FinishedDeadline);
            let reason = match output.outputs.first().map(|o| o.finish_reason) {
                Some(SequenceStatus::FinishedStopped) => "stopped",
                Some(SequenceStatus::FinishedLengthCapped) => "length_capped",
                Some(_) => "other",
                None if deadline_cancelled => "deadline",
                None => "aborted",
            };
            self.telemetry.events().record(
                &output.request_id,
                self.clock,
                EventKind::Finished {
                    reason: reason.to_string(),
                },
            );
            outputs.push(output);
        }
        Ok(outputs)
    }

    fn make_request_output(&self, group: &SequenceGroup) -> RequestOutput {
        let mut completions: Vec<CompletionOutput> = group
            .seqs()
            .iter()
            .filter(|s| {
                matches!(
                    s.status,
                    SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                )
            })
            .map(|s| CompletionOutput {
                seq_id: s.seq_id,
                tokens: s.data.tokens()[s.data.original_prompt_len()..].to_vec(),
                cumulative_logprob: s.cumulative_logprob,
                finish_reason: s.status,
            })
            .collect();
        // Beam search returns the best `n` hypotheses.
        completions.sort_by(|a, b| b.cumulative_logprob.total_cmp(&a.cumulative_logprob));
        completions.truncate(group.sampling_params.n.max(1));
        let prompt_len = group
            .seqs()
            .first()
            .map_or(0, |s| s.data.original_prompt_len());
        RequestOutput {
            request_id: group.request_id.clone(),
            prompt_len,
            outputs: completions,
            arrival_time: group.arrival_time,
            finish_time: self.clock,
            first_token_time: group.first_token_time,
            num_preemptions: group.num_preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{CacheConfig, SchedulerConfig};
    use crate::engine::LlmEngine;
    use crate::mock::MockExecutor;
    use crate::sampling::SamplingParams;
    use crate::sequence::SequenceStatus;

    const BS: usize = 4;

    fn engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
        let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
        LlmEngine::new(MockExecutor::new(1000), cache, sched)
    }

    #[test]
    fn eos_stops_generation() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((7, 8));
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(64).with_eos(7))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        // Position 8 emits eos: tokens at positions 3..=8 → 6 generated.
        assert_eq!(outs[0].outputs[0].tokens.len(), 6);
        assert_eq!(outs[0].outputs[0].tokens.last(), Some(&7));
        assert_eq!(
            outs[0].outputs[0].finish_reason,
            SequenceStatus::FinishedStopped
        );
    }

    #[test]
    fn ignore_eos_runs_to_max_tokens() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((7, 2));
        e.add_request(
            "r0",
            vec![1, 2, 3],
            SamplingParams::greedy(10).with_eos(7).with_ignore_eos(),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.len(), 10);
    }

    #[test]
    fn parallel_sampling_forks_and_shares() {
        let mut e = engine(64, 0);
        e.add_request("r0", (0..10).collect(), SamplingParams::parallel(4, 6))
            .unwrap();
        // Prompt step: forks happen here.
        e.step().unwrap();
        let bm = e.scheduler().block_manager();
        // 10-token prompt = 3 blocks shared by 4 sequences; logical = 12.
        assert_eq!(bm.num_logical_gpu_blocks(), 12);
        assert!(bm.num_allocated_gpu_blocks() <= 4); // 3 shared + ≤1 CoW.
        assert!(bm.sharing_savings() > 0.5);
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs.len(), 4);
        for o in &outs[0].outputs {
            assert_eq!(o.tokens.len(), 6);
        }
        // Samples must differ (different seq ids perturb the hash).
        let t0 = &outs[0].outputs[0].tokens;
        assert!(outs[0].outputs[1..].iter().any(|o| &o.tokens != t0));
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn parallel_sampling_triggers_cow() {
        let mut e = engine(64, 0);
        // Prompt of 6: last block half-full → children CoW on first append.
        e.add_request("r0", (0..6).collect(), SamplingParams::parallel(2, 4))
            .unwrap();
        e.run_to_completion().unwrap();
        assert!(e.scheduler().block_manager().num_cow_copies() >= 1);
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn beam_search_produces_width_outputs() {
        let mut e = engine(64, 0);
        e.add_request("r0", (0..8).collect(), SamplingParams::beam(4, 5))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].outputs.len(), 4);
        for o in &outs[0].outputs {
            assert_eq!(o.tokens.len(), 5);
        }
        // Outputs sorted by cumulative logprob.
        for w in outs[0].outputs.windows(2) {
            assert!(w[0].cumulative_logprob >= w[1].cumulative_logprob);
        }
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn beam_search_with_eos_collects_hypotheses() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((3, 12));
        e.add_request(
            "r0",
            (0..8).map(|t| t + 100).collect(),
            SamplingParams::beam(2, 32).with_eos(3),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs.len(), 2);
        assert!(outs[0]
            .outputs
            .iter()
            .all(|o| o.finish_reason == SequenceStatus::FinishedStopped));
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn stop_token_list_halts_generation() {
        let mut e = engine(64, 0);
        // Mock emits eos-like token 7 at positions divisible by 8.
        e.executor_mut().eos_token = Some((7, 8));
        e.add_request(
            "r0",
            vec![1, 2, 3],
            SamplingParams::greedy(64).with_stop_tokens(vec![5, 7]),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.last(), Some(&7));
        assert_eq!(
            outs[0].outputs[0].finish_reason,
            SequenceStatus::FinishedStopped
        );
    }

    #[test]
    fn is_stop_token_rules() {
        let p = SamplingParams::greedy(4)
            .with_eos(2)
            .with_stop_tokens(vec![9]);
        assert!(p.is_stop_token(2));
        assert!(p.is_stop_token(9));
        assert!(!p.is_stop_token(3));
        let p = p.with_ignore_eos();
        assert!(!p.is_stop_token(2));
        assert!(!p.is_stop_token(9));
    }
}
