//! KV-handoff payloads for disaggregated prefill/decode serving.
//!
//! Disaggregation splits the fleet into prefill and decode pools: a request
//! prefills on one replica and decodes on another, so the prefix KV computed
//! during prefill must *move*. This module defines the unit of that move —
//! a [`HandoffPayload`] of serialized block ranges — and a wire codec that
//! ships it over the line-oriented protocol as one hex-encoded frame.
//!
//! The payload respects the backend's [`KvElement`]-style storage layout:
//! plain `f32` K/V, or int8-quantized K/V with one `f32` dequantization
//! scale per stored vector (`quant-kv8`). Scales travel with the values, so
//! a quantized block reinstalls bit-identically on the target.
//!
//! Installation on the receiving engine is journaled: the payload's blocks
//! become [`KvBlockInstall`] entries in the step's
//! [`CacheOps`](crate::executor::CacheOps), applied by the executor under
//! the same ordering contract as swaps and copies. That keeps the handoff
//! path on the paper's §4.3 control-message design — the scheduler
//! piggybacks memory management on the step — rather than adding a side
//! channel that mutates KV behind the journal's back.
//!
//! Codec errors (truncation, corruption, checksum mismatch) surface as
//! [`VllmError::Protocol`]: resending the same bytes cannot help, so the
//! error is terminal for that transfer attempt and the caller re-exports.

use crate::block::PhysicalBlockId;
use crate::error::{Result, VllmError};
use crate::sampling::TokenId;

/// One block's worth of serialized KV, layout-tagged.
///
/// Vectors cover all layers concatenated layer-major, exactly as the pool
/// stores them: `n_layers * block_size * hidden` values and, for the
/// quantized layout, `n_layers * block_size` per-slot scales. Backends
/// without addressable KV storage (the scripted mock, the discrete-event
/// simulator) export empty-bodied blocks: the bookkeeping and wire path are
/// exercised end to end while installation is a no-op.
#[derive(Debug, Clone, PartialEq)]
pub enum KvBlockBytes {
    /// Plain `f32` K/V values.
    F32 {
        /// Key values, layer-major.
        k: Vec<f32>,
        /// Value values, layer-major.
        v: Vec<f32>,
    },
    /// Int8-quantized K/V with one `f32` dequantization scale per vector.
    Int8 {
        /// Quantized key values, layer-major.
        k: Vec<i8>,
        /// Quantized value values, layer-major.
        v: Vec<i8>,
        /// Per-slot key scales, layer-major.
        k_scales: Vec<f32>,
        /// Per-slot value scales, layer-major.
        v_scales: Vec<f32>,
    },
}

impl KvBlockBytes {
    /// An empty f32 block (used by backends with no addressable KV).
    #[must_use]
    pub fn empty() -> Self {
        Self::F32 {
            k: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Whether the block carries no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            Self::F32 { k, v } => k.is_empty() && v.is_empty(),
            Self::Int8 { k, v, .. } => k.is_empty() && v.is_empty(),
        }
    }

    /// Approximate payload size in bytes (capacity planning / metrics).
    #[must_use]
    pub fn num_bytes(&self) -> usize {
        match self {
            Self::F32 { k, v } => (k.len() + v.len()) * 4,
            Self::Int8 {
                k,
                v,
                k_scales,
                v_scales,
            } => k.len() + v.len() + (k_scales.len() + v_scales.len()) * 4,
        }
    }
}

/// One journaled installation: write `data` into physical GPU block `dst`.
///
/// Carried in [`CacheOps::installs`](crate::executor::CacheOps::installs)
/// and applied after swap-ins and copies — the installed blocks are fresh
/// anchor allocations, so no earlier operation in the step can reference
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct KvBlockInstall {
    /// Destination physical GPU block.
    pub dst: PhysicalBlockId,
    /// Serialized block contents.
    pub data: KvBlockBytes,
}

/// A complete KV handoff: everything the decode replica needs to resume a
/// request whose prefill (and first sampled token) happened elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct HandoffPayload {
    /// Request being migrated.
    pub request_id: String,
    /// Prompt tokens whose KV the payload carries.
    pub tokens: Vec<TokenId>,
    /// First sampled token, produced by the prefill replica. `None` for
    /// pure prefix-tier shipments (no sampling happened).
    pub first_token: Option<TokenId>,
    /// Sampling seed the decode replica must continue with.
    pub seed: u64,
    /// Tokens per block on the source (must match the target).
    pub block_size: usize,
    /// Serialized blocks, in logical order; `tokens.len().div_ceil(block_size)`
    /// entries.
    pub blocks: Vec<KvBlockBytes>,
}

impl HandoffPayload {
    /// Validates internal consistency (block count vs token count).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::Protocol`] when the block count disagrees with
    /// the token count, or the payload is empty.
    pub fn validate(&self) -> Result<()> {
        if self.tokens.is_empty() {
            return Err(VllmError::Protocol("handoff payload has no tokens".into()));
        }
        if self.block_size == 0 {
            return Err(VllmError::Protocol("handoff block_size is zero".into()));
        }
        let want = self.tokens.len().div_ceil(self.block_size);
        if self.blocks.len() != want {
            return Err(VllmError::Protocol(format!(
                "handoff block count {} disagrees with {} tokens at block size {} (want {})",
                self.blocks.len(),
                self.tokens.len(),
                self.block_size,
                want
            )));
        }
        Ok(())
    }

    /// Total serialized KV bytes across all blocks.
    #[must_use]
    pub fn kv_bytes(&self) -> usize {
        self.blocks.iter().map(KvBlockBytes::num_bytes).sum()
    }

    /// Encodes the payload as one hex line for the tab-separated wire
    /// protocol (no tabs, no newlines), with a trailing FNV-1a checksum.
    #[must_use]
    pub fn encode_wire(&self) -> String {
        let mut w = ByteWriter::new();
        w.str(&self.request_id);
        w.u64(self.tokens.len() as u64);
        for &t in &self.tokens {
            w.u32(t);
        }
        match self.first_token {
            Some(t) => {
                w.u8(1);
                w.u32(t);
            }
            None => w.u8(0),
        }
        w.u64(self.seed);
        w.u64(self.block_size as u64);
        w.u64(self.blocks.len() as u64);
        for b in &self.blocks {
            match b {
                KvBlockBytes::F32 { k, v } => {
                    w.u8(0);
                    w.f32s(k);
                    w.f32s(v);
                }
                KvBlockBytes::Int8 {
                    k,
                    v,
                    k_scales,
                    v_scales,
                } => {
                    w.u8(1);
                    w.i8s(k);
                    w.i8s(v);
                    w.f32s(k_scales);
                    w.f32s(v_scales);
                }
            }
        }
        let checksum = fnv1a(&w.buf);
        w.u64(checksum);
        hex_encode(&w.buf)
    }

    /// Decodes a payload from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::Protocol`] on malformed hex, truncation, a
    /// checksum mismatch, or an inconsistent payload.
    pub fn decode_wire(line: &str) -> Result<Self> {
        let buf = hex_decode(line)?;
        if buf.len() < 8 {
            return Err(VllmError::Protocol("handoff frame truncated".into()));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let want = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body) != want {
            return Err(VllmError::Protocol("handoff checksum mismatch".into()));
        }
        let mut r = ByteReader::new(body);
        let request_id = r.str()?;
        let n_tokens = r.u64()? as usize;
        if n_tokens > body.len() {
            return Err(VllmError::Protocol("handoff token count corrupt".into()));
        }
        let mut tokens = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            tokens.push(r.u32()?);
        }
        let first_token = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            _ => {
                return Err(VllmError::Protocol(
                    "handoff first-token flag corrupt".into(),
                ))
            }
        };
        let seed = r.u64()?;
        let block_size = r.u64()? as usize;
        let n_blocks = r.u64()? as usize;
        if n_blocks > body.len() {
            return Err(VllmError::Protocol("handoff block count corrupt".into()));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let block = match r.u8()? {
                0 => KvBlockBytes::F32 {
                    k: r.f32s()?,
                    v: r.f32s()?,
                },
                1 => KvBlockBytes::Int8 {
                    k: r.i8s()?,
                    v: r.i8s()?,
                    k_scales: r.f32s()?,
                    v_scales: r.f32s()?,
                },
                _ => return Err(VllmError::Protocol("handoff layout tag corrupt".into())),
            };
            blocks.push(block);
        }
        if !r.at_end() {
            return Err(VllmError::Protocol(
                "handoff frame has trailing bytes".into(),
            ));
        }
        let payload = Self {
            request_id,
            tokens,
            first_token,
            seed,
            block_size,
            blocks,
        };
        payload.validate()?;
        Ok(payload)
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(VllmError::Protocol("odd-length hex frame".into()));
    }
    let nib = |c: u8| -> Result<u8> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(VllmError::Protocol(format!(
                "invalid hex byte {:?} in handoff frame",
                c as char
            ))),
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Ok(out)
}

/// Minimal little-endian length-prefixed writer.
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn i8s(&mut self, vs: &[i8]) {
        self.u64(vs.len() as u64);
        self.buf.extend(vs.iter().map(|&v| v as u8));
    }
}

/// Matching reader; every accessor fails with [`VllmError::Protocol`] on
/// truncation.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(VllmError::Protocol("handoff frame truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn len_prefix(&mut self) -> Result<usize> {
        let n = self.u64()? as usize;
        if n > self.buf.len() {
            return Err(VllmError::Protocol("handoff length prefix corrupt".into()));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String> {
        let n = self.len_prefix()?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| VllmError::Protocol("handoff string not utf-8".into()))
    }
    fn f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.len_prefix()?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
    fn i8s(&mut self) -> Result<Vec<i8>> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_f32() -> HandoffPayload {
        HandoffPayload {
            request_id: "req-7".into(),
            tokens: (1..=20).collect(),
            first_token: Some(42),
            seed: 0xdead_beef,
            block_size: 16,
            blocks: vec![
                KvBlockBytes::F32 {
                    k: vec![1.5, -2.25, 0.0],
                    v: vec![3.0, 4.5, -6.75],
                },
                KvBlockBytes::F32 {
                    k: vec![7.0],
                    v: vec![-8.0],
                },
            ],
        }
    }

    fn sample_q8() -> HandoffPayload {
        HandoffPayload {
            request_id: "q".into(),
            tokens: vec![5, 6, 7],
            first_token: None,
            seed: 1,
            block_size: 4,
            blocks: vec![KvBlockBytes::Int8 {
                k: vec![1, -2, 127, -127],
                v: vec![0, 3, -4, 5],
                k_scales: vec![0.01, 0.02],
                v_scales: vec![0.03, 0.04],
            }],
        }
    }

    #[test]
    fn wire_round_trip_f32() {
        let p = sample_f32();
        let line = p.encode_wire();
        assert!(!line.contains('\t') && !line.contains('\n'));
        assert_eq!(HandoffPayload::decode_wire(&line).unwrap(), p);
    }

    #[test]
    fn wire_round_trip_q8_preserves_scales() {
        let p = sample_q8();
        let got = HandoffPayload::decode_wire(&p.encode_wire()).unwrap();
        assert_eq!(got, p);
        match &got.blocks[0] {
            KvBlockBytes::Int8 { k_scales, .. } => assert_eq!(k_scales, &vec![0.01, 0.02]),
            KvBlockBytes::F32 { .. } => panic!("layout tag lost"),
        }
    }

    #[test]
    fn corruption_is_a_protocol_error() {
        let mut line = sample_f32().encode_wire();
        // Flip one hex digit mid-frame.
        let mid = line.len() / 2;
        let flipped = if &line[mid..=mid] == "0" { "1" } else { "0" };
        line.replace_range(mid..=mid, flipped);
        let err = HandoffPayload::decode_wire(&line).unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::Protocol);
        assert!(!err.is_retryable());
    }

    #[test]
    fn truncation_is_a_protocol_error() {
        let line = sample_f32().encode_wire();
        let err = HandoffPayload::decode_wire(&line[..10]).unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::Protocol);
    }

    #[test]
    fn validate_rejects_block_count_mismatch() {
        let mut p = sample_f32();
        p.blocks.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn kv_bytes_accounting() {
        assert_eq!(sample_f32().kv_bytes(), (3 + 3 + 1 + 1) * 4);
        assert_eq!(sample_q8().kv_bytes(), 4 + 4 + (2 + 2) * 4);
        assert!(KvBlockBytes::empty().is_empty());
    }
}
