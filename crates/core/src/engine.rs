//! The LLM serving engine (Fig. 4): a step loop that couples the scheduler
//! and block manager with a pluggable [`ModelExecutor`].
//!
//! Each [`LlmEngine::step`] call plans one iteration, hands the executor the
//! batch plus the pending cache operations, applies the outputs (sampled
//! tokens, parallel-sampling forks, beam-search updates), and reaps finished
//! requests. Time is virtual: the executor reports how long the iteration
//! took (wall-clock for the numeric backend, modeled for the simulator), so
//! the same engine drives both real inference and trace-driven evaluation.

use std::collections::HashMap;

use crate::beam::{plan_beam_step, BeamInput, BeamPlan};
use crate::config::{CacheConfig, SchedulerConfig};
use crate::error::{Result, VllmError};
use crate::executor::{CacheOps, ExecutionBatch, ModelExecutor, SeqStepInput, StepResult};
use crate::metrics::{LatencyTracker, MemoryStats, StepSnapshot};
use crate::prefix::{PrefixId, PrefixPool};
use crate::sampling::{DecodingMode, SamplingParams, TokenId};
use crate::scheduler::{Scheduler, SchedulerOutputs};
use crate::sequence::{SeqId, Sequence, SequenceGroup, SequenceStatus};

/// One finished output sequence of a request.
#[derive(Debug, Clone)]
pub struct CompletionOutput {
    /// Sequence id.
    pub seq_id: SeqId,
    /// Generated tokens (relative to the original user prompt).
    pub tokens: Vec<TokenId>,
    /// Cumulative log-probability (meaningful for beam search).
    pub cumulative_logprob: f64,
    /// Terminal status of the sequence.
    pub finish_reason: SequenceStatus,
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct RequestOutput {
    /// Request id.
    pub request_id: String,
    /// Original prompt length in tokens.
    pub prompt_len: usize,
    /// Output sequences (the best `n` for beam search).
    pub outputs: Vec<CompletionOutput>,
    /// Arrival time (virtual seconds).
    pub arrival_time: f64,
    /// Completion time (virtual seconds).
    pub finish_time: f64,
    /// Time the first output token was produced, if any.
    pub first_token_time: Option<f64>,
    /// How often the request was preempted.
    pub num_preemptions: u32,
}

impl RequestOutput {
    /// Mean number of generated tokens per output sequence.
    #[must_use]
    pub fn mean_output_len(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.outputs.iter().map(|o| o.tokens.len()).sum::<usize>() as f64
            / self.outputs.len() as f64
    }
}

/// FNV-1a hash used to derive deterministic per-request sampling seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serving engine, generic over the execution backend.
#[derive(Debug)]
pub struct LlmEngine<E: ModelExecutor> {
    scheduler: Scheduler,
    executor: E,
    cache_config: CacheConfig,
    next_seq_id: SeqId,
    clock: f64,
    latency: LatencyTracker,
    memory_stats: MemoryStats,
    prefix_pool: PrefixPool,
    /// Automatically match new prompts against registered prefixes.
    auto_prefix_match: bool,
    /// Whether forked sequences share blocks (copy-on-write). Disabling
    /// this replicates blocks eagerly — the contiguous-system behaviour —
    /// for the sharing ablation.
    sharing_enabled: bool,
    /// Copies produced by eager forks, executed with the next step.
    pending_copies: Vec<crate::block_manager::BlockCopy>,
    /// Requests whose KV cache is promoted to the prefix cache on finish
    /// (conversation reuse extension).
    retain_requests: std::collections::HashSet<String>,
    /// Prefix ids produced by retention, keyed by request id.
    promoted_prefixes: HashMap<String, PrefixId>,
}

impl<E: ModelExecutor> LlmEngine<E> {
    /// Creates an engine over a fresh scheduler and block manager.
    #[must_use]
    pub fn new(executor: E, cache_config: CacheConfig, scheduler_config: SchedulerConfig) -> Self {
        let scheduler = Scheduler::new(scheduler_config, &cache_config);
        Self {
            scheduler,
            executor,
            cache_config,
            next_seq_id: 0,
            clock: 0.0,
            latency: LatencyTracker::new(),
            memory_stats: MemoryStats::new(),
            prefix_pool: PrefixPool::new(),
            auto_prefix_match: true,
            sharing_enabled: true,
            pending_copies: Vec::new(),
            retain_requests: std::collections::HashSet::new(),
            promoted_prefixes: HashMap::new(),
        }
    }

    /// Disables automatic shared-prefix matching (ablation).
    pub fn set_auto_prefix_match(&mut self, enabled: bool) {
        self.auto_prefix_match = enabled;
    }

    /// Enables or disables block sharing between forked sequences
    /// (ablation). With sharing off, every fork eagerly copies the parent's
    /// blocks, as a contiguous-KV system must, and admission reserves the
    /// request's full fan-out.
    pub fn set_block_sharing(&mut self, enabled: bool) {
        self.sharing_enabled = enabled;
        self.scheduler.block_manager_mut().fanout_admission = !enabled;
    }

    /// Forks the child's block table from the parent, honouring the sharing
    /// ablation switch.
    fn fork_blocks(&mut self, parent: SeqId, child: SeqId) -> Result<()> {
        if self.sharing_enabled {
            self.scheduler.fork_seq(parent, child)
        } else {
            let copies = self
                .scheduler
                .block_manager_mut()
                .fork_eager(parent, child)?;
            self.pending_copies.extend(copies);
            Ok(())
        }
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the virtual clock (used by trace drivers while idle).
    pub fn advance_clock_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// The scheduler (queue/occupancy introspection).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The execution backend.
    #[must_use]
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// The execution backend, mutably.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Per-request latency metrics.
    #[must_use]
    pub fn latency(&self) -> &LatencyTracker {
        &self.latency
    }

    /// Time-weighted memory/batch metrics.
    #[must_use]
    pub fn memory_stats(&self) -> &MemoryStats {
        &self.memory_stats
    }

    /// Whether any request is queued, running, or swapped.
    #[must_use]
    pub fn has_unfinished(&self) -> bool {
        self.scheduler.has_unfinished()
    }

    /// Adds a request arriving now.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] for invalid sampling parameters.
    pub fn add_request(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        params: SamplingParams,
    ) -> Result<()> {
        let now = self.clock;
        self.add_request_at(request_id, prompt, params, now)
    }

    /// Adds a request with an explicit arrival time (trace replay).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] for invalid sampling parameters
    /// or an empty prompt.
    pub fn add_request_at(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        params: SamplingParams,
        arrival_time: f64,
    ) -> Result<()> {
        params.validate()?;
        if prompt.is_empty() {
            return Err(VllmError::InvalidConfig("empty prompt".into()));
        }
        let request_id = request_id.into();
        let seq = Sequence::new(
            self.alloc_seq_id(),
            prompt.clone(),
            self.cache_config.block_size,
        );
        let mut group = SequenceGroup::new(request_id, seq, params, arrival_time);
        if self.auto_prefix_match {
            if let Some(pid) = self.prefix_pool.match_prompt(&prompt) {
                let prefix = self.prefix_pool.get(pid).expect("matched prefix exists");
                group.cached_prefix_len = prefix.len();
                group.prefix_blocks = prefix.blocks.clone();
            }
        }
        self.scheduler.add_group(group);
        Ok(())
    }

    /// Aborts a live request.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if no live group matches.
    pub fn abort_request(&mut self, request_id: &str) -> Result<()> {
        self.scheduler.abort(request_id)
    }

    /// Registers a shared prefix (§4.4): pins blocks for it and runs a
    /// KV-only prefill so later prompts that start with `tokens` skip the
    /// prefix computation and share its blocks.
    ///
    /// This is an offline provisioning step; it does not advance the serving
    /// clock.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] if the pool cannot pin the
    /// prefix, or executor errors from the warm-up run.
    pub fn register_prefix(&mut self, tokens: Vec<TokenId>) -> Result<PrefixId> {
        if tokens.is_empty() {
            return Err(VllmError::InvalidConfig("empty prefix".into()));
        }
        let bs = self.cache_config.block_size;
        let n = tokens.len().div_ceil(bs);
        let blocks = self
            .scheduler
            .block_manager_mut()
            .allocate_anchor_blocks(n)?;
        let warmup = ExecutionBatch {
            items: vec![SeqStepInput {
                // Prefix warm-ups use a reserved id space far above request
                // sequence ids.
                seq_id: u64::MAX - self.prefix_pool.len() as u64,
                tokens: tokens.clone(),
                first_position: 0,
                num_cached_tokens: 0,
                block_table: blocks.clone(),
                num_candidates: 0,
                mode: DecodingMode::Greedy,
                seed: 0,
            }],
            is_prompt_run: true,
            cache_ops: CacheOps::default(),
            block_size: bs,
        };
        self.executor.execute(&warmup)?;
        let id = self.prefix_pool.insert(tokens, blocks);
        self.prefix_pool.mark_computed(id);
        Ok(id)
    }

    /// Marks a live request for KV retention: when its (single) sequence
    /// finishes, its computed KV blocks are promoted into the prefix cache
    /// in place — no copy, no recompute — so a follow-up prompt extending
    /// this conversation skips the history prefill. Fetch the resulting id
    /// with [`Self::promoted_prefix`].
    ///
    /// Only meaningful for `n == 1` requests; beam/parallel requests are
    /// not promoted.
    pub fn retain_kv(&mut self, request_id: impl Into<String>) {
        self.retain_requests.insert(request_id.into());
    }

    /// The prefix id produced by [`Self::retain_kv`] for a finished
    /// request, if promotion happened.
    #[must_use]
    pub fn promoted_prefix(&self, request_id: &str) -> Option<PrefixId> {
        self.promoted_prefixes.get(request_id).copied()
    }

    /// Promotes a finishing sequence's KV into the prefix cache. Returns
    /// `true` when the blocks were taken over (caller must then skip the
    /// free).
    fn promote_seq_to_prefix(&mut self, request_id: &str, seq_id: SeqId) -> Result<bool> {
        let (tokens, computed) = {
            let group = self
                .scheduler
                .group(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            (seq.data.tokens().to_vec(), seq.data.num_computed_tokens())
        };
        if computed == 0 {
            return Ok(false);
        }
        let bs = self.cache_config.block_size;
        let num_blocks = computed.div_ceil(bs);
        let blocks = self
            .scheduler
            .block_manager_mut()
            .take_table_as_anchor(seq_id, num_blocks)?;
        let id = self.prefix_pool.insert(tokens[..computed].to_vec(), blocks);
        self.prefix_pool.mark_computed(id);
        self.promoted_prefixes.insert(request_id.to_string(), id);
        Ok(true)
    }

    /// Releases a registered prefix, unpinning its blocks. In-flight
    /// requests that already mapped the prefix keep their references; the
    /// blocks are reclaimed once the last sharer frees them.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if the prefix id is unknown or
    /// already released.
    pub fn release_prefix(&mut self, id: PrefixId) -> Result<()> {
        let prefix = self
            .prefix_pool
            .remove(id)
            .ok_or_else(|| VllmError::UnknownRequest(format!("prefix {id}")))?;
        self.scheduler
            .block_manager_mut()
            .free_anchor_blocks(&prefix.blocks)
    }

    /// Runs one iteration: schedule, execute, apply outputs, reap finished.
    /// Returns the requests that finished during this step.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and executor errors.
    pub fn step(&mut self) -> Result<Vec<RequestOutput>> {
        let sched = self.scheduler.schedule()?;
        if sched.is_empty() {
            return self.reap();
        }

        let batch = self.build_batch(&sched)?;
        let result = self.executor.execute(&batch)?;
        self.clock += result.elapsed;
        self.record_step_metrics(&sched, result.elapsed);
        self.process_outputs(&sched, &result)?;
        self.reap()
    }

    /// Runs steps until every request finishes, returning all outputs.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_to_completion(&mut self) -> Result<Vec<RequestOutput>> {
        let mut all = Vec::new();
        while self.has_unfinished() {
            all.extend(self.step()?);
        }
        Ok(all)
    }

    fn alloc_seq_id(&mut self) -> SeqId {
        let id = self.next_seq_id;
        self.next_seq_id += 1;
        id
    }

    fn build_batch(&mut self, sched: &SchedulerOutputs) -> Result<ExecutionBatch> {
        let mut items = Vec::new();
        let pending_copies = std::mem::take(&mut self.pending_copies);
        for sg in &sched.scheduled {
            let group = self
                .scheduler
                .group(&sg.request_id)
                .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?;
            let params = &group.sampling_params;
            let base_seed = params
                .seed
                .unwrap_or_else(|| fnv1a(group.request_id.as_bytes()));
            for &seq_id in &sg.seq_ids {
                let seq = group
                    .get(seq_id)
                    .ok_or(VllmError::UnknownSequence(seq_id))?;
                let block_table = self.scheduler.block_manager().gpu_block_ids(seq_id)?;
                let (tokens, first_position) = if sg.is_prompt {
                    (seq.data.tokens().to_vec(), 0)
                } else {
                    let last = seq
                        .data
                        .last_token()
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    (vec![last], seq.len() - 1)
                };
                let num_candidates = if sg.is_prompt {
                    match params.mode {
                        DecodingMode::Beam { width } => 2 * width,
                        _ => params.n,
                    }
                } else {
                    params.candidates_per_seq()
                };
                items.push(SeqStepInput {
                    seq_id,
                    tokens,
                    first_position,
                    num_cached_tokens: if sg.is_prompt {
                        sg.num_cached_tokens
                    } else {
                        0
                    },
                    block_table,
                    num_candidates,
                    mode: params.mode,
                    seed: base_seed,
                });
            }
        }
        Ok(ExecutionBatch {
            items,
            is_prompt_run: sched.is_prompt_run,
            cache_ops: CacheOps {
                swap_in: sched.blocks_to_swap_in.clone(),
                swap_out: sched.blocks_to_swap_out.clone(),
                copies: {
                    // Eager-fork copies from the previous step run first.
                    let mut copies = pending_copies;
                    copies.extend(sched.blocks_to_copy.iter().copied());
                    copies
                },
            },
            block_size: self.cache_config.block_size,
        })
    }

    fn record_step_metrics(&mut self, sched: &SchedulerOutputs, elapsed: f64) {
        let bm = self.scheduler.block_manager();
        let groups = self.scheduler.running_groups();
        let running_seqs: usize = groups
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum();
        let all_seqs = groups.iter().flat_map(|g| g.seqs().into_iter());
        let used_slots = bm.used_gpu_slots(all_seqs);
        let bs = self.cache_config.block_size;
        self.memory_stats.observe(&StepSnapshot {
            duration: elapsed,
            running_requests: groups.len(),
            running_seqs,
            batched_tokens: sched.num_batched_tokens,
            used_slots,
            allocated_slots: bm.num_allocated_gpu_blocks() * bs,
            total_slots: bm.num_total_gpu_blocks() * bs,
            sharing_savings: bm.sharing_savings(),
            logical_blocks: bm.num_logical_gpu_blocks(),
            physical_blocks: bm.num_allocated_gpu_blocks(),
        });
    }

    fn process_outputs(&mut self, sched: &SchedulerOutputs, result: &StepResult) -> Result<()> {
        let out_map: HashMap<SeqId, &Vec<(TokenId, f32)>> = result
            .outputs
            .iter()
            .map(|o| (o.seq_id, &o.candidates))
            .collect();

        for sg in &sched.scheduled {
            // Mark the KV cache as computed up to the current length.
            {
                let group = self
                    .scheduler
                    .group_mut(&sg.request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?;
                if group.first_token_time.is_none() {
                    group.first_token_time = Some(self.clock);
                }
                for &seq_id in &sg.seq_ids {
                    let seq = group
                        .get_mut(seq_id)
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    let len = seq.len();
                    seq.data.set_num_computed_tokens(len);
                }
            }

            let params = self
                .scheduler
                .group(&sg.request_id)
                .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?
                .sampling_params
                .clone();

            if let DecodingMode::Beam { width } = params.mode {
                self.process_beam_group(
                    sg.request_id.clone(),
                    &sg.seq_ids,
                    &out_map,
                    width,
                    &params,
                )?;
            } else if sg.is_prompt && params.n > 1 {
                self.process_parallel_prompt(&sg.request_id, sg.seq_ids[0], &out_map, &params)?;
            } else {
                for &seq_id in &sg.seq_ids {
                    let cands = out_map
                        .get(&seq_id)
                        .ok_or(VllmError::UnknownSequence(seq_id))?;
                    let &(token, logprob) = cands
                        .first()
                        .ok_or_else(|| VllmError::Executor("missing candidate".into()))?;
                    self.append_and_check(&sg.request_id, seq_id, token, logprob, &params)?;
                }
            }
        }
        Ok(())
    }

    /// Parallel sampling prompt step (Fig. 8): the executor sampled `n`
    /// tokens from the prompt's distribution; fork `n - 1` children that
    /// share the prompt's blocks, then append each sample to its sequence.
    fn process_parallel_prompt(
        &mut self,
        request_id: &str,
        parent: SeqId,
        out_map: &HashMap<SeqId, &Vec<(TokenId, f32)>>,
        params: &SamplingParams,
    ) -> Result<()> {
        let cands = (*out_map
            .get(&parent)
            .ok_or(VllmError::UnknownSequence(parent))?)
        .clone();
        if cands.len() < params.n {
            return Err(VllmError::Executor(format!(
                "expected {} samples, got {}",
                params.n,
                cands.len()
            )));
        }
        let child_ids: Vec<SeqId> = (1..params.n).map(|_| self.alloc_seq_id()).collect();
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            for &cid in &child_ids {
                let child = group
                    .get(parent)
                    .ok_or(VllmError::UnknownSequence(parent))?
                    .fork(cid);
                group.add(child);
            }
        }
        for &cid in &child_ids {
            self.fork_blocks(parent, cid)?;
        }
        // Append sample 0 to the parent, sample i to child i-1.
        let seq_ids: Vec<SeqId> = std::iter::once(parent).chain(child_ids).collect();
        for (i, &sid) in seq_ids.iter().enumerate() {
            let (token, logprob) = cands[i];
            self.append_and_check(request_id, sid, token, logprob, params)?;
        }
        Ok(())
    }

    fn process_beam_group(
        &mut self,
        request_id: String,
        seq_ids: &[SeqId],
        out_map: &HashMap<SeqId, &Vec<(TokenId, f32)>>,
        width: usize,
        params: &SamplingParams,
    ) -> Result<()> {
        let plan = {
            let group = self
                .scheduler
                .group(&request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.clone()))?;
            let mut inputs = Vec::with_capacity(seq_ids.len());
            for &sid in seq_ids {
                let seq = group.get(sid).ok_or(VllmError::UnknownSequence(sid))?;
                let cands = out_map.get(&sid).ok_or(VllmError::UnknownSequence(sid))?;
                inputs.push(BeamInput {
                    seq_id: sid,
                    cumulative_logprob: seq.cumulative_logprob,
                    candidates: (*cands).clone(),
                });
            }
            let eos = if params.ignore_eos {
                None
            } else {
                params.eos_token_id
            };
            plan_beam_step(&inputs, width, eos)
        };
        self.apply_beam_plan(&request_id, &plan, width, params)
    }

    fn apply_beam_plan(
        &mut self,
        request_id: &str,
        plan: &BeamPlan,
        width: usize,
        params: &SamplingParams,
    ) -> Result<()> {
        // 1. Materialize finished (eos) hypotheses from pre-append parent
        //    state; they hold no KV blocks.
        let finished_ids: Vec<SeqId> = (0..plan.finished.len())
            .map(|_| self.alloc_seq_id())
            .collect();
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            for (ext, &cid) in plan.finished.iter().zip(&finished_ids) {
                let parent = group
                    .get(ext.parent)
                    .ok_or(VllmError::UnknownSequence(ext.parent))?;
                let mut hyp = parent.fork(cid);
                hyp.data.append_token(ext.token);
                hyp.cumulative_logprob = ext.cumulative_logprob;
                hyp.status = SequenceStatus::FinishedStopped;
                group.add(hyp);
            }
        }

        // 2. Forks share the parent's blocks before the parent appends.
        for ext in &plan.forks {
            let cid = self.alloc_seq_id();
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                let child = group
                    .get(ext.parent)
                    .ok_or(VllmError::UnknownSequence(ext.parent))?
                    .fork(cid);
                group.add(child);
            }
            self.fork_blocks(ext.parent, cid)?;
            self.append_beam_token(request_id, cid, ext.token, ext.cumulative_logprob, params)?;
        }

        // 3. Appends reuse their parent in place.
        for ext in &plan.appends {
            self.append_beam_token(
                request_id,
                ext.parent,
                ext.token,
                ext.cumulative_logprob,
                params,
            )?;
        }

        // 4. Drop parents with no surviving continuation.
        for &sid in &plan.drops {
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                if let Some(seq) = group.get_mut(sid) {
                    if !seq.is_finished() {
                        seq.status = SequenceStatus::FinishedDropped;
                    }
                }
            }
            self.scheduler.free_seq(sid)?;
        }

        // 5. Early termination: once `width` hypotheses have finished, the
        //    remaining live beams are dropped.
        let to_drop: Vec<SeqId> = {
            let group = self
                .scheduler
                .group(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let num_finished = group
                .seqs()
                .iter()
                .filter(|s| {
                    matches!(
                        s.status,
                        SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                    )
                })
                .count();
            if num_finished >= width {
                group.seq_ids_with_status(SequenceStatus::Running)
            } else {
                Vec::new()
            }
        };
        for sid in to_drop {
            {
                let group = self
                    .scheduler
                    .group_mut(request_id)
                    .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
                if let Some(seq) = group.get_mut(sid) {
                    seq.status = SequenceStatus::FinishedDropped;
                }
            }
            self.scheduler.free_seq(sid)?;
        }
        Ok(())
    }

    /// Appends a beam token with explicit cumulative logprob and applies
    /// the length-cap checks (eos was already diverted by the planner).
    fn append_beam_token(
        &mut self,
        request_id: &str,
        seq_id: SeqId,
        token: TokenId,
        cumulative_logprob: f64,
        params: &SamplingParams,
    ) -> Result<()> {
        let max_model_len = self.scheduler.config().max_model_len;
        let mut finished = false;
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get_mut(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            seq.data.append_token(token);
            seq.cumulative_logprob = cumulative_logprob;
            if seq.data.num_output_tokens() >= params.max_tokens || seq.len() >= max_model_len {
                seq.status = SequenceStatus::FinishedLengthCapped;
                finished = true;
            }
        }
        if finished {
            self.scheduler.free_seq(seq_id)?;
        }
        Ok(())
    }

    /// Appends a sampled token and applies stop conditions.
    fn append_and_check(
        &mut self,
        request_id: &str,
        seq_id: SeqId,
        token: TokenId,
        logprob: f32,
        params: &SamplingParams,
    ) -> Result<()> {
        let max_model_len = self.scheduler.config().max_model_len;
        let mut finished = false;
        {
            let group = self
                .scheduler
                .group_mut(request_id)
                .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
            let seq = group
                .get_mut(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            seq.data.append_token(token);
            seq.cumulative_logprob += f64::from(logprob);
            if params.is_stop_token(token) {
                seq.status = SequenceStatus::FinishedStopped;
                finished = true;
            } else if seq.data.num_output_tokens() >= params.max_tokens
                || seq.len() >= max_model_len
            {
                seq.status = SequenceStatus::FinishedLengthCapped;
                finished = true;
            }
        }
        if finished {
            let promoted = if self.retain_requests.remove(request_id) {
                self.promote_seq_to_prefix(request_id, seq_id)?
            } else {
                false
            };
            if !promoted {
                self.scheduler.free_seq(seq_id)?;
            }
        }
        Ok(())
    }

    fn reap(&mut self) -> Result<Vec<RequestOutput>> {
        let finished_groups = self.scheduler.reap_finished()?;
        let mut outputs = Vec::with_capacity(finished_groups.len());
        for group in finished_groups {
            let output = self.make_request_output(&group);
            if !output.outputs.is_empty() {
                self.latency.record(
                    output.arrival_time,
                    output.finish_time,
                    output.mean_output_len(),
                );
            }
            outputs.push(output);
        }
        Ok(outputs)
    }

    fn make_request_output(&self, group: &SequenceGroup) -> RequestOutput {
        let mut completions: Vec<CompletionOutput> = group
            .seqs()
            .iter()
            .filter(|s| {
                matches!(
                    s.status,
                    SequenceStatus::FinishedStopped | SequenceStatus::FinishedLengthCapped
                )
            })
            .map(|s| CompletionOutput {
                seq_id: s.seq_id,
                tokens: s.data.tokens()[s.data.original_prompt_len()..].to_vec(),
                cumulative_logprob: s.cumulative_logprob,
                finish_reason: s.status,
            })
            .collect();
        // Beam search returns the best `n` hypotheses.
        completions.sort_by(|a, b| b.cumulative_logprob.total_cmp(&a.cumulative_logprob));
        completions.truncate(group.sampling_params.n.max(1));
        let prompt_len = group
            .seqs()
            .first()
            .map_or(0, |s| s.data.original_prompt_len());
        RequestOutput {
            request_id: group.request_id.clone(),
            prompt_len,
            outputs: completions,
            arrival_time: group.arrival_time,
            finish_time: self.clock,
            first_token_time: group.first_token_time,
            num_preemptions: group.num_preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PreemptionMode;
    use crate::mock::MockExecutor;

    const BS: usize = 4;

    fn engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
        let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
        LlmEngine::new(MockExecutor::new(1000), cache, sched)
    }

    #[test]
    fn greedy_generation_end_to_end() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3, 4, 5], SamplingParams::greedy(8))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 1);
        let out = &outs[0];
        assert_eq!(out.request_id, "r0");
        assert_eq!(out.prompt_len, 5);
        assert_eq!(out.outputs.len(), 1);
        assert_eq!(out.outputs[0].tokens.len(), 8);
        assert_eq!(
            out.outputs[0].finish_reason,
            SequenceStatus::FinishedLengthCapped
        );
        // All blocks returned to the pool.
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
        assert!(e.clock() > 0.0);
    }

    #[test]
    fn eos_stops_generation() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((7, 8));
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(64).with_eos(7))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        // Position 8 emits eos: tokens at positions 3..=8 → 6 generated.
        assert_eq!(outs[0].outputs[0].tokens.len(), 6);
        assert_eq!(outs[0].outputs[0].tokens.last(), Some(&7));
        assert_eq!(
            outs[0].outputs[0].finish_reason,
            SequenceStatus::FinishedStopped
        );
    }

    #[test]
    fn ignore_eos_runs_to_max_tokens() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((7, 2));
        e.add_request(
            "r0",
            vec![1, 2, 3],
            SamplingParams::greedy(10).with_eos(7).with_ignore_eos(),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.len(), 10);
    }

    #[test]
    fn parallel_sampling_forks_and_shares() {
        let mut e = engine(64, 0);
        e.add_request("r0", (0..10).collect(), SamplingParams::parallel(4, 6))
            .unwrap();
        // Prompt step: forks happen here.
        e.step().unwrap();
        let bm = e.scheduler().block_manager();
        // 10-token prompt = 3 blocks shared by 4 sequences; logical = 12.
        assert_eq!(bm.num_logical_gpu_blocks(), 12);
        assert!(bm.num_allocated_gpu_blocks() <= 4); // 3 shared + ≤1 CoW.
        assert!(bm.sharing_savings() > 0.5);
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs.len(), 4);
        for o in &outs[0].outputs {
            assert_eq!(o.tokens.len(), 6);
        }
        // Samples must differ (different seq ids perturb the hash).
        let t0 = &outs[0].outputs[0].tokens;
        assert!(outs[0].outputs[1..].iter().any(|o| &o.tokens != t0));
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn parallel_sampling_triggers_cow() {
        let mut e = engine(64, 0);
        // Prompt of 6: last block half-full → children CoW on first append.
        e.add_request("r0", (0..6).collect(), SamplingParams::parallel(2, 4))
            .unwrap();
        e.run_to_completion().unwrap();
        assert!(e.scheduler().block_manager().num_cow_copies() >= 1);
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn beam_search_produces_width_outputs() {
        let mut e = engine(64, 0);
        e.add_request("r0", (0..8).collect(), SamplingParams::beam(4, 5))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].outputs.len(), 4);
        for o in &outs[0].outputs {
            assert_eq!(o.tokens.len(), 5);
        }
        // Outputs sorted by cumulative logprob.
        for w in outs[0].outputs.windows(2) {
            assert!(w[0].cumulative_logprob >= w[1].cumulative_logprob);
        }
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn beam_search_with_eos_collects_hypotheses() {
        let mut e = engine(64, 0);
        e.executor_mut().eos_token = Some((3, 12));
        e.add_request(
            "r0",
            (0..8).map(|t| t + 100).collect(),
            SamplingParams::beam(2, 32).with_eos(3),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs.len(), 2);
        assert!(outs[0]
            .outputs
            .iter()
            .all(|o| o.finish_reason == SequenceStatus::FinishedStopped));
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn recompute_preemption_preserves_output() {
        // Tiny pool: two requests cannot decode concurrently for long.
        let mut e = engine(6, 0);
        e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
            .unwrap();
        e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert_eq!(o.outputs[0].tokens.len(), 12, "request {}", o.request_id);
        }
        // At least one preemption must have occurred.
        assert!(e.scheduler().stats().num_preemptions > 0);
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 6);

        // Determinism: rerun without contention and compare request a.
        let mut e2 = engine(64, 0);
        e2.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
            .unwrap();
        let base = e2.run_to_completion().unwrap();
        let a_out = outs.iter().find(|o| o.request_id == "a").unwrap();
        assert_eq!(a_out.outputs[0].tokens, base[0].outputs[0].tokens);
    }

    #[test]
    fn swap_preemption_round_trip() {
        let cache = CacheConfig::new(BS, 6, 16)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let mut e = LlmEngine::new(MockExecutor::new(1000), cache, sched);
        e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
            .unwrap();
        e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 2);
        assert!(e.scheduler().stats().num_swap_preemptions > 0);
        for o in &outs {
            assert_eq!(o.outputs[0].tokens.len(), 12);
        }
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 6);
        assert_eq!(e.scheduler().block_manager().num_free_cpu_blocks(), 16);
    }

    #[test]
    fn prefix_sharing_reuses_blocks() {
        let mut e = engine(64, 0);
        let prefix: Vec<TokenId> = (0..8).collect();
        e.register_prefix(prefix.clone()).unwrap();
        let allocated_after_prefix = e.scheduler().block_manager().num_allocated_gpu_blocks();
        assert_eq!(allocated_after_prefix, 2);

        let mut prompt = prefix.clone();
        prompt.extend(200..204);
        e.add_request("r0", prompt, SamplingParams::greedy(4))
            .unwrap();
        e.step().unwrap(); // Prompt step.
                           // Prefix blocks shared: only 1 extra block allocated for the suffix.
        let bm = e.scheduler().block_manager();
        assert_eq!(bm.num_allocated_gpu_blocks(), 3);
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.len(), 4);
        // Prefix blocks stay pinned after the request finishes.
        assert_eq!(e.scheduler().block_manager().num_allocated_gpu_blocks(), 2);
    }

    #[test]
    fn prefix_match_requires_longer_prompt() {
        let mut e = engine(64, 0);
        e.register_prefix((0..8).collect()).unwrap();
        // Prompt that doesn't start with the prefix: no sharing.
        e.add_request("r0", (50..60).collect(), SamplingParams::greedy(2))
            .unwrap();
        e.step().unwrap();
        let g = e.scheduler().group("r0");
        assert!(g.is_none() || g.unwrap().cached_prefix_len == 0);
        e.run_to_completion().unwrap();
    }

    #[test]
    fn latency_tracker_records_requests() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(4))
            .unwrap();
        e.run_to_completion().unwrap();
        assert_eq!(e.latency().num_requests(), 1);
        assert!(e.latency().mean_normalized_latency().unwrap() > 0.0);
        assert!(e.memory_stats().num_steps() > 0);
    }

    #[test]
    fn abort_request_mid_flight() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(100))
            .unwrap();
        e.step().unwrap();
        e.abort_request("r0").unwrap();
        let outs = e.step().unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
        assert!(!e.has_unfinished());
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn empty_prompt_rejected() {
        let mut e = engine(64, 0);
        assert!(e
            .add_request("r0", vec![], SamplingParams::greedy(4))
            .is_err());
    }

    #[test]
    fn oversized_prompt_reported_ignored() {
        let mut e = engine(2, 0);
        e.add_request("r0", (0..1000).collect(), SamplingParams::greedy(4))
            .unwrap();
        let outs = e.step().unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
    }

    #[test]
    fn many_requests_all_complete() {
        let mut e = engine(128, 0);
        for i in 0..20 {
            e.add_request_at(
                format!("r{i}"),
                (0..(5 + i % 7) as u32).collect(),
                SamplingParams::greedy(3 + (i % 5) as usize),
                i as f64 * 0.01,
            )
            .unwrap();
        }
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 20);
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 128);
        assert_eq!(e.latency().num_requests(), 20);
    }

    #[test]
    fn stop_token_list_halts_generation() {
        let mut e = engine(64, 0);
        // Mock emits eos-like token 7 at positions divisible by 8.
        e.executor_mut().eos_token = Some((7, 8));
        e.add_request(
            "r0",
            vec![1, 2, 3],
            SamplingParams::greedy(64).with_stop_tokens(vec![5, 7]),
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.last(), Some(&7));
        assert_eq!(
            outs[0].outputs[0].finish_reason,
            SequenceStatus::FinishedStopped
        );
    }

    #[test]
    fn is_stop_token_rules() {
        let p = SamplingParams::greedy(4)
            .with_eos(2)
            .with_stop_tokens(vec![9]);
        assert!(p.is_stop_token(2));
        assert!(p.is_stop_token(9));
        assert!(!p.is_stop_token(3));
        let p = p.with_ignore_eos();
        assert!(!p.is_stop_token(2));
        assert!(!p.is_stop_token(9));
    }
}
