//! The LLM serving engine (Fig. 4): an explicit four-stage step pipeline
//! coupling the scheduler and block manager with a pluggable
//! [`ModelExecutor`].
//!
//! Each [`LlmEngine::step`] call runs the stages in order:
//!
//! 1. **schedule** — [`crate::scheduler::Scheduler::schedule`] plans the
//!    iteration as an immutable [`StepPlan`], batching all cache operations
//!    (swap in/out, copy-on-write) drained from the block manager.
//! 2. **prepare** — [`crate::plan::materialize_batch`] fills the plan with
//!    per-sequence model inputs.
//! 3. **execute** — the executor consumes the plan via
//!    [`ModelExecutor::begin_step`] and returns sampled candidates.
//! 4. **postprocess** — `crate::postprocess` applies the outputs (appended
//!    tokens, parallel-sampling forks, beam updates, stop conditions) and
//!    reaps finished requests.
//!
//! Every step — including empty ones — emits a [`StepTrace`] with per-stage
//! wall times and cache-op counts, queryable via [`LlmEngine::last_trace`]
//! and aggregated by [`LlmEngine::trace_stats`]. Serving time stays virtual:
//! the executor reports how long the iteration took (wall-clock for the
//! numeric backend, modeled for the simulator), so the same engine drives
//! both real inference and trace-driven evaluation.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use vllm_telemetry::{
    splitmix64, trace_seed, EventKind, MetricsSnapshot, SloMonitor, Span, Telemetry, TraceContext,
};

use crate::block_manager::PoolRemap;
use crate::config::{CacheConfig, SchedulerConfig};
use crate::elastic::{ElasticController, PoolPressure};
use crate::error::{Result, VllmError};
use crate::executor::{CacheOps, ModelExecutor, SeqStepInput, StepResult};
use crate::handoff::{KvBlockBytes, KvBlockInstall};
use crate::metrics::{EngineMetrics, LatencyTracker, MemoryStats, StepSnapshot, TraceStats};
use crate::plan::{materialize_batch, StageTimings, StepPlan, StepTrace};
use crate::prefix::{PrefixId, PrefixPool};
use crate::request::GenerationRequest;
use crate::sampling::{DecodingMode, SamplingParams, TokenId};
use crate::scheduler::Scheduler;
use crate::sequence::{SeqId, Sequence, SequenceGroup, SequenceStatus};

/// One finished output sequence of a request.
#[derive(Debug, Clone)]
pub struct CompletionOutput {
    /// Sequence id.
    pub seq_id: SeqId,
    /// Generated tokens (relative to the original user prompt).
    pub tokens: Vec<TokenId>,
    /// Cumulative log-probability (meaningful for beam search).
    pub cumulative_logprob: f64,
    /// Terminal status of the sequence.
    pub finish_reason: SequenceStatus,
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct RequestOutput {
    /// Request id.
    pub request_id: String,
    /// Original prompt length in tokens.
    pub prompt_len: usize,
    /// Output sequences (the best `n` for beam search).
    pub outputs: Vec<CompletionOutput>,
    /// Arrival time (virtual seconds).
    pub arrival_time: f64,
    /// Completion time (virtual seconds).
    pub finish_time: f64,
    /// Time the first output token was produced, if any.
    pub first_token_time: Option<f64>,
    /// How often the request was preempted.
    pub num_preemptions: u32,
}

impl RequestOutput {
    /// Mean number of generated tokens per output sequence.
    #[must_use]
    pub fn mean_output_len(&self) -> f64 {
        if self.outputs.is_empty() {
            return 0.0;
        }
        self.outputs.iter().map(|o| o.tokens.len()).sum::<usize>() as f64
            / self.outputs.len() as f64
    }
}

/// Point-in-time load summary of one engine, published by replica threads
/// and consumed by cluster routing policies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineLoad {
    /// Requests queued but not yet admitted.
    pub waiting: usize,
    /// Requests currently in the running batch.
    pub running: usize,
    /// Requests preempted to CPU memory.
    pub swapped: usize,
    /// Free GPU KV blocks.
    pub free_blocks: usize,
    /// Total GPU KV blocks.
    pub total_blocks: usize,
    /// Estimated tokens of work still owed to admitted requests
    /// (see [`Scheduler::outstanding_tokens`]).
    pub outstanding_tokens: u64,
    /// Median normalized latency over finished requests (s/token); 0 until
    /// the first request finishes.
    pub norm_lat_p50: f64,
}

/// The serving engine, generic over the execution backend.
#[derive(Debug)]
pub struct LlmEngine<E: ModelExecutor> {
    pub(crate) scheduler: Scheduler,
    pub(crate) executor: E,
    pub(crate) cache_config: CacheConfig,
    pub(crate) next_seq_id: SeqId,
    pub(crate) clock: f64,
    pub(crate) latency: LatencyTracker,
    pub(crate) memory_stats: MemoryStats,
    pub(crate) prefix_pool: PrefixPool,
    /// Automatically match new prompts against registered prefixes.
    pub(crate) auto_prefix_match: bool,
    /// Whether forked sequences share blocks (copy-on-write). Disabling
    /// this replicates blocks eagerly — the contiguous-system behaviour —
    /// for the sharing ablation.
    pub(crate) sharing_enabled: bool,
    /// Requests whose KV cache is promoted to the prefix cache on finish
    /// (conversation reuse extension).
    pub(crate) retain_requests: std::collections::HashSet<String>,
    /// Prefix ids produced by retention, keyed by request id.
    pub(crate) promoted_prefixes: HashMap<String, PrefixId>,
    /// Monotone step counter for trace indexing.
    step_counter: u64,
    /// Trace of the most recent step.
    last_trace: Option<StepTrace>,
    /// Aggregate of all step traces.
    trace_stats: TraceStats,
    /// Shared telemetry bundle (metrics registry + lifecycle event log).
    pub(crate) telemetry: Arc<Telemetry>,
    /// Cached engine/scheduler/block-manager instrument handles.
    pub(crate) tmetrics: EngineMetrics,
    /// Fraction of requests sampled for tracing (`VLLM_TRACE_SAMPLE`,
    /// default 1.0). The per-request decision is deterministic in the
    /// request id, so replays trace the same requests.
    trace_sample: f64,
    /// SLO monitor, present when any `VLLM_SLO_*` objective is configured;
    /// evaluated on every [`LlmEngine::metrics_snapshot`].
    slo: Option<SloMonitor>,
    /// Elastic pool controller, consulted at the top of every step when set.
    elastic: Option<ElasticController>,
    /// GPU pool size the engine was constructed with, the restore point for
    /// fault-injected deflations.
    base_gpu_blocks: usize,
    /// CPU pool size the engine was constructed with.
    base_cpu_blocks: usize,
}

impl<E: ModelExecutor> LlmEngine<E> {
    /// Creates an engine over a fresh scheduler and block manager.
    #[must_use]
    pub fn new(executor: E, cache_config: CacheConfig, scheduler_config: SchedulerConfig) -> Self {
        // `VLLM_STEP_TOKEN_BUDGET` opts the engine into chunked prefill
        // when the configuration did not choose explicitly, clamped so a
        // chunk can never exceed the per-step batch cap.
        let mut scheduler_config = scheduler_config;
        if scheduler_config.step_token_budget.is_none() {
            scheduler_config.step_token_budget = crate::config::step_token_budget_from_env()
                .map(|b| b.min(scheduler_config.max_num_batched_tokens));
        }
        let scheduler = Scheduler::new(scheduler_config, &cache_config);
        let telemetry = Arc::new(Telemetry::new());
        let tmetrics = EngineMetrics::register(&telemetry);
        let trace_sample = std::env::var("VLLM_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map_or(1.0, |v| v.clamp(0.0, 1.0));
        let slo = SloMonitor::from_env(&telemetry);
        let base_gpu_blocks = cache_config.num_gpu_blocks;
        let base_cpu_blocks = cache_config.num_cpu_blocks;
        let mut executor = executor;
        executor.attach_telemetry(&telemetry);
        Self {
            scheduler,
            executor,
            cache_config,
            next_seq_id: 0,
            clock: 0.0,
            latency: LatencyTracker::new(),
            memory_stats: MemoryStats::new(),
            prefix_pool: PrefixPool::new(),
            auto_prefix_match: true,
            sharing_enabled: true,
            retain_requests: std::collections::HashSet::new(),
            promoted_prefixes: HashMap::new(),
            step_counter: 0,
            last_trace: None,
            trace_stats: TraceStats::default(),
            telemetry,
            tmetrics,
            trace_sample,
            slo,
            elastic: None,
            base_gpu_blocks,
            base_cpu_blocks,
        }
    }

    /// Disables automatic shared-prefix matching (ablation).
    pub fn set_auto_prefix_match(&mut self, enabled: bool) {
        self.auto_prefix_match = enabled;
    }

    /// Enables or disables block sharing between forked sequences
    /// (ablation). With sharing off, every fork eagerly copies the parent's
    /// blocks, as a contiguous-KV system must, and admission reserves the
    /// request's full fan-out.
    pub fn set_block_sharing(&mut self, enabled: bool) {
        self.sharing_enabled = enabled;
        self.scheduler.block_manager_mut().fanout_admission = !enabled;
    }

    /// Enables (`Some`, non-zero) or disables (`None`) scheduler-budgeted
    /// chunked prefill (see [`crate::config::STEP_TOKEN_BUDGET_ENV`]).
    pub fn set_step_token_budget(&mut self, budget: Option<usize>) {
        self.scheduler.set_step_token_budget(budget);
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the virtual clock (used by trace drivers while idle).
    pub fn advance_clock_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// The scheduler (queue/occupancy introspection).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The KV cache geometry this engine was built with.
    #[must_use]
    pub fn cache_config(&self) -> &CacheConfig {
        &self.cache_config
    }

    /// The shared-prefix registry (§4.4). Read-only; use
    /// [`register_prefix`](Self::register_prefix) /
    /// [`release_prefix`](Self::release_prefix) to mutate it.
    #[must_use]
    pub fn prefix_pool(&self) -> &PrefixPool {
        &self.prefix_pool
    }

    /// A point-in-time load summary for routing decisions. Cheap except for
    /// `outstanding_tokens`, which walks the live queues.
    #[must_use]
    pub fn load_snapshot(&self) -> EngineLoad {
        let bm = self.scheduler.block_manager();
        EngineLoad {
            waiting: self.scheduler.num_waiting(),
            running: self.scheduler.num_running(),
            swapped: self.scheduler.num_swapped(),
            free_blocks: bm.num_free_gpu_blocks(),
            total_blocks: bm.num_total_gpu_blocks(),
            outstanding_tokens: self.scheduler.outstanding_tokens(),
            norm_lat_p50: self
                .latency
                .percentile_normalized_latency(50.0)
                .unwrap_or(0.0),
        }
    }

    /// The chunk hashes of every computed prefix resident in this engine's
    /// pool (see [`PrefixPool::coverage_hashes`]); the pool
    /// [`version`](PrefixPool::version) lets callers cache the result.
    #[must_use]
    pub fn prefix_coverage(&self) -> Vec<u64> {
        self.prefix_pool
            .coverage_hashes(self.cache_config.block_size)
    }

    /// The execution backend.
    #[must_use]
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// The execution backend, mutably.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Per-request latency metrics.
    #[must_use]
    pub fn latency(&self) -> &LatencyTracker {
        &self.latency
    }

    /// Time-weighted memory/batch metrics.
    #[must_use]
    pub fn memory_stats(&self) -> &MemoryStats {
        &self.memory_stats
    }

    /// The shared telemetry bundle: metrics registry plus the per-request
    /// lifecycle event log. Clone the `Arc` to observe the engine from
    /// another thread (the frontend does this for `METRICS`/`EVENTS`).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Cached engine instrument handles (tests and embedding harnesses).
    #[must_use]
    pub fn engine_metrics(&self) -> &EngineMetrics {
        &self.tmetrics
    }

    /// Publishes the current scheduler/block-manager gauges and returns a
    /// point-in-time snapshot of every registered metric.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.publish_gauges();
        let snap = self.telemetry.registry().snapshot();
        if let Some(slo) = &self.slo {
            // Evaluation updates the `vllm_slo_*` burn gauges and breach
            // counters; re-snapshot so callers see them.
            slo.evaluate(&snap);
            return self.telemetry.registry().snapshot();
        }
        snap
    }

    /// The SLO monitor configured from `VLLM_SLO_*`, if any.
    #[must_use]
    pub fn slo_monitor(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// The structured trace of the most recent step, if any step has run.
    #[must_use]
    pub fn last_trace(&self) -> Option<&StepTrace> {
        self.last_trace.as_ref()
    }

    /// Aggregated per-stage timings and cache-op counts across all steps.
    #[must_use]
    pub fn trace_stats(&self) -> &TraceStats {
        &self.trace_stats
    }

    /// Whether any request is queued, running, or swapped.
    #[must_use]
    pub fn has_unfinished(&self) -> bool {
        self.scheduler.has_unfinished()
    }

    /// Adds a request arriving now.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] for invalid sampling parameters.
    pub fn add_request(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        params: SamplingParams,
    ) -> Result<()> {
        let now = self.clock;
        self.add_request_at(request_id, prompt, params, now)
    }

    /// Adds a request with an explicit arrival time (trace replay).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] for invalid sampling parameters
    /// or an empty prompt.
    pub fn add_request_at(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        params: SamplingParams,
        arrival_time: f64,
    ) -> Result<()> {
        self.add_request_traced(request_id.into(), prompt, params, arrival_time, None)
    }

    /// Shared admission path: mints the group's trace context (or adopts a
    /// propagated one) and records the `admit` instant span.
    fn add_request_traced(
        &mut self,
        request_id: String,
        prompt: Vec<TokenId>,
        params: SamplingParams,
        arrival_time: f64,
        trace: Option<TraceContext>,
    ) -> Result<()> {
        params.validate()?;
        if prompt.is_empty() {
            return Err(VllmError::InvalidConfig("empty prompt".into()));
        }
        let seq = Sequence::new(
            self.alloc_seq_id(),
            prompt.clone(),
            self.cache_config.block_size,
        );
        let mut group = SequenceGroup::new(request_id, seq, params, arrival_time);
        group.trace = trace.unwrap_or_else(|| {
            TraceContext::mint(
                trace_seed(&group.request_id),
                self.sample_decision(&group.request_id),
            )
        });
        if self.auto_prefix_match {
            if let Some(pid) = self.prefix_pool.match_prompt(&prompt) {
                let prefix = self.prefix_pool.get(pid).expect("matched prefix exists");
                group.cached_prefix_len = prefix.len();
                group.prefix_blocks = prefix.blocks.clone();
            }
        }
        self.tmetrics.requests_arrived_total.inc();
        self.telemetry
            .events()
            .record(&group.request_id, arrival_time, EventKind::Arrived);
        if group.trace.is_active() {
            let admit = group.trace.child(0);
            self.telemetry.spans().record(Span {
                trace_id: admit.trace_id,
                span_id: admit.span_id,
                parent_span_id: admit.parent_span_id,
                name: "admit".to_string(),
                start: arrival_time,
                end: arrival_time,
                attrs: vec![("request_id".to_string(), group.request_id.clone())],
            });
        }
        self.scheduler.add_group(group);
        Ok(())
    }

    /// Deterministic per-request sampling decision: hash the request id and
    /// compare against `trace_sample`, so replays trace the same subset.
    fn sample_decision(&self, request_id: &str) -> bool {
        if self.trace_sample >= 1.0 {
            return true;
        }
        if self.trace_sample <= 0.0 {
            return false;
        }
        let h = splitmix64(trace_seed(request_id) ^ 0x5bf0_3635_4cb6_28d9);
        (h as f64 / u64::MAX as f64) < self.trace_sample
    }

    /// Adds a typed [`GenerationRequest`] arriving now. This is the serving
    /// entry point used by the frontend, the replica admission loop, and the
    /// cluster simulator.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidRequest`] for inconsistent request fields
    /// and [`VllmError::InvalidConfig`] for an empty prompt.
    pub fn add_generation_request(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        request: &GenerationRequest,
    ) -> Result<()> {
        let now = self.clock;
        self.add_generation_request_at(request_id, prompt, request, now)
    }

    /// Adds a typed [`GenerationRequest`] with an explicit arrival time
    /// (trace replay). The request's relative deadline, if any, becomes an
    /// absolute virtual-time deadline of `arrival_time + deadline`; its
    /// priority feeds the scheduler's (priority, arrival) queue order.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidRequest`] for inconsistent request fields
    /// and [`VllmError::InvalidConfig`] for an empty prompt.
    pub fn add_generation_request_at(
        &mut self,
        request_id: impl Into<String>,
        prompt: Vec<TokenId>,
        request: &GenerationRequest,
        arrival_time: f64,
    ) -> Result<()> {
        let params = request.sampling_params()?;
        let request_id = request_id.into();
        self.add_request_traced(
            request_id.clone(),
            prompt,
            params,
            arrival_time,
            request.trace,
        )?;
        if request.deadline.is_some() || request.priority != 0 {
            let group = self
                .scheduler
                .group_mut(&request_id)
                .expect("group was just added");
            group.deadline = request.deadline.map(|d| arrival_time + d);
            group.priority = request.priority;
        }
        Ok(())
    }

    /// Aborts a live request.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if no live group matches.
    pub fn abort_request(&mut self, request_id: &str) -> Result<()> {
        self.scheduler.abort(request_id)
    }

    /// Aborts every live request, freeing all their blocks and restoring
    /// the engine to an empty, consistent state. Used by serving loops to
    /// recover after an executor failure mid-step (the affected iteration's
    /// reservations are released wholesale). The aborted groups are
    /// delivered, output-less, by the next [`Self::step`]'s reap.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors.
    pub fn abort_all(&mut self) -> Result<Vec<String>> {
        self.scheduler.abort_all()
    }

    /// Enables or disables the CPU swap pool (fault injection: an exhausted
    /// or failed swap device). While disabled, preemption falls back to
    /// recomputation exactly as when the pool is full (§4.5).
    pub fn set_swap_disabled(&mut self, disabled: bool) {
        self.scheduler
            .block_manager_mut()
            .set_swap_disabled(disabled);
    }

    /// Installs (or removes) an elastic pool controller. When set, the
    /// engine samples [`PoolPressure`] at the top of every step and applies
    /// the controller's resize proposals before scheduling, so the resize's
    /// migration journal rides that step's [`StepPlan`].
    pub fn set_elastic(&mut self, controller: Option<ElasticController>) {
        self.elastic = controller;
    }

    /// The installed elastic controller, if any.
    #[must_use]
    pub fn elastic(&self) -> Option<&ElasticController> {
        self.elastic.as_ref()
    }

    /// Point-in-time pool pressure, the controller's input signal.
    #[must_use]
    pub fn pool_pressure(&self) -> PoolPressure {
        let bm = self.scheduler.block_manager();
        PoolPressure {
            total_blocks: bm.num_total_gpu_blocks(),
            free_blocks: bm.num_free_gpu_blocks(),
            allocated_blocks: bm.num_allocated_gpu_blocks(),
            waiting: self.scheduler.num_waiting(),
            swapped: self.scheduler.num_swapped(),
        }
    }

    /// Resizes the GPU and CPU block pools at runtime. Shrinking compacts
    /// first (live blocks migrate into holes below the new bound, journaled
    /// as `moves` in the next step's cache ops); every holder of raw block
    /// ids — block tables, pinned prefixes, groups' cached prefix ids — is
    /// remapped here, so callers need no follow-up.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if a pool would shrink below its
    /// live working set (the pools are left unchanged).
    pub fn resize_pools(&mut self, gpu_blocks: usize, cpu_blocks: usize) -> Result<PoolRemap> {
        let remap = self
            .scheduler
            .block_manager_mut()
            .resize(gpu_blocks, cpu_blocks)?;
        self.apply_remap(&remap);
        self.cache_config.num_gpu_blocks = gpu_blocks;
        self.cache_config.num_cpu_blocks = cpu_blocks;
        Ok(remap)
    }

    /// Fully defragments both pools without resizing: live blocks pack into
    /// the lowest ids, the data moves journaled into the next step's cache
    /// ops, and all raw-id holders remapped.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors (corrupted accounting).
    pub fn compact_pools(&mut self) -> Result<PoolRemap> {
        let remap = self.scheduler.block_manager_mut().compact()?;
        self.apply_remap(&remap);
        Ok(remap)
    }

    /// Deflates the GPU pool to `fraction` of its configured size (fault
    /// injection: external memory pressure reclaiming KV capacity). The
    /// target is clamped so the live working set always fits. Returns the
    /// new pool size in blocks.
    ///
    /// # Errors
    ///
    /// Propagates resize errors.
    pub fn deflate_pool(&mut self, fraction: f64) -> Result<usize> {
        let fraction = fraction.clamp(0.0, 1.0);
        let target = ((self.base_gpu_blocks as f64 * fraction) as usize)
            .max(self.scheduler.block_manager().num_allocated_gpu_blocks())
            .max(1);
        let cpu = self.scheduler.block_manager().num_total_cpu_blocks();
        self.resize_pools(target, cpu)?;
        Ok(target)
    }

    /// Restores both pools to the sizes the engine was constructed with
    /// (recovery from [`Self::deflate_pool`]).
    ///
    /// # Errors
    ///
    /// Propagates resize errors.
    pub fn restore_pool(&mut self) -> Result<()> {
        self.resize_pools(self.base_gpu_blocks, self.base_cpu_blocks)?;
        Ok(())
    }

    /// Follows a compaction's old→new id mapping everywhere raw GPU block
    /// ids live outside the block manager: the pinned prefix registry and
    /// the cached prefix ids on live groups.
    fn apply_remap(&mut self, remap: &PoolRemap) {
        if remap.gpu.is_empty() {
            return;
        }
        self.prefix_pool.remap_blocks(&remap.gpu);
        self.scheduler.remap_prefix_blocks(&remap.gpu);
    }

    /// Registers a shared prefix (§4.4): pins blocks for it and runs a
    /// KV-only prefill so later prompts that start with `tokens` skip the
    /// prefix computation and share its blocks.
    ///
    /// This is an offline provisioning step; it does not advance the serving
    /// clock.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] if the pool cannot pin the
    /// prefix, or executor errors from the warm-up run.
    pub fn register_prefix(&mut self, tokens: Vec<TokenId>) -> Result<PrefixId> {
        if tokens.is_empty() {
            return Err(VllmError::InvalidConfig("empty prefix".into()));
        }
        let bs = self.cache_config.block_size;
        let n = tokens.len().div_ceil(bs);
        let blocks = self
            .scheduler
            .block_manager_mut()
            .allocate_anchor_blocks(n)?;
        let warmup = StepPlan {
            is_prompt_run: true,
            items: vec![SeqStepInput {
                // Prefix warm-ups use a reserved id space far above request
                // sequence ids.
                seq_id: u64::MAX - self.prefix_pool.len() as u64,
                tokens: tokens.clone(),
                first_position: 0,
                num_cached_tokens: 0,
                block_table: blocks.clone(),
                num_candidates: 0,
                mode: DecodingMode::Greedy,
                seed: 0,
                chunked: false,
            }],
            block_size: bs,
            ..StepPlan::default()
        };
        self.executor.begin_step(&warmup)?;
        let id = self.prefix_pool.insert(tokens, blocks);
        self.prefix_pool.mark_computed(id);
        Ok(id)
    }

    /// Serializes a registered prefix for a KV handoff: its tokens plus one
    /// [`KvBlockBytes`] per pinned block, read from the executor's KV
    /// storage. Backends without addressable KV (mock, simulator) export
    /// empty-bodied blocks — the handoff bookkeeping is identical, only the
    /// install becomes a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if the prefix id is unknown.
    pub fn export_prefix(&self, id: PrefixId) -> Result<(Vec<TokenId>, Vec<KvBlockBytes>)> {
        let prefix = self
            .prefix_pool
            .get(id)
            .ok_or_else(|| VllmError::UnknownRequest(format!("prefix {id}")))?;
        let bytes = self.executor.export_kv_blocks(&prefix.blocks);
        Ok((prefix.tokens.clone(), bytes))
    }

    /// Installs a prefix whose KV was computed *elsewhere* (the receiving
    /// half of a KV handoff, §4.4 sharing stretched across replicas): pins
    /// anchor blocks, journals the payload as [`CacheOps`] `installs` —
    /// applied by the executor under the same ordering contract as swaps
    /// and copies, never behind the journal's back — and registers the
    /// prefix as computed. Unlike [`Self::register_prefix`] there is no
    /// warm-up forward pass: the KV arrives in the payload, which is the
    /// entire point of disaggregated prefill.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::Protocol`] when the block count disagrees with
    /// the token count, [`VllmError::OutOfGpuBlocks`] when the pool cannot
    /// pin the prefix, or executor errors from the install step.
    pub fn import_prefix(
        &mut self,
        tokens: Vec<TokenId>,
        data: Vec<KvBlockBytes>,
    ) -> Result<PrefixId> {
        if tokens.is_empty() {
            return Err(VllmError::InvalidConfig("empty prefix".into()));
        }
        let bs = self.cache_config.block_size;
        let n = tokens.len().div_ceil(bs);
        if data.len() != n {
            return Err(VllmError::Protocol(format!(
                "prefix import carries {} blocks but {} tokens need {}",
                data.len(),
                tokens.len(),
                n
            )));
        }
        let blocks = self
            .scheduler
            .block_manager_mut()
            .allocate_anchor_blocks(n)?;
        let install = StepPlan {
            cache_ops: CacheOps {
                installs: blocks
                    .iter()
                    .zip(data)
                    .map(|(&dst, data)| KvBlockInstall { dst, data })
                    .collect(),
                ..CacheOps::default()
            },
            block_size: bs,
            ..StepPlan::default()
        };
        if let Err(e) = self.executor.begin_step(&install) {
            // Failed installs must not leak the anchors.
            self.scheduler
                .block_manager_mut()
                .free_anchor_blocks(&blocks)?;
            return Err(e);
        }
        let id = self.prefix_pool.insert(tokens, blocks);
        self.prefix_pool.mark_computed(id);
        Ok(id)
    }

    /// Marks a live request for KV retention: when its (single) sequence
    /// finishes, its computed KV blocks are promoted into the prefix cache
    /// in place — no copy, no recompute — so a follow-up prompt extending
    /// this conversation skips the history prefill. Fetch the resulting id
    /// with [`Self::promoted_prefix`].
    ///
    /// Only meaningful for `n == 1` requests; beam/parallel requests are
    /// not promoted.
    pub fn retain_kv(&mut self, request_id: impl Into<String>) {
        self.retain_requests.insert(request_id.into());
    }

    /// The prefix id produced by [`Self::retain_kv`] for a finished
    /// request, if promotion happened.
    #[must_use]
    pub fn promoted_prefix(&self, request_id: &str) -> Option<PrefixId> {
        self.promoted_prefixes.get(request_id).copied()
    }

    /// Releases a registered prefix, unpinning its blocks. In-flight
    /// requests that already mapped the prefix keep their references; the
    /// blocks are reclaimed once the last sharer frees them.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if the prefix id is unknown or
    /// already released.
    pub fn release_prefix(&mut self, id: PrefixId) -> Result<()> {
        let prefix = self
            .prefix_pool
            .remove(id)
            .ok_or_else(|| VllmError::UnknownRequest(format!("prefix {id}")))?;
        self.scheduler
            .block_manager_mut()
            .free_anchor_blocks(&prefix.blocks)
    }

    /// Runs one iteration through the four pipeline stages (schedule →
    /// prepare → execute → postprocess) and returns the requests that
    /// finished during the step. A [`StepTrace`] is recorded for every call,
    /// including steps that found no work.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and executor errors.
    pub fn step(&mut self) -> Result<Vec<RequestOutput>> {
        let step_index = self.step_counter;
        self.step_counter += 1;

        // Deadline enforcement precedes scheduling so an expired request
        // never consumes another iteration's worth of blocks or batch slots.
        // The cancelled groups are delivered by this step's reap, which also
        // records their `finished reason=deadline` lifecycle events.
        for (_request_id, missed_by) in self.scheduler.cancel_expired(self.clock)? {
            self.tmetrics.deadline_cancellations_total.inc();
            self.tmetrics
                .request_deadline_miss_seconds
                .observe(missed_by);
        }

        // Elastic pool control: apply any resize before scheduling so its
        // migration journal drains into this step's plan.
        if self.elastic.is_some() {
            let pressure = self.pool_pressure();
            let action = self
                .elastic
                .as_mut()
                .expect("checked above")
                .decide(&pressure);
            if let Some(action) = action {
                let cpu = self.scheduler.block_manager().num_total_cpu_blocks();
                self.resize_pools(action.target(), cpu)?;
            }
        }

        // Stage 1: schedule.
        let t = Instant::now();
        let mut plan = self.scheduler.schedule()?;
        let schedule = t.elapsed().as_secs_f64();
        self.record_plan_telemetry(&plan);
        if plan.is_prompt_run {
            self.record_queue_spans(&plan);
        }

        if plan.is_empty() {
            // Nothing to run, but finished/aborted groups may still need
            // reaping, and the step still emits a trace.
            let t = Instant::now();
            let outs = self.reap()?;
            let mut trace = StepTrace::from_plan(step_index, &plan);
            trace.stages.schedule = schedule;
            trace.stages.postprocess = t.elapsed().as_secs_f64();
            self.finish_trace(trace);
            return Ok(outs);
        }

        // Stage 2: prepare (materialize per-sequence model inputs).
        let t = Instant::now();
        materialize_batch(&self.scheduler, &mut plan)?;
        let prepare = t.elapsed().as_secs_f64();

        // Stage 3: execute.
        let t = Instant::now();
        let result = self.executor.begin_step(&plan)?;
        let execute = t.elapsed().as_secs_f64();
        self.clock += result.elapsed;
        self.tmetrics.step_model_seconds.observe(result.elapsed);

        // Stage 4: postprocess (sampling bookkeeping, forks, stops, reap).
        let t = Instant::now();
        self.record_step_metrics(&plan, result.elapsed);
        self.record_kernel_spans(&plan, &result, step_index);
        self.process_outputs(&plan, &result)?;
        let outs = self.reap()?;
        let postprocess = t.elapsed().as_secs_f64();

        let mut trace = StepTrace::from_plan(step_index, &plan);
        trace.stages = StageTimings {
            schedule,
            prepare,
            execute,
            postprocess,
        };
        self.finish_trace(trace);
        Ok(outs)
    }

    /// Runs steps until every request finishes, returning all outputs.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_to_completion(&mut self) -> Result<Vec<RequestOutput>> {
        let mut all = Vec::new();
        while self.has_unfinished() {
            all.extend(self.step()?);
        }
        Ok(all)
    }

    pub(crate) fn alloc_seq_id(&mut self) -> SeqId {
        let id = self.next_seq_id;
        self.next_seq_id += 1;
        id
    }

    fn finish_trace(&mut self, trace: StepTrace) {
        self.trace_stats.observe(&trace);
        self.tmetrics.observe_trace(&trace);
        self.record_stage_spans(&trace);
        self.publish_gauges();
        self.last_trace = Some(trace);
    }

    /// Emits untraced (`trace_id == 0`) per-step stage spans: the four
    /// pipeline stages laid sequentially from the step's virtual start so
    /// the exported timeline shows where host time went. Skipped for steps
    /// that did no work.
    fn record_stage_spans(&self, trace: &StepTrace) {
        if trace.tokens_scheduled == 0 && trace.stages.total() == 0.0 {
            return;
        }
        let spans = self.telemetry.spans();
        let names = [
            "step.schedule",
            "step.prepare",
            "step.execute",
            "step.postprocess",
        ];
        let durations = [
            trace.stages.schedule,
            trace.stages.prepare,
            trace.stages.execute,
            trace.stages.postprocess,
        ];
        let mut cursor = self.clock;
        for (name, dur) in names.iter().zip(durations) {
            if dur <= 0.0 {
                continue;
            }
            spans.record(Span {
                trace_id: 0,
                span_id: 0,
                parent_span_id: 0,
                name: (*name).to_string(),
                start: cursor,
                end: cursor + dur,
                attrs: vec![("step".to_string(), trace.step_index.to_string())],
            });
            cursor += dur;
        }
    }

    /// Sets each newly scheduled prompt group's `first_scheduled_time` and
    /// emits its `queue` span (`[arrival, first schedule]`) if sampled.
    fn record_queue_spans(&mut self, plan: &StepPlan) {
        for sg in &plan.scheduled {
            if !sg.is_prompt {
                continue;
            }
            let Some(group) = self.scheduler.group_mut(&sg.request_id) else {
                continue;
            };
            if group.first_scheduled_time.is_some() {
                continue;
            }
            group.first_scheduled_time = Some(self.clock);
            if group.trace.is_active() {
                let q = group.trace.child(1);
                self.telemetry.spans().record(Span {
                    trace_id: q.trace_id,
                    span_id: q.span_id,
                    parent_span_id: q.parent_span_id,
                    name: "queue".to_string(),
                    start: group.arrival_time,
                    end: self.clock,
                    attrs: Vec::new(),
                });
            }
        }
    }

    /// Emits kernel spans for every sampled group that ran this step, laid
    /// end-to-end across the step's virtual interval with widths
    /// proportional to the backend-reported kernel timings. To bound span
    /// volume, kernels are attributed only to a group's prefill steps and
    /// its first decode step.
    fn record_kernel_spans(&self, plan: &StepPlan, result: &StepResult, step_index: u64) {
        if result.kernels.is_empty() {
            return;
        }
        let backend = self.executor.backend_label().to_string();
        let t0 = self.clock - result.elapsed;
        let total: f64 = result.kernels.iter().map(|k| k.seconds).sum();
        let scale = if total > 0.0 {
            result.elapsed / total
        } else {
            0.0
        };
        for sg in &plan.scheduled {
            if !sg.trace.is_active() {
                continue;
            }
            let Some(group) = self.scheduler.group(&sg.request_id) else {
                continue;
            };
            // Prefill steps hang kernels under the `prefill` span; the
            // first decode step (first and last token coincide) hangs them
            // under `decode`; later decode steps are skipped.
            let parent = match group.first_token_time {
                None => group.trace.child(2),
                Some(ft) => {
                    if group.last_token_time != Some(ft) {
                        continue;
                    }
                    group.trace.child(3)
                }
            };
            let mut cursor = t0;
            for (k, timing) in result.kernels.iter().enumerate() {
                let width = timing.seconds * scale;
                let ctx = parent.child(16 + step_index.wrapping_mul(1024) + k as u64);
                self.telemetry.spans().record(Span {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_span_id: ctx.parent_span_id,
                    name: format!("kernel:{}", timing.name),
                    start: cursor,
                    end: cursor + width,
                    attrs: vec![("backend".to_string(), backend.clone())],
                });
                cursor += width;
            }
        }
    }

    /// Pushes the current queue depths and block-pool state into the
    /// telemetry gauges (called after every step and before snapshots).
    fn publish_gauges(&self) {
        self.scheduler.publish_metrics(&self.tmetrics.scheduler);
        let groups = self.scheduler.running_groups();
        let all_seqs = groups.iter().flat_map(|g| g.seqs().into_iter());
        let used_slots = self.scheduler.block_manager().used_gpu_slots(all_seqs);
        self.scheduler
            .block_manager()
            .publish_metrics(&self.tmetrics.block_manager, used_slots);
    }

    /// Records the lifecycle events and counters a freshly scheduled plan
    /// implies: prompt admissions, preemptions, swap-ins, and rejections.
    fn record_plan_telemetry(&self, plan: &StepPlan) {
        let events = self.telemetry.events();
        for sg in &plan.scheduled {
            // A prompt's `Scheduled` event fires once, at admission: legacy
            // prefills always, chunked prefills on their first chunk only.
            if !sg.is_prompt || sg.chunk.is_some_and(|c| !c.is_first) {
                continue;
            }
            // For a chunked admission the event reports the whole prompt the
            // chunks will cover, not just the first chunk's slice.
            let prompt_tokens = if sg.chunk.is_some() {
                self.scheduler
                    .group(&sg.request_id)
                    .map_or(sg.num_tokens, |g| {
                        g.seqs().iter().map(|s| s.data.prompt_len()).sum()
                    })
            } else {
                sg.num_tokens
            };
            events.record(
                &sg.request_id,
                self.clock,
                EventKind::Scheduled { prompt_tokens },
            );
        }
        let chunks = plan
            .scheduled
            .iter()
            .filter(|sg| sg.chunk.is_some())
            .count() as u64;
        if chunks > 0 {
            self.tmetrics.prefill_chunks_total.inc_by(chunks);
        }
        for p in &plan.preemptions {
            let mode = match p.kind {
                crate::plan::PreemptionKind::Swap => "swap",
                crate::plan::PreemptionKind::Recompute => "recompute",
            };
            events.record(
                &p.request_id,
                self.clock,
                EventKind::Preempted {
                    mode: mode.to_string(),
                    blocks: p.blocks_swapped_out,
                },
            );
        }
        for (request_id, blocks) in &plan.swapped_in {
            events.record(
                request_id,
                self.clock,
                EventKind::SwappedIn { blocks: *blocks },
            );
        }
        if !plan.cache_ops.is_empty() {
            self.telemetry.spans().record(Span {
                trace_id: 0,
                span_id: 0,
                parent_span_id: 0,
                name: "cache_ops".to_string(),
                start: self.clock,
                end: self.clock,
                attrs: vec![
                    (
                        "swap_in".to_string(),
                        plan.cache_ops.swap_in.len().to_string(),
                    ),
                    (
                        "swap_out".to_string(),
                        plan.cache_ops.swap_out.len().to_string(),
                    ),
                    (
                        "copies".to_string(),
                        plan.cache_ops.copies.len().to_string(),
                    ),
                    ("moves".to_string(), plan.cache_ops.moves.len().to_string()),
                ],
            });
        }
        self.tmetrics
            .requests_ignored_total
            .inc_by(plan.ignored.len() as u64);
    }

    fn record_step_metrics(&mut self, plan: &StepPlan, elapsed: f64) {
        let bm = self.scheduler.block_manager();
        let groups = self.scheduler.running_groups();
        let running_seqs: usize = groups
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum();
        let all_seqs = groups.iter().flat_map(|g| g.seqs().into_iter());
        let used_slots = bm.used_gpu_slots(all_seqs);
        let bs = self.cache_config.block_size;
        self.memory_stats.observe(&StepSnapshot {
            duration: elapsed,
            running_requests: groups.len(),
            running_seqs,
            batched_tokens: plan.budget.num_batched_tokens,
            used_slots,
            allocated_slots: bm.num_allocated_gpu_blocks() * bs,
            total_slots: bm.num_total_gpu_blocks() * bs,
            sharing_savings: bm.sharing_savings(),
            logical_blocks: bm.num_logical_gpu_blocks(),
            physical_blocks: bm.num_allocated_gpu_blocks(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockExecutor;

    const BS: usize = 4;

    fn engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
        let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
        LlmEngine::new(MockExecutor::new(1000), cache, sched)
    }

    #[test]
    fn greedy_generation_end_to_end() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3, 4, 5], SamplingParams::greedy(8))
            .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 1);
        let out = &outs[0];
        assert_eq!(out.request_id, "r0");
        assert_eq!(out.prompt_len, 5);
        assert_eq!(out.outputs.len(), 1);
        assert_eq!(out.outputs[0].tokens.len(), 8);
        assert_eq!(
            out.outputs[0].finish_reason,
            SequenceStatus::FinishedLengthCapped
        );
        // All blocks returned to the pool.
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
        assert!(e.clock() > 0.0);
    }

    // Preemption round-trip and step-trace tests live in
    // `tests/step_trace.rs`.

    #[test]
    fn prefix_sharing_reuses_blocks() {
        let mut e = engine(64, 0);
        let prefix: Vec<TokenId> = (0..8).collect();
        e.register_prefix(prefix.clone()).unwrap();
        let allocated_after_prefix = e.scheduler().block_manager().num_allocated_gpu_blocks();
        assert_eq!(allocated_after_prefix, 2);

        let mut prompt = prefix.clone();
        prompt.extend(200..204);
        e.add_request("r0", prompt, SamplingParams::greedy(4))
            .unwrap();
        e.step().unwrap(); // Prompt step.
                           // Prefix blocks shared: only 1 extra block allocated for the suffix.
        let bm = e.scheduler().block_manager();
        assert_eq!(bm.num_allocated_gpu_blocks(), 3);
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs[0].outputs[0].tokens.len(), 4);
        // Prefix blocks stay pinned after the request finishes.
        assert_eq!(e.scheduler().block_manager().num_allocated_gpu_blocks(), 2);
    }

    #[test]
    fn prefix_match_requires_longer_prompt() {
        let mut e = engine(64, 0);
        e.register_prefix((0..8).collect()).unwrap();
        // Prompt that doesn't start with the prefix: no sharing.
        e.add_request("r0", (50..60).collect(), SamplingParams::greedy(2))
            .unwrap();
        e.step().unwrap();
        let g = e.scheduler().group("r0");
        assert!(g.is_none() || g.unwrap().cached_prefix_len == 0);
        e.run_to_completion().unwrap();
    }

    #[test]
    fn latency_tracker_records_requests() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(4))
            .unwrap();
        e.run_to_completion().unwrap();
        assert_eq!(e.latency().num_requests(), 1);
        assert!(e.latency().mean_normalized_latency().unwrap() > 0.0);
        assert!(e.memory_stats().num_steps() > 0);
    }

    #[test]
    fn abort_request_mid_flight() {
        let mut e = engine(64, 0);
        e.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(100))
            .unwrap();
        e.step().unwrap();
        e.abort_request("r0").unwrap();
        let outs = e.step().unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
        assert!(!e.has_unfinished());
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 64);
    }

    #[test]
    fn empty_prompt_rejected() {
        let mut e = engine(64, 0);
        assert!(e
            .add_request("r0", vec![], SamplingParams::greedy(4))
            .is_err());
    }

    #[test]
    fn oversized_prompt_reported_ignored() {
        let mut e = engine(2, 0);
        e.add_request("r0", (0..1000).collect(), SamplingParams::greedy(4))
            .unwrap();
        let outs = e.step().unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
    }

    #[test]
    fn many_requests_all_complete() {
        let mut e = engine(128, 0);
        for i in 0..20 {
            e.add_request_at(
                format!("r{i}"),
                (0..(5 + i % 7) as u32).collect(),
                SamplingParams::greedy(3 + (i % 5) as usize),
                i as f64 * 0.01,
            )
            .unwrap();
        }
        let outs = e.run_to_completion().unwrap();
        assert_eq!(outs.len(), 20);
        assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 128);
        assert_eq!(e.latency().num_requests(), 20);
    }
}
