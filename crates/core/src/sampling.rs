//! Per-request sampling parameters (§5.2, §6.3).

use serde::{Deserialize, Serialize};

use crate::error::{Result, VllmError};

/// Token id type used across the system.
pub type TokenId = u32;

/// The decoding algorithm requested for a sequence group (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecodingMode {
    /// Pick the argmax token at every step.
    Greedy,
    /// Sample from the (temperature/top-k/top-p adjusted) distribution.
    Random {
        /// Softmax temperature; must be positive.
        temperature: f32,
        /// Keep only the `top_k` most likely tokens (0 disables the filter).
        top_k: usize,
        /// Keep the smallest set of tokens whose cumulative probability
        /// reaches `top_p` (1.0 disables the filter).
        top_p: f32,
    },
    /// Beam search with the given beam width (§4.4, Fig. 9).
    Beam {
        /// Beam width `k`: number of candidates retained per step.
        width: usize,
    },
}

impl DecodingMode {
    /// Plain random sampling with temperature 1 and no truncation.
    #[must_use]
    pub fn random() -> Self {
        Self::Random {
            temperature: 1.0,
            top_k: 0,
            top_p: 1.0,
        }
    }
}

/// Sampling parameters attached to a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Number of output sequences to produce (parallel sampling when > 1).
    pub n: usize,
    /// Decoding algorithm.
    pub mode: DecodingMode,
    /// Maximum number of generated tokens per sequence.
    pub max_tokens: usize,
    /// Token id that terminates generation when emitted.
    pub eos_token_id: Option<TokenId>,
    /// Additional token ids that terminate generation (beyond `eos`).
    pub stop_token_ids: Vec<TokenId>,
    /// Whether the end-of-sequence token may be ignored (forces sequences to
    /// run to `max_tokens`; used to replay traces with known output lengths).
    pub ignore_eos: bool,
    /// Seed for the request's sampling RNG; `None` derives one from the
    /// request id so runs stay reproducible.
    pub seed: Option<u64>,
}

impl SamplingParams {
    /// Greedy decoding of a single sequence.
    #[must_use]
    pub fn greedy(max_tokens: usize) -> Self {
        Self {
            n: 1,
            mode: DecodingMode::Greedy,
            max_tokens,
            eos_token_id: None,
            stop_token_ids: Vec::new(),
            ignore_eos: false,
            seed: None,
        }
    }

    /// Random sampling of `n` parallel sequences (Fig. 8 scenario).
    #[must_use]
    pub fn parallel(n: usize, max_tokens: usize) -> Self {
        Self {
            n,
            mode: DecodingMode::random(),
            max_tokens,
            eos_token_id: None,
            stop_token_ids: Vec::new(),
            ignore_eos: false,
            seed: None,
        }
    }

    /// Beam search with width `k` (Fig. 9 scenario).
    #[must_use]
    pub fn beam(width: usize, max_tokens: usize) -> Self {
        Self {
            n: width,
            mode: DecodingMode::Beam { width },
            max_tokens,
            eos_token_id: None,
            stop_token_ids: Vec::new(),
            ignore_eos: false,
            seed: None,
        }
    }

    /// Sets the end-of-sequence token.
    #[must_use]
    pub fn with_eos(mut self, eos: TokenId) -> Self {
        self.eos_token_id = Some(eos);
        self
    }

    /// Adds extra stop tokens.
    #[must_use]
    pub fn with_stop_tokens(mut self, stops: Vec<TokenId>) -> Self {
        self.stop_token_ids = stops;
        self
    }

    /// Whether `token` terminates generation (eos or any stop token),
    /// honouring `ignore_eos`.
    #[must_use]
    pub fn is_stop_token(&self, token: TokenId) -> bool {
        if self.ignore_eos {
            return false;
        }
        self.eos_token_id == Some(token) || self.stop_token_ids.contains(&token)
    }

    /// Sets the sampling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Forces sequences to ignore `eos` and run to `max_tokens`.
    #[must_use]
    pub fn with_ignore_eos(mut self) -> Self {
        self.ignore_eos = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] when `n` is zero, `max_tokens` is
    /// zero, a beam width disagrees with `n`, or a sampling knob is out of
    /// range.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(VllmError::InvalidConfig("n must be > 0".into()));
        }
        if self.max_tokens == 0 {
            return Err(VllmError::InvalidConfig("max_tokens must be > 0".into()));
        }
        match self.mode {
            DecodingMode::Greedy => {
                if self.n != 1 {
                    return Err(VllmError::InvalidConfig(
                        "greedy decoding requires n == 1".into(),
                    ));
                }
            }
            DecodingMode::Random {
                temperature, top_p, ..
            } => {
                if temperature <= 0.0 {
                    return Err(VllmError::InvalidConfig("temperature must be > 0".into()));
                }
                if !(0.0..=1.0).contains(&top_p) || top_p == 0.0 {
                    return Err(VllmError::InvalidConfig("top_p must be in (0, 1]".into()));
                }
            }
            DecodingMode::Beam { width } => {
                if width == 0 {
                    return Err(VllmError::InvalidConfig("beam width must be > 0".into()));
                }
                if self.n != width {
                    return Err(VllmError::InvalidConfig(
                        "beam search requires n == width".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether this request uses beam search.
    #[must_use]
    pub fn is_beam_search(&self) -> bool {
        matches!(self.mode, DecodingMode::Beam { .. })
    }

    /// Number of candidate `(token, logprob)` pairs the executor must return
    /// per sequence: beam search needs `2k` candidates so the engine can keep
    /// `k` live beams even when some candidates terminate; other modes need
    /// one sampled token per output sequence.
    #[must_use]
    pub fn candidates_per_seq(&self) -> usize {
        match self.mode {
            DecodingMode::Beam { width } => 2 * width,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_valid() {
        assert!(SamplingParams::greedy(16).validate().is_ok());
    }

    #[test]
    fn greedy_with_n_gt_1_is_invalid() {
        let mut p = SamplingParams::greedy(16);
        p.n = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn beam_width_must_match_n() {
        let mut p = SamplingParams::beam(4, 16);
        assert!(p.validate().is_ok());
        assert_eq!(p.candidates_per_seq(), 8);
        p.n = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn random_knobs_validated() {
        let mut p = SamplingParams::parallel(2, 16);
        assert!(p.validate().is_ok());
        p.mode = DecodingMode::Random {
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
        };
        assert!(p.validate().is_err());
        p.mode = DecodingMode::Random {
            temperature: 1.0,
            top_k: 0,
            top_p: 0.0,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_limits_rejected() {
        let mut p = SamplingParams::greedy(16);
        p.max_tokens = 0;
        assert!(p.validate().is_err());
        let mut p = SamplingParams::greedy(16);
        p.n = 0;
        assert!(p.validate().is_err());
    }
}
