//! Elastic KV block-pool controller.
//!
//! The paper sizes the GPU/CPU block pools once at startup (§4.1 profiling
//! step) and never changes them. Follow-up work (eLLM, PAPERS.md) shows that
//! repartitioning KV memory against weight/activation memory as load shifts
//! buys real capacity, so this module adds the policy half of an elastic
//! pool: a small hysteresis controller that watches scheduler pressure
//! (queue depth, swap depth, free-block fraction) every step and proposes a
//! new GPU pool size within a configured `[min, max]` band. The mechanism
//! half — [`crate::block_manager::BlockSpaceManager::resize`] plus the
//! compaction journal replayed through [`crate::executor::CacheOps`] — lives
//! in the block manager; the engine glues the two together at the top of
//! every step so resizes ride the normal step plan.
//!
//! The controller is deliberately deterministic: the same pressure sequence
//! always produces the same resize sequence, which keeps trace replays and
//! the lockstep fault harness reproducible.

use crate::error::{Result, VllmError};

/// Environment variable prefix for the elastic-pool knobs (see README).
const ENV_PREFIX: &str = "VLLM_ELASTIC_";

/// Tuning knobs of the elastic pool controller.
///
/// All knobs can be overridden from the environment via
/// `VLLM_ELASTIC_MIN_BLOCKS`, `VLLM_ELASTIC_MAX_BLOCKS`,
/// `VLLM_ELASTIC_STEP_BLOCKS`, `VLLM_ELASTIC_LOW_WATERMARK`,
/// `VLLM_ELASTIC_HIGH_WATERMARK`, and `VLLM_ELASTIC_COOLDOWN_STEPS`
/// (see [`ElasticConfig::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Smallest GPU pool the controller may deflate to, in blocks.
    pub min_gpu_blocks: usize,
    /// Largest GPU pool the controller may inflate to, in blocks.
    pub max_gpu_blocks: usize,
    /// Resize granularity in blocks per action.
    pub step_blocks: usize,
    /// Inflate when the free-block fraction drops below this.
    pub low_free_fraction: f64,
    /// Deflate only while the free-block fraction stays above this.
    pub high_free_fraction: f64,
    /// Steps to wait between consecutive resize actions (hysteresis).
    pub cooldown_steps: u64,
}

impl ElasticConfig {
    /// Creates a config with default thresholds for a pool allowed to move
    /// within `[min_gpu_blocks, max_gpu_blocks]`.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if the band is empty or zero.
    pub fn new(min_gpu_blocks: usize, max_gpu_blocks: usize) -> Result<Self> {
        let cfg = Self {
            min_gpu_blocks,
            max_gpu_blocks,
            step_blocks: ((max_gpu_blocks.saturating_sub(min_gpu_blocks)) / 4).max(1),
            low_free_fraction: 0.10,
            high_free_fraction: 0.50,
            cooldown_steps: 4,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Creates a config like [`ElasticConfig::new`], then overrides every
    /// knob that has a parseable `VLLM_ELASTIC_*` environment variable.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if the resulting config is
    /// inconsistent (environment values are validated, not trusted).
    pub fn from_env(min_gpu_blocks: usize, max_gpu_blocks: usize) -> Result<Self> {
        let mut cfg = Self::new(min_gpu_blocks, max_gpu_blocks)?;
        let read_usize = |name: &str| -> Option<usize> {
            std::env::var(format!("{ENV_PREFIX}{name}"))
                .ok()
                .and_then(|v| v.trim().parse().ok())
        };
        let read_f64 = |name: &str| -> Option<f64> {
            std::env::var(format!("{ENV_PREFIX}{name}"))
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|v| v.is_finite())
        };
        if let Some(v) = read_usize("MIN_BLOCKS") {
            cfg.min_gpu_blocks = v;
        }
        if let Some(v) = read_usize("MAX_BLOCKS") {
            cfg.max_gpu_blocks = v;
        }
        if let Some(v) = read_usize("STEP_BLOCKS") {
            cfg.step_blocks = v;
        }
        if let Some(v) = read_f64("LOW_WATERMARK") {
            cfg.low_free_fraction = v;
        }
        if let Some(v) = read_f64("HIGH_WATERMARK") {
            cfg.high_free_fraction = v;
        }
        if let Some(v) = read_usize("COOLDOWN_STEPS") {
            cfg.cooldown_steps = v as u64;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Opt-in environment hook for servers that construct engines on the
    /// user's behalf: returns `Some(config)` only when at least one
    /// `VLLM_ELASTIC_*` variable is set, with the band defaulting to
    /// `[max(1, total/4), total]` before the env overrides apply.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if the environment describes an
    /// inconsistent config (unset environment is `Ok(None)`, never an
    /// error).
    pub fn enabled_from_env(total_gpu_blocks: usize) -> Result<Option<Self>> {
        const KNOBS: [&str; 6] = [
            "MIN_BLOCKS",
            "MAX_BLOCKS",
            "STEP_BLOCKS",
            "LOW_WATERMARK",
            "HIGH_WATERMARK",
            "COOLDOWN_STEPS",
        ];
        if KNOBS
            .iter()
            .all(|k| std::env::var_os(format!("{ENV_PREFIX}{k}")).is_none())
        {
            return Ok(None);
        }
        Self::from_env((total_gpu_blocks / 4).max(1), total_gpu_blocks).map(Some)
    }

    fn validate(&self) -> Result<()> {
        if self.min_gpu_blocks == 0 {
            return Err(VllmError::InvalidConfig(
                "elastic min_gpu_blocks must be > 0".into(),
            ));
        }
        if self.max_gpu_blocks < self.min_gpu_blocks {
            return Err(VllmError::InvalidConfig(format!(
                "elastic band is empty: max {} < min {}",
                self.max_gpu_blocks, self.min_gpu_blocks
            )));
        }
        if self.step_blocks == 0 {
            return Err(VllmError::InvalidConfig(
                "elastic step_blocks must be > 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.low_free_fraction)
            || !(0.0..=1.0).contains(&self.high_free_fraction)
            || self.low_free_fraction >= self.high_free_fraction
        {
            return Err(VllmError::InvalidConfig(format!(
                "elastic watermarks must satisfy 0 <= low < high <= 1, got low {} high {}",
                self.low_free_fraction, self.high_free_fraction
            )));
        }
        Ok(())
    }
}

/// One step's observation of pool pressure, sampled by the engine before
/// scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolPressure {
    /// Current GPU pool size in blocks.
    pub total_blocks: usize,
    /// Free GPU blocks.
    pub free_blocks: usize,
    /// Allocated GPU blocks (the working set a shrink cannot evict).
    pub allocated_blocks: usize,
    /// Requests queued but not yet admitted.
    pub waiting: usize,
    /// Requests preempted to CPU memory awaiting swap-in.
    pub swapped: usize,
}

impl PoolPressure {
    /// Fraction of the pool currently free.
    #[must_use]
    pub fn free_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.free_blocks as f64 / self.total_blocks as f64
    }
}

/// The action the controller proposes for a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticAction {
    /// Grow the GPU pool to this many blocks.
    Inflate(usize),
    /// Shrink the GPU pool to this many blocks (compacting first).
    Deflate(usize),
}

impl ElasticAction {
    /// The target GPU pool size of the action, in blocks.
    #[must_use]
    pub fn target(&self) -> usize {
        match *self {
            Self::Inflate(n) | Self::Deflate(n) => n,
        }
    }
}

/// Hysteresis controller deciding when the GPU pool inflates or deflates.
///
/// Policy per observation:
///
/// * **inflate** by `step_blocks` (capped at `max_gpu_blocks`) while demand
///   is visibly unmet — requests waiting or swapped out, or the free
///   fraction below `low_free_fraction`;
/// * **deflate** by `step_blocks` (floored at `min_gpu_blocks` and at the
///   live working set) while the pool is visibly oversized — no queued or
///   swapped work and the free fraction above `high_free_fraction`;
/// * otherwise hold, and always hold for `cooldown_steps` observations after
///   any action so the pool cannot thrash.
#[derive(Debug, Clone)]
pub struct ElasticController {
    config: ElasticConfig,
    cooldown: u64,
    num_inflations: u64,
    num_deflations: u64,
}

impl ElasticController {
    /// Creates a controller with the given knobs.
    #[must_use]
    pub fn new(config: ElasticConfig) -> Self {
        Self {
            config,
            cooldown: 0,
            num_inflations: 0,
            num_deflations: 0,
        }
    }

    /// The controller's knobs.
    #[must_use]
    pub fn config(&self) -> &ElasticConfig {
        &self.config
    }

    /// Total inflate actions taken.
    #[must_use]
    pub fn num_inflations(&self) -> u64 {
        self.num_inflations
    }

    /// Total deflate actions taken.
    #[must_use]
    pub fn num_deflations(&self) -> u64 {
        self.num_deflations
    }

    /// Observes one step's pressure and proposes a resize, or `None` to
    /// hold. The caller is expected to apply the action (the controller
    /// assumes proposals take effect and starts its cooldown).
    pub fn decide(&mut self, p: &PoolPressure) -> Option<ElasticAction> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let c = &self.config;
        let unmet = p.waiting > 0 || p.swapped > 0 || p.free_fraction() < c.low_free_fraction;
        if unmet && p.total_blocks < c.max_gpu_blocks {
            let target = (p.total_blocks + c.step_blocks).min(c.max_gpu_blocks);
            self.cooldown = c.cooldown_steps;
            self.num_inflations += 1;
            return Some(ElasticAction::Inflate(target));
        }
        let oversized =
            p.waiting == 0 && p.swapped == 0 && p.free_fraction() > c.high_free_fraction;
        if oversized && p.total_blocks > c.min_gpu_blocks {
            let floor = c.min_gpu_blocks.max(p.allocated_blocks);
            let target = p.total_blocks.saturating_sub(c.step_blocks).max(floor);
            if target < p.total_blocks {
                self.cooldown = c.cooldown_steps;
                self.num_deflations += 1;
                return Some(ElasticAction::Deflate(target));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure(total: usize, free: usize, waiting: usize) -> PoolPressure {
        PoolPressure {
            total_blocks: total,
            free_blocks: free,
            allocated_blocks: total - free,
            waiting,
            swapped: 0,
        }
    }

    #[test]
    fn inflates_under_queue_pressure() {
        let cfg = ElasticConfig::new(16, 64).unwrap();
        let mut c = ElasticController::new(cfg);
        let action = c.decide(&pressure(16, 8, 3)).unwrap();
        assert_eq!(action, ElasticAction::Inflate(16 + cfg.step_blocks));
        // Cooldown: the very next observation holds even under pressure.
        assert_eq!(c.decide(&pressure(16, 0, 3)), None);
    }

    #[test]
    fn inflate_caps_at_max() {
        let cfg = ElasticConfig {
            cooldown_steps: 0,
            ..ElasticConfig::new(16, 20).unwrap()
        };
        let mut c = ElasticController::new(cfg);
        let action = c.decide(&pressure(19, 0, 1)).unwrap();
        assert_eq!(action.target(), 20);
        // At the cap, pressure can no longer inflate.
        assert_eq!(c.decide(&pressure(20, 0, 5)), None);
    }

    #[test]
    fn deflates_when_idle_and_mostly_free() {
        let cfg = ElasticConfig {
            cooldown_steps: 0,
            step_blocks: 8,
            ..ElasticConfig::new(16, 64).unwrap()
        };
        let mut c = ElasticController::new(cfg);
        let action = c.decide(&pressure(64, 60, 0)).unwrap();
        assert_eq!(action, ElasticAction::Deflate(56));
        assert_eq!(c.num_deflations(), 1);
    }

    #[test]
    fn deflate_floors_at_working_set() {
        let cfg = ElasticConfig {
            cooldown_steps: 0,
            step_blocks: 32,
            ..ElasticConfig::new(4, 64).unwrap()
        };
        let mut c = ElasticController::new(cfg);
        // 40/64 free, 24 allocated: target 64-32=32 is fine (>= 24).
        assert_eq!(
            c.decide(&pressure(64, 40, 0)),
            Some(ElasticAction::Deflate(32))
        );
        // 34/40 free, 6 allocated: target 40-32=8 still clears the
        // working-set floor of 6.
        assert_eq!(
            c.decide(&pressure(40, 34, 0)),
            Some(ElasticAction::Deflate(8))
        );
        // Nearly full pool never deflates below its working set.
        assert_eq!(
            c.decide(&pressure(8, 7, 0)),
            Some(ElasticAction::Deflate(4))
        );
        assert_eq!(c.decide(&pressure(4, 1, 0)), None);
    }

    #[test]
    fn holds_in_the_comfort_band() {
        let cfg = ElasticConfig {
            cooldown_steps: 0,
            ..ElasticConfig::new(16, 64).unwrap()
        };
        let mut c = ElasticController::new(cfg);
        // 25% free: above low (10%), below high (50%) — hold.
        assert_eq!(c.decide(&pressure(32, 8, 0)), None);
        assert_eq!(c.num_inflations() + c.num_deflations(), 0);
    }

    #[test]
    fn config_validates_band_and_watermarks() {
        assert!(ElasticConfig::new(0, 8).is_err());
        assert!(ElasticConfig::new(8, 4).is_err());
        let bad = ElasticConfig {
            low_free_fraction: 0.9,
            high_free_fraction: 0.2,
            ..ElasticConfig::new(4, 8).unwrap()
        };
        assert!(bad.validate().is_err());
    }
}
