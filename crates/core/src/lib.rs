//! # vllm-core
//!
//! Core of a Rust reproduction of *Efficient Memory Management for Large
//! Language Model Serving with PagedAttention* (SOSP 2023): block-level KV
//! cache management (block tables, reference counting, copy-on-write),
//! iteration-level FCFS scheduling with all-or-nothing preemption (swapping
//! or recomputation), decoding algorithms (greedy, sampling, parallel
//! sampling, beam search, shared prefixes), and the serving engine that ties
//! them to a pluggable model executor.
//!
//! The numeric CPU transformer backend lives in `vllm-model`; the
//! discrete-event serving simulator lives in `vllm-sim`; contiguous-KV
//! baselines (Orca, FasterTransformer) live in `vllm-baselines`.
//!
//! # Examples
//!
//! Allocate, fork, and copy-on-write KV blocks directly:
//!
//! ```
//! use vllm_core::{BlockSpaceManager, CacheConfig, SamplingParams, Sequence, SequenceGroup};
//!
//! let cfg = CacheConfig::new(16, 64, 0).unwrap();
//! let mut manager = BlockSpaceManager::new(&cfg);
//! let seq = Sequence::new(0, (0..20).collect(), cfg.block_size);
//! let group = SequenceGroup::new("r0", seq, SamplingParams::greedy(8), 0.0);
//! manager.allocate(&group).unwrap();
//! assert_eq!(manager.block_table(0).unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod beam;
pub mod block;
pub mod block_manager;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod error;
pub mod executor;
pub mod fault;
pub mod handoff;
pub mod metrics;
pub mod mock;
pub mod plan;
pub mod postprocess;
pub mod prefix;
pub mod request;
pub mod sampling;
pub mod scheduler;
pub mod sequence;

pub use beam::{plan_beam_step, BeamExtension, BeamInput, BeamPlan};
pub use block::{BlockAllocator, Device, PhysicalBlock, PhysicalBlockId};
pub use block_manager::{
    AllocStatus, BlockCopy, BlockManagerMetrics, BlockSpaceManager, PoolRemap,
};
pub use config::{CacheConfig, PreemptionMode, SchedulerConfig, VictimPolicy, DEFAULT_BLOCK_SIZE};
pub use elastic::{ElasticAction, ElasticConfig, ElasticController, PoolPressure};
pub use engine::{CompletionOutput, EngineLoad, LlmEngine, RequestOutput};
pub use error::{ErrorKind, Result, VllmError};
pub use executor::{BlockMove, CacheOps, ModelExecutor, SeqStepInput, SeqStepOutput, StepResult};
pub use fault::{FaultControls, FaultInjector};
pub use handoff::{HandoffPayload, KvBlockBytes, KvBlockInstall};
pub use metrics::{
    EngineMetrics, LatencyTracker, MemoryStats, RequestLatency, StepSnapshot, TraceStats,
};
pub use plan::{
    materialize_batch, PreemptionEvent, PreemptionKind, StageTimings, StepBudget, StepPlan,
    StepTrace,
};
pub use prefix::{chunk_hashes, Prefix, PrefixId, PrefixPool};
pub use request::{GenerationMode, GenerationRequest};
pub use sampling::{DecodingMode, SamplingParams, TokenId};
pub use scheduler::{ScheduledGroup, Scheduler, SchedulerMetrics, SchedulerStats};
pub use sequence::{SeqId, Sequence, SequenceData, SequenceGroup, SequenceStatus};

/// The telemetry subsystem (re-exported from `vllm-telemetry`): metrics
/// registry, lifecycle event log, and text/JSON exposition.
pub use vllm_telemetry as telemetry;
