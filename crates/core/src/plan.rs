//! The first-class artifacts of the staged step pipeline.
//!
//! One engine iteration flows through four explicit stages:
//!
//! 1. **schedule** — [`crate::scheduler::Scheduler::schedule`] produces an
//!    immutable [`StepPlan`]: the scheduled groups, the batched cache
//!    operations drained from the block manager, the preemption events, and
//!    the token budget spent.
//! 2. **prepare** — [`materialize_batch`] commits the plan by filling in the
//!    per-sequence model inputs (token slices, positions, block tables,
//!    candidate counts) from the scheduler's live state.
//! 3. **execute** — a [`crate::executor::ModelExecutor`] consumes the plan
//!    via `begin_step(&StepPlan)` and returns a
//!    [`crate::executor::StepResult`].
//! 4. **postprocess** — `crate::postprocess` applies sampled tokens, forks,
//!    beam updates, and stop conditions, then reaps finished requests.
//!
//! Every stage reports into a [`StepTrace`], the structured per-step record
//! exposed through `LlmEngine::last_trace` and aggregated by
//! [`crate::metrics::TraceStats`].

use crate::error::{Result, VllmError};
use crate::executor::{CacheOps, SeqStepInput};
use crate::sampling::DecodingMode;
use crate::scheduler::{ScheduledGroup, Scheduler};

/// How a preempted group's state is recovered (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptionKind {
    /// Blocks moved to the CPU pool, restored by swap-in later.
    Swap,
    /// Blocks freed; the sequence re-enters the waiting queue and recomputes
    /// its KV cache as one prefill.
    Recompute,
}

/// One preemption performed while planning a step.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionEvent {
    /// Request id of the preempted group.
    pub request_id: String,
    /// Recovery mechanism chosen for the group.
    pub kind: PreemptionKind,
    /// Blocks written to the CPU pool (0 for recomputation).
    pub blocks_swapped_out: usize,
}

/// Token/sequence budget of a planned step, against the scheduler limits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBudget {
    /// Tokens this iteration processes.
    pub num_batched_tokens: usize,
    /// Configured cap on batched tokens per iteration.
    pub max_num_batched_tokens: usize,
    /// Configured cap on concurrently running sequences.
    pub max_num_seqs: usize,
}

/// The plan for one iteration, produced by the schedule stage and completed
/// by the prepare stage. Execute and postprocess treat it as read-only.
#[derive(Debug, Clone, Default)]
pub struct StepPlan {
    /// Groups participating in this iteration.
    pub scheduled: Vec<ScheduledGroup>,
    /// Whether this is a prompt (prefill) iteration.
    pub is_prompt_run: bool,
    /// Batched cache operations (swap in/out, copy-on-write) the executor
    /// must apply before computing the step, drained from the block manager.
    pub cache_ops: CacheOps,
    /// Groups preempted while planning this iteration.
    pub preemptions: Vec<PreemptionEvent>,
    /// Groups swapped back to GPU memory this iteration, as
    /// `(request_id, blocks_swapped_in)` pairs.
    pub swapped_in: Vec<(String, usize)>,
    /// Token budget spent vs. the configured limits.
    pub budget: StepBudget,
    /// Requests rejected this round (prompt can never fit).
    pub ignored: Vec<String>,
    /// Per-sequence model inputs, filled by the prepare stage.
    pub items: Vec<SeqStepInput>,
    /// KV block size in tokens.
    pub block_size: usize,
}

impl StepPlan {
    /// Whether the iteration has no work at all: nothing scheduled and no
    /// cache traffic (swaps, migrations, pool resizes) to carry out.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.cache_ops.is_empty()
    }

    /// Number of groups preempted while planning this step.
    #[must_use]
    pub fn num_preempted(&self) -> usize {
        self.preemptions.len()
    }

    /// Total number of tokens processed in the iteration (prepare stage
    /// must have run).
    #[must_use]
    pub fn num_tokens(&self) -> usize {
        self.items.iter().map(|i| i.tokens.len()).sum()
    }
}

/// FNV-1a hash used to derive deterministic per-request sampling seeds.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The prepare stage: fills [`StepPlan::items`] with per-sequence model
/// inputs for every scheduled group, reading block tables and sampling
/// parameters from the scheduler's live state.
///
/// # Errors
///
/// Returns [`VllmError::UnknownRequest`] / [`VllmError::UnknownSequence`]
/// if the plan references state the scheduler no longer holds (a pipeline
/// bug, not a recoverable condition).
pub fn materialize_batch(scheduler: &Scheduler, plan: &mut StepPlan) -> Result<()> {
    let mut items = Vec::new();
    for sg in &plan.scheduled {
        let group = scheduler
            .group(&sg.request_id)
            .ok_or_else(|| VllmError::UnknownRequest(sg.request_id.clone()))?;
        let params = &group.sampling_params;
        let base_seed = params
            .seed
            .unwrap_or_else(|| fnv1a(group.request_id.as_bytes()));
        for &seq_id in &sg.seq_ids {
            let seq = group
                .get(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            let block_table = scheduler.block_manager().gpu_block_ids(seq_id)?;
            if let Some(chunk) = sg.chunk {
                // Chunked prefill: the item carries the prompt up to the
                // chunk's end; rows before `chunk.start` are already cached,
                // and only a final chunk samples.
                debug_assert!(chunk.end <= seq.len());
                let num_candidates = if chunk.is_final {
                    match params.mode {
                        DecodingMode::Beam { width } => 2 * width,
                        _ => params.n,
                    }
                } else {
                    0
                };
                items.push(SeqStepInput {
                    seq_id,
                    tokens: seq.data.tokens()[..chunk.end].to_vec(),
                    first_position: 0,
                    num_cached_tokens: chunk.start,
                    block_table,
                    num_candidates,
                    mode: params.mode,
                    seed: base_seed,
                    chunked: true,
                });
                continue;
            }
            let (tokens, first_position) = if sg.is_prompt {
                (seq.data.tokens().to_vec(), 0)
            } else {
                let last = seq
                    .data
                    .last_token()
                    .ok_or(VllmError::UnknownSequence(seq_id))?;
                (vec![last], seq.len() - 1)
            };
            let num_candidates = if sg.is_prompt {
                match params.mode {
                    DecodingMode::Beam { width } => 2 * width,
                    _ => params.n,
                }
            } else {
                params.candidates_per_seq()
            };
            items.push(SeqStepInput {
                seq_id,
                tokens,
                first_position,
                num_cached_tokens: if sg.is_prompt {
                    sg.num_cached_tokens
                } else {
                    0
                },
                block_table,
                num_candidates,
                mode: params.mode,
                seed: base_seed,
                chunked: false,
            });
        }
    }
    plan.items = items;
    Ok(())
}

/// Wall-clock duration of each pipeline stage, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Schedule stage (scheduler planning + cache-op batching).
    pub schedule: f64,
    /// Prepare stage (batch materialization).
    pub prepare: f64,
    /// Execute stage (model forward / cost model), host wall time.
    pub execute: f64,
    /// Postprocess stage (sampling bookkeeping, forks, stops, reaping).
    pub postprocess: f64,
}

impl StageTimings {
    /// Cumulative end time of each stage relative to the step start:
    /// monotone non-decreasing by construction.
    #[must_use]
    pub fn stage_ends(&self) -> [f64; 4] {
        let s = self.schedule;
        let p = s + self.prepare;
        let e = p + self.execute;
        [s, p, e, e + self.postprocess]
    }

    /// Total wall time of the step across all stages.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.schedule + self.prepare + self.execute + self.postprocess
    }
}

/// Structured record of one engine step, emitted by every
/// `LlmEngine::step` call (including empty iterations).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTrace {
    /// Monotone step counter (0 for the engine's first step).
    pub step_index: u64,
    /// Per-stage wall-clock durations.
    pub stages: StageTimings,
    /// Whether the step was a prompt (prefill) iteration.
    pub is_prompt_run: bool,
    /// Tokens scheduled into the iteration.
    pub tokens_scheduled: usize,
    /// Sequences that ran in the iteration.
    pub num_seqs: usize,
    /// Copy-on-write block copies carried by the step.
    pub blocks_copied: usize,
    /// Blocks swapped CPU→GPU by the step.
    pub blocks_swapped_in: usize,
    /// Blocks swapped GPU→CPU by the step.
    pub blocks_swapped_out: usize,
    /// Live blocks migrated by pool compaction in the step.
    pub blocks_migrated: usize,
    /// Preemption events recorded while planning the step.
    pub preemptions: Vec<PreemptionEvent>,
}

impl StepTrace {
    /// Builds the trace skeleton from a completed plan (stage timings are
    /// filled in as the stages run).
    #[must_use]
    pub fn from_plan(step_index: u64, plan: &StepPlan) -> Self {
        Self {
            step_index,
            stages: StageTimings::default(),
            is_prompt_run: plan.is_prompt_run,
            tokens_scheduled: plan.budget.num_batched_tokens,
            num_seqs: plan.scheduled.iter().map(|g| g.seq_ids.len()).sum(),
            blocks_copied: plan.cache_ops.copies.len(),
            blocks_swapped_in: plan.cache_ops.swap_in.len(),
            blocks_swapped_out: plan.cache_ops.swap_out.len(),
            blocks_migrated: plan.cache_ops.moves.len(),
            preemptions: plan.preemptions.clone(),
        }
    }

    /// Preemptions recovered by swapping.
    #[must_use]
    pub fn num_swap_preemptions(&self) -> usize {
        self.preemptions
            .iter()
            .filter(|p| p.kind == PreemptionKind::Swap)
            .count()
    }

    /// Preemptions recovered by recomputation.
    #[must_use]
    pub fn num_recompute_preemptions(&self) -> usize {
        self.preemptions
            .iter()
            .filter(|p| p.kind == PreemptionKind::Recompute)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ends_are_monotone() {
        let t = StageTimings {
            schedule: 0.1,
            prepare: 0.0,
            execute: 0.5,
            postprocess: 0.2,
        };
        let ends = t.stage_ends();
        for w in ends.windows(2) {
            assert!(w[1] >= w[0], "stage ends must be monotone: {ends:?}");
        }
        assert!((t.total() - 0.8).abs() < 1e-12);
        assert!((ends[3] - t.total()).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_detection() {
        let mut plan = StepPlan::default();
        assert!(plan.is_empty());
        plan.cache_ops
            .swap_out
            .push(crate::block_manager::BlockCopy { src: 0, dst: 1 });
        assert!(!plan.is_empty(), "swap traffic alone is still work");
    }

    #[test]
    fn trace_counts_preemption_kinds() {
        let mut plan = StepPlan::default();
        plan.preemptions.push(PreemptionEvent {
            request_id: "a".into(),
            kind: PreemptionKind::Swap,
            blocks_swapped_out: 2,
        });
        plan.preemptions.push(PreemptionEvent {
            request_id: "b".into(),
            kind: PreemptionKind::Recompute,
            blocks_swapped_out: 0,
        });
        let trace = StepTrace::from_plan(3, &plan);
        assert_eq!(trace.step_index, 3);
        assert_eq!(trace.num_swap_preemptions(), 1);
        assert_eq!(trace.num_recompute_preemptions(), 1);
    }
}
