//! Iteration-level FCFS scheduler with all-or-nothing preemption (§4.5).
//!
//! Each call to [`Scheduler::schedule`] plans one model iteration: either a
//! *prompt step* (one or more newly admitted requests run their prefill) or a
//! *generation step* (every running sequence advances by one token). When
//! GPU blocks run out, the latest-arrived running group is preempted —
//! swapped to CPU memory or rolled back for recomputation — and, as in the
//! paper, no new request is admitted while any group remains swapped out.
//!
//! With a step token budget configured
//! ([`SchedulerConfig::step_token_budget`], env `VLLM_STEP_TOKEN_BUDGET`),
//! the prompt/generation dichotomy dissolves into **chunked prefill**: every
//! step first schedules all decode-phase sequences, then spends the leftover
//! budget advancing prompts in bounded chunks ([`PrefillChunk`]) co-batched
//! into the same plan, so one long prompt no longer stalls the decoders
//! behind it. Prompt *memory* is still reserved all-or-nothing at admission;
//! only the compute is chunked, which keeps preemption accounting unchanged.

use std::collections::VecDeque;

use crate::block_manager::{AllocStatus, BlockSpaceManager};
use crate::config::{CacheConfig, PreemptionMode, SchedulerConfig, VictimPolicy};
use crate::error::{Result, VllmError};
use crate::plan::{PreemptionEvent, PreemptionKind, StepBudget, StepPlan};
use crate::sequence::{SeqId, SequenceGroup, SequenceStatus};

/// One prefill chunk scheduled for an iteration (chunked-prefill mode): the
/// sequence's prompt rows `[start, end)` run this step, attending over every
/// previously computed position plus a causal intra-chunk mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillChunk {
    /// First prompt row computed this step (the group's chunk cursor).
    pub start: usize,
    /// One past the last prompt row computed this step.
    pub end: usize,
    /// Whether this is the group's first scheduled chunk (admission).
    pub is_first: bool,
    /// Whether this chunk completes the prompt. Only a final chunk samples;
    /// earlier chunks are KV-only.
    pub is_final: bool,
}

impl PrefillChunk {
    /// Tokens computed by this chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk computes no tokens (never produced by the
    /// scheduler; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Per-group slice of a scheduled iteration.
#[derive(Debug, Clone)]
pub struct ScheduledGroup {
    /// Request id of the group.
    pub request_id: String,
    /// Whether this group runs its prompt (prefill) this iteration.
    pub is_prompt: bool,
    /// Sequences participating in this iteration.
    pub seq_ids: Vec<SeqId>,
    /// Number of tokens this group contributes to the iteration's batch.
    pub num_tokens: usize,
    /// Number of leading prompt tokens whose KV cache is already present
    /// (shared-prefix requests skip recomputing these; for a chunk, every
    /// row before `chunk.start`).
    pub num_cached_tokens: usize,
    /// The prompt chunk this group runs when scheduled under a step token
    /// budget; `None` for decode groups and legacy all-or-nothing prefills.
    pub chunk: Option<PrefillChunk>,
    /// Trace context of the group (inactive when the request is unsampled),
    /// so the engine can attribute step work to request spans.
    pub trace: vllm_telemetry::TraceContext,
}

/// Counters exported for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Total preemptions (swap + recompute).
    pub num_preemptions: u64,
    /// Preemptions recovered by swapping.
    pub num_swap_preemptions: u64,
    /// Preemptions recovered by recomputation.
    pub num_recompute_preemptions: u64,
}

/// Cached telemetry handles for the scheduler's queue gauges and preemption
/// counters; registered once, updated every step via
/// [`Scheduler::publish_metrics`].
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    /// `vllm_scheduler_waiting_requests` gauge.
    pub waiting_requests: vllm_telemetry::Gauge,
    /// `vllm_scheduler_running_requests` gauge.
    pub running_requests: vllm_telemetry::Gauge,
    /// `vllm_scheduler_swapped_requests` gauge.
    pub swapped_requests: vllm_telemetry::Gauge,
    /// `vllm_scheduler_preemptions_total` counter.
    pub preemptions_total: vllm_telemetry::Counter,
    /// `vllm_scheduler_swap_preemptions_total` counter.
    pub swap_preemptions_total: vllm_telemetry::Counter,
    /// `vllm_scheduler_recompute_preemptions_total` counter.
    pub recompute_preemptions_total: vllm_telemetry::Counter,
}

impl SchedulerMetrics {
    /// Registers the scheduler's instruments in `telemetry`.
    #[must_use]
    pub fn register(telemetry: &vllm_telemetry::Telemetry) -> Self {
        let r = telemetry.registry();
        Self {
            waiting_requests: r.gauge(
                "vllm_scheduler_waiting_requests",
                "Requests queued but not yet admitted.",
            ),
            running_requests: r.gauge(
                "vllm_scheduler_running_requests",
                "Requests in the running batch.",
            ),
            swapped_requests: r.gauge(
                "vllm_scheduler_swapped_requests",
                "Requests preempted to CPU memory awaiting swap-in.",
            ),
            preemptions_total: r.counter(
                "vllm_scheduler_preemptions_total",
                "Preemption events (swap + recompute).",
            ),
            swap_preemptions_total: r.counter(
                "vllm_scheduler_swap_preemptions_total",
                "Preemptions recovered by swapping blocks to CPU memory.",
            ),
            recompute_preemptions_total: r.counter(
                "vllm_scheduler_recompute_preemptions_total",
                "Preemptions recovered by freeing blocks and recomputing.",
            ),
        }
    }
}

/// FCFS iteration-level scheduler owning all live sequence groups.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    block_manager: BlockSpaceManager,
    /// Sorted by arrival time (FCFS).
    waiting: VecDeque<SequenceGroup>,
    running: Vec<SequenceGroup>,
    /// Sorted by arrival time (FCFS).
    swapped: VecDeque<SequenceGroup>,
    finished: Vec<SequenceGroup>,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Creates a scheduler over a fresh block manager.
    #[must_use]
    pub fn new(scheduler_config: SchedulerConfig, cache_config: &CacheConfig) -> Self {
        Self {
            config: scheduler_config,
            block_manager: BlockSpaceManager::new(cache_config),
            waiting: VecDeque::new(),
            running: Vec::new(),
            swapped: VecDeque::new(),
            finished: Vec::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// The scheduler configuration.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Immutable view of the block manager (metrics).
    #[must_use]
    pub fn block_manager(&self) -> &BlockSpaceManager {
        &self.block_manager
    }

    /// Mutable access to the block manager (engine fork/free callbacks).
    pub fn block_manager_mut(&mut self) -> &mut BlockSpaceManager {
        &mut self.block_manager
    }

    /// Enables (`Some`, non-zero) or disables (`None`) scheduler-budgeted
    /// chunked prefill after construction. Safe to flip between steps:
    /// chunked mode only changes how *new* compute is scheduled, never how
    /// memory is accounted.
    pub fn set_step_token_budget(&mut self, budget: Option<usize>) {
        self.config.step_token_budget = budget.filter(|&b| b > 0);
    }

    /// Scheduling counters.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Publishes the current queue depths and cumulative preemption counts
    /// to the cached telemetry handles.
    pub fn publish_metrics(&self, m: &SchedulerMetrics) {
        m.waiting_requests.set(self.waiting.len() as f64);
        m.running_requests.set(self.running.len() as f64);
        m.swapped_requests.set(self.swapped.len() as f64);
        m.preemptions_total
            .set_to_at_least(self.stats.num_preemptions);
        m.swap_preemptions_total
            .set_to_at_least(self.stats.num_swap_preemptions);
        m.recompute_preemptions_total
            .set_to_at_least(self.stats.num_recompute_preemptions);
    }

    /// Whether `a` ranks strictly after `b` in a scheduling queue: higher
    /// priority first, ties broken FCFS by arrival time. With all priorities
    /// at their default (0) this degenerates to pure arrival order.
    fn ranks_after(a: &SequenceGroup, b: &SequenceGroup) -> bool {
        a.priority < b.priority || (a.priority == b.priority && a.arrival_time > b.arrival_time)
    }

    /// Enqueues a new request, keeping the waiting queue in (priority,
    /// arrival) order.
    pub fn add_group(&mut self, group: SequenceGroup) {
        let pos = self
            .waiting
            .iter()
            .position(|g| Self::ranks_after(g, &group))
            .unwrap_or(self.waiting.len());
        self.waiting.insert(pos, group);
    }

    /// Number of queued (not yet admitted) requests.
    #[must_use]
    pub fn num_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Number of running requests.
    #[must_use]
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Number of swapped-out requests.
    #[must_use]
    pub fn num_swapped(&self) -> usize {
        self.swapped.len()
    }

    /// Whether any request is still queued, running, or swapped.
    #[must_use]
    pub fn has_unfinished(&self) -> bool {
        !(self.waiting.is_empty() && self.running.is_empty() && self.swapped.is_empty())
    }

    /// Estimated tokens of work still owed to admitted requests: for every
    /// unfinished sequence, uncomputed prompt/history tokens plus the decode
    /// budget left before `max_tokens`. Join-shortest-queue routing compares
    /// replicas by this rather than raw request counts so one long prompt
    /// weighs more than many short ones.
    #[must_use]
    pub fn outstanding_tokens(&self) -> u64 {
        let group_tokens = |g: &SequenceGroup| -> u64 {
            let max_tokens = g.sampling_params.max_tokens;
            g.seqs()
                .into_iter()
                .filter(|s| !s.is_finished())
                .map(|s| {
                    let prefill = s.len().saturating_sub(s.data.num_computed_tokens());
                    let decode = max_tokens.saturating_sub(s.data.num_output_tokens());
                    (prefill + decode) as u64
                })
                .sum()
        };
        self.waiting
            .iter()
            .chain(self.running.iter())
            .chain(self.swapped.iter())
            .map(group_tokens)
            .sum()
    }

    /// Looks up a live group by request id.
    #[must_use]
    pub fn group(&self, request_id: &str) -> Option<&SequenceGroup> {
        self.running
            .iter()
            .chain(self.waiting.iter())
            .chain(self.swapped.iter())
            .find(|g| g.request_id == request_id)
    }

    /// Looks up a live group by request id, mutably.
    pub fn group_mut(&mut self, request_id: &str) -> Option<&mut SequenceGroup> {
        self.running
            .iter_mut()
            .chain(self.waiting.iter_mut())
            .chain(self.swapped.iter_mut())
            .find(|g| g.request_id == request_id)
    }

    /// Aborts a request wherever it lives, freeing its blocks.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownRequest`] if no live group matches.
    pub fn abort(&mut self, request_id: &str) -> Result<()> {
        self.finish_with_status(request_id, SequenceStatus::FinishedAborted)
    }

    /// Removes a live group from whichever queue holds it, frees its blocks,
    /// marks its sequences with `status`, and moves it to the finished list.
    fn finish_with_status(&mut self, request_id: &str, status: SequenceStatus) -> Result<()> {
        let from_queue = |q: &mut Vec<SequenceGroup>, id: &str| {
            q.iter()
                .position(|g| g.request_id == id)
                .map(|i| q.remove(i))
        };
        let mut group = from_queue(&mut self.running, request_id)
            .or_else(|| {
                self.waiting
                    .iter()
                    .position(|g| g.request_id == request_id)
                    .and_then(|i| self.waiting.remove(i))
            })
            .or_else(|| {
                self.swapped
                    .iter()
                    .position(|g| g.request_id == request_id)
                    .and_then(|i| self.swapped.remove(i))
            })
            .ok_or_else(|| VllmError::UnknownRequest(request_id.to_string()))?;
        for seq in group.seqs().iter().map(|s| s.seq_id).collect::<Vec<_>>() {
            self.block_manager.free(seq)?;
        }
        group.set_status_all(status);
        self.finished.push(group);
        Ok(())
    }

    /// Cancels every live group whose deadline has passed at virtual time
    /// `now`, freeing its blocks and marking it
    /// [`SequenceStatus::FinishedDeadline`]. Returns `(request_id,
    /// missed_by_seconds)` for each cancellation, in queue order.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors.
    pub fn cancel_expired(&mut self, now: f64) -> Result<Vec<(String, f64)>> {
        let expired: Vec<(String, f64)> = self
            .running
            .iter()
            .chain(self.waiting.iter())
            .chain(self.swapped.iter())
            .filter_map(|g| {
                g.deadline
                    .filter(|&d| now >= d)
                    .map(|d| (g.request_id.clone(), now - d))
            })
            .collect();
        for (id, _) in &expired {
            self.finish_with_status(id, SequenceStatus::FinishedDeadline)?;
        }
        Ok(expired)
    }

    /// Aborts every live group (waiting, running, and swapped), freeing all
    /// their blocks. Used to recover a consistent (empty) state after an
    /// executor failure: the paper's all-or-nothing eviction applied to the
    /// whole engine. Returns the aborted request ids in queue order.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors.
    pub fn abort_all(&mut self) -> Result<Vec<String>> {
        let ids: Vec<String> = self
            .running
            .iter()
            .chain(self.waiting.iter())
            .chain(self.swapped.iter())
            .map(|g| g.request_id.clone())
            .collect();
        for id in &ids {
            self.finish_with_status(id, SequenceStatus::FinishedAborted)?;
        }
        Ok(ids)
    }

    /// Plans one iteration: the schedule stage of the step pipeline.
    ///
    /// Returns an immutable [`StepPlan`] carrying the scheduled groups, the
    /// batched cache operations drained from the block manager, the
    /// preemption events, and the token budget spent. The prepare stage
    /// ([`crate::plan::materialize_batch`]) fills in the per-sequence model
    /// inputs afterwards.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors, which indicate a bug rather than
    /// a recoverable condition.
    pub fn schedule(&mut self) -> Result<StepPlan> {
        let mut plan = StepPlan {
            block_size: self.block_manager.block_size(),
            budget: StepBudget {
                num_batched_tokens: 0,
                max_num_batched_tokens: self.config.max_num_batched_tokens,
                max_num_seqs: self.config.max_num_seqs,
            },
            ..StepPlan::default()
        };

        if let Some(budget) = self.config.step_token_budget {
            // Chunked-prefill mode: decode work and prompt chunks co-batch
            // inside one plan under a per-step token budget.
            self.schedule_chunked(budget, &mut plan)?;
        } else {
            // Phase 1: admit new prompts, but only when nothing is swapped
            // out (§4.5: stop accepting new requests until preempted ones
            // complete).
            if self.swapped.is_empty() {
                self.schedule_prompts(&mut plan)?;
                if !plan.scheduled.is_empty() {
                    plan.is_prompt_run = true;
                    plan.cache_ops = self.block_manager.take_pending();
                    return Ok(plan);
                }
            }

            // Phase 2: one generation step for every running sequence,
            // preempting the lowest-priority groups if blocks run out.
            self.schedule_decodes(&mut plan)?;

            // Phase 3: swap groups back in while memory allows (FCFS).
            // Skipped if this very step had to preempt.
            if plan.preemptions.is_empty() {
                self.schedule_swap_in(&mut plan)?;
            }

            // Emit the generation-step plan.
            self.emit_decode_groups(&mut plan);
        }

        // Batch every cache operation this round produced into the plan
        // before the emptiness check: a step that only swapped a preempted
        // group out still carries work the executor must apply.
        plan.cache_ops = self.block_manager.take_pending();

        // Stall resolution: a request whose working set alone exceeds GPU
        // memory (e.g. many long parallel sequences) can neither run nor be
        // resumed, and nothing else will ever free memory for it. Abort it
        // rather than loop forever.
        if plan.is_empty()
            && plan.ignored.is_empty()
            && self.has_unfinished()
            && self.running.is_empty()
        {
            let victim = if !self.swapped.is_empty() {
                self.swapped.pop_front()
            } else if !self.waiting.is_empty() {
                // Waiting but not admittable with an otherwise idle pool
                // (e.g. pinned prefix blocks squeeze the request out).
                self.waiting.pop_front()
            } else {
                None
            };
            if let Some(mut group) = victim {
                for seq_id in group.seqs().iter().map(|s| s.seq_id).collect::<Vec<_>>() {
                    self.block_manager.free(seq_id)?;
                }
                group.set_status_all(SequenceStatus::FinishedAborted);
                plan.ignored.push(group.request_id.clone());
                self.finished.push(group);
            }
        }
        Ok(plan)
    }

    fn schedule_prompts(&mut self, plan: &mut StepPlan) -> Result<()> {
        let mut num_batched_tokens = 0usize;
        let mut num_seqs: usize = self
            .running
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum();

        while let Some(group) = self.waiting.front() {
            let waiting_seqs = group.seqs_with_status(SequenceStatus::Waiting);
            let prompt_len: usize = waiting_seqs.iter().map(|s| s.len()).sum();

            // Reject prompts that can never run.
            if prompt_len > self.config.max_model_len
                || self.block_manager.can_allocate(group) == AllocStatus::Never
            {
                let mut group = self.waiting.pop_front().expect("front exists");
                group.set_status_all(SequenceStatus::FinishedAborted);
                plan.ignored.push(group.request_id.clone());
                self.finished.push(group);
                continue;
            }
            if self.block_manager.can_allocate(group) != AllocStatus::Ok {
                break;
            }
            if num_batched_tokens + prompt_len > self.config.max_num_batched_tokens {
                break;
            }
            if num_seqs + group.max_num_seqs() > self.config.max_num_seqs {
                break;
            }

            let mut group = self.waiting.pop_front().expect("front exists");
            let num_cached_tokens = group.cached_prefix_len;
            if num_cached_tokens > 0 {
                // Any prefix CoW split is recorded in the block manager's
                // pending ops and drained into the plan.
                let prefix_blocks = group.prefix_blocks.clone();
                self.block_manager.allocate_with_prefix(
                    &group,
                    num_cached_tokens,
                    &prefix_blocks,
                )?;
            } else {
                self.block_manager.allocate(&group)?;
            }
            group.set_status_all(SequenceStatus::Running);
            num_batched_tokens += prompt_len;
            num_seqs += group.max_num_seqs();
            plan.budget.num_batched_tokens += prompt_len;
            plan.scheduled.push(ScheduledGroup {
                request_id: group.request_id.clone(),
                is_prompt: true,
                seq_ids: group.seq_ids_with_status(SequenceStatus::Running),
                num_tokens: prompt_len,
                num_cached_tokens,
                chunk: None,
                trace: group.trace,
            });
            self.running.push(group);
        }
        Ok(())
    }

    /// Whether any running sequence of `group` still has uncomputed prompt
    /// tokens (a partially prefilled group under chunked-prefill mode).
    fn group_in_prefill(group: &SequenceGroup) -> bool {
        group
            .seqs_with_status(SequenceStatus::Running)
            .iter()
            .any(|s| s.data.in_prefill())
    }

    /// Emits one generation-step [`ScheduledGroup`] per running group whose
    /// prompt is fully computed.
    fn emit_decode_groups(&self, plan: &mut StepPlan) {
        let chunked = self.config.step_token_budget.is_some();
        for group in &self.running {
            if chunked && Self::group_in_prefill(group) {
                continue;
            }
            let seq_ids = group.seq_ids_with_status(SequenceStatus::Running);
            if seq_ids.is_empty() {
                continue;
            }
            let num_tokens = seq_ids.len();
            plan.budget.num_batched_tokens += num_tokens;
            plan.scheduled.push(ScheduledGroup {
                request_id: group.request_id.clone(),
                is_prompt: false,
                seq_ids,
                num_tokens,
                num_cached_tokens: 0,
                chunk: None,
                trace: group.trace,
            });
        }
    }

    /// Plans one chunked-prefill iteration: decodes first (they are latency
    /// critical and cheap), then prompt chunks from whatever budget remains,
    /// all co-batched into the same plan. In-flight partial prefills advance
    /// before new requests are admitted, and — as in the legacy path — no new
    /// request is admitted while anything is swapped out.
    fn schedule_chunked(&mut self, budget: usize, plan: &mut StepPlan) -> Result<()> {
        // Phase 1: keep the running set feasible. Partially prefilled groups
        // already hold their full prompt allocation and pass through; decode
        // groups reserve their next-token slot, preempting if blocks run out.
        self.schedule_decodes(plan)?;
        if plan.preemptions.is_empty() {
            self.schedule_swap_in(plan)?;
        }

        // Phase 2: decode tokens are mandatory — they come out of the budget
        // first so chunk sizing sees only the remainder.
        self.emit_decode_groups(plan);
        let decode_tokens: usize = plan
            .scheduled
            .iter()
            .filter(|sg| !sg.is_prompt)
            .map(|sg| sg.num_tokens)
            .sum();
        let mut budget_left = budget.saturating_sub(decode_tokens);

        // Phase 3: advance in-flight partial prefills (FCFS — the running
        // queue is already in (priority, arrival) order after phase 1).
        //
        // Fairness cap: when requests are waiting and this step could admit
        // (nothing swapped, no preemption), each continuation chunk takes at
        // most half the then-remaining budget, leaving room for the queue
        // head to start its own prefill. Without the cap a long in-flight
        // prompt absorbs every step's full budget and short requests behind
        // it see the same TTFT as under all-or-nothing admission.
        let reserve_for_admission =
            !self.waiting.is_empty() && self.swapped.is_empty() && plan.preemptions.is_empty();
        for i in 0..self.running.len() {
            if budget_left == 0 {
                break;
            }
            let group = &self.running[i];
            if !Self::group_in_prefill(group) {
                continue;
            }
            let seq_ids = group.seq_ids_with_status(SequenceStatus::Running);
            if seq_ids.is_empty() {
                continue;
            }
            debug_assert_eq!(seq_ids.len(), 1, "prefill groups are single-sequence");
            let seq = group
                .get(seq_ids[0])
                .ok_or(VllmError::UnknownSequence(seq_ids[0]))?;
            let start = seq.data.num_computed_tokens();
            let prompt_len = seq.data.prompt_len();
            let share = if reserve_for_admission {
                (budget_left / 2).max(1)
            } else {
                budget_left
            };
            let end = (start + share).min(prompt_len);
            debug_assert!(end > start, "in-prefill sequences have rows left");
            budget_left -= end - start;
            plan.budget.num_batched_tokens += end - start;
            plan.scheduled.push(ScheduledGroup {
                request_id: group.request_id.clone(),
                is_prompt: true,
                seq_ids,
                num_tokens: end - start,
                num_cached_tokens: start,
                chunk: Some(PrefillChunk {
                    start,
                    end,
                    is_first: false,
                    is_final: end == prompt_len,
                }),
                trace: group.trace,
            });
        }

        // Phase 4: admit new prompts into the leftover budget (§4.5 gate:
        // nothing swapped out, and not on a step that had to preempt).
        if self.swapped.is_empty() && plan.preemptions.is_empty() {
            self.admit_chunked(plan, &mut budget_left)?;
        }

        plan.is_prompt_run = plan.scheduled.iter().any(|sg| sg.is_prompt);
        Ok(())
    }

    /// Admits waiting requests under chunked-prefill mode: each admission
    /// allocates the prompt's full block table up front (the paper's
    /// all-or-nothing *memory* reservation is kept — only the *compute* is
    /// chunked) and schedules a first chunk sized to the remaining budget.
    fn admit_chunked(&mut self, plan: &mut StepPlan, budget_left: &mut usize) -> Result<()> {
        let mut num_seqs: usize = self
            .running
            .iter()
            .map(|g| g.seqs_with_status(SequenceStatus::Running).len())
            .sum();

        while *budget_left > 0 {
            let Some(group) = self.waiting.front() else {
                break;
            };
            let waiting_seqs = group.seqs_with_status(SequenceStatus::Waiting);
            let prompt_len: usize = waiting_seqs.iter().map(|s| s.len()).sum();

            // Reject prompts that can never run (same rules as the legacy
            // path).
            if prompt_len > self.config.max_model_len
                || self.block_manager.can_allocate(group) == AllocStatus::Never
            {
                let mut group = self.waiting.pop_front().expect("front exists");
                group.set_status_all(SequenceStatus::FinishedAborted);
                plan.ignored.push(group.request_id.clone());
                self.finished.push(group);
                continue;
            }
            if self.block_manager.can_allocate(group) != AllocStatus::Ok {
                break;
            }
            if num_seqs + group.max_num_seqs() > self.config.max_num_seqs {
                break;
            }
            // Multi-sequence waiting groups (a recompute-returned fan-out)
            // keep the legacy all-or-nothing form: their sequences carry
            // independent cursors a single chunk range cannot describe.
            if waiting_seqs.len() > 1 && prompt_len > *budget_left {
                break;
            }

            let mut group = self.waiting.pop_front().expect("front exists");
            let num_cached_tokens = group.cached_prefix_len;
            if num_cached_tokens > 0 {
                let prefix_blocks = group.prefix_blocks.clone();
                self.block_manager.allocate_with_prefix(
                    &group,
                    num_cached_tokens,
                    &prefix_blocks,
                )?;
            } else {
                self.block_manager.allocate(&group)?;
            }
            group.set_status_all(SequenceStatus::Running);
            num_seqs += group.max_num_seqs();
            let seq_ids = group.seq_ids_with_status(SequenceStatus::Running);

            if seq_ids.len() > 1 {
                // Legacy-form admission for fan-out groups (fits the budget,
                // checked above).
                *budget_left = budget_left.saturating_sub(prompt_len);
                plan.budget.num_batched_tokens += prompt_len;
                plan.scheduled.push(ScheduledGroup {
                    request_id: group.request_id.clone(),
                    is_prompt: true,
                    seq_ids,
                    num_tokens: prompt_len,
                    num_cached_tokens,
                    chunk: None,
                    trace: group.trace,
                });
            } else {
                // At least one prompt row must run so a fully cached prompt
                // still produces logits for its first sampled token.
                let start = num_cached_tokens.min(prompt_len - 1);
                let end = (start + *budget_left).min(prompt_len);
                *budget_left -= end - start;
                plan.budget.num_batched_tokens += end - start;
                plan.scheduled.push(ScheduledGroup {
                    request_id: group.request_id.clone(),
                    is_prompt: true,
                    seq_ids,
                    num_tokens: end - start,
                    num_cached_tokens: start,
                    chunk: Some(PrefillChunk {
                        start,
                        end,
                        is_first: true,
                        is_final: end == prompt_len,
                    }),
                    trace: group.trace,
                });
            }
            self.running.push(group);
        }
        Ok(())
    }

    fn schedule_decodes(&mut self, plan: &mut StepPlan) -> Result<()> {
        // Priority then FCFS: highest priority and earliest arrival served
        // first, the back of the queue preempted first.
        self.running.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then(a.arrival_time.total_cmp(&b.arrival_time))
        });

        let mut survivors: Vec<SequenceGroup> = Vec::with_capacity(self.running.len());
        let mut queue: VecDeque<SequenceGroup> = std::mem::take(&mut self.running).into();

        let chunked = self.config.step_token_budget.is_some();
        'groups: while let Some(group) = queue.pop_front() {
            // Partially prefilled groups (chunked-prefill mode) hold their
            // full prompt allocation from admission: no next-token slot to
            // reserve. They stay eligible as preemption victims below.
            if chunked && Self::group_in_prefill(&group) {
                survivors.push(group);
                continue;
            }
            // Make room for this group, preempting lower-priority groups if
            // needed (the paper preempts latest arrivals first).
            while !self.block_manager.can_append_slot(&group) {
                let victim = match self.config.victim_policy {
                    VictimPolicy::LatestArrival => queue.pop_back(),
                    VictimPolicy::LargestFootprint => {
                        let idx = queue
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, g)| {
                                g.seqs()
                                    .iter()
                                    .map(|s| {
                                        self.block_manager
                                            .block_table(s.seq_id)
                                            .map_or(0, <[_]>::len)
                                    })
                                    .sum::<usize>()
                            })
                            .map(|(i, _)| i);
                        idx.and_then(|i| queue.remove(i))
                    }
                };
                if let Some(victim) = victim {
                    self.preempt(victim, plan)?;
                } else {
                    // `group` itself is the lowest-priority survivor.
                    self.preempt(group, plan)?;
                    continue 'groups;
                }
            }
            // Reserve the slot for each running sequence's next token; any
            // copy-on-write split is recorded in the pending cache ops.
            let seq_ids = group.seq_ids_with_status(SequenceStatus::Running);
            for seq_id in seq_ids {
                let seq = group
                    .get(seq_id)
                    .ok_or(VllmError::UnknownSequence(seq_id))?;
                self.block_manager.append_slot(seq)?;
            }
            survivors.push(group);
        }
        self.running = survivors;
        Ok(())
    }

    fn schedule_swap_in(&mut self, plan: &mut StepPlan) -> Result<()> {
        while let Some(group) = self.swapped.front() {
            if !self.block_manager.can_swap_in(group) {
                break;
            }
            let mut group = self.swapped.pop_front().expect("front exists");
            let copies = self.block_manager.swap_in(&group)?;
            plan.swapped_in
                .push((group.request_id.clone(), copies.len()));
            group.set_status_all(SequenceStatus::Running);
            // Reserve next-token slots for the newly resumed sequences. A
            // sequence swapped out mid-prefill (chunked mode) resumes from
            // its chunk cursor with its prompt allocation intact: nothing to
            // reserve.
            let chunked = self.config.step_token_budget.is_some();
            for seq_id in group.seq_ids_with_status(SequenceStatus::Running) {
                let seq = group
                    .get(seq_id)
                    .ok_or(VllmError::UnknownSequence(seq_id))?;
                if chunked && seq.data.in_prefill() {
                    continue;
                }
                self.block_manager.append_slot(seq)?;
            }
            self.running.push(group);
        }
        Ok(())
    }

    fn preempt(&mut self, mut group: SequenceGroup, plan: &mut StepPlan) -> Result<()> {
        self.stats.num_preemptions += 1;
        group.num_preemptions += 1;

        // Single-sequence groups may use either recovery mode; groups with
        // multiple sequences can share blocks, so they must be swapped to
        // preserve that sharing.
        let mode = if group.num_unfinished() <= 1 {
            self.config.preemption_mode
        } else {
            PreemptionMode::Swap
        };

        match mode {
            PreemptionMode::Swap if self.block_manager.can_swap_out(&group) => {
                self.stats.num_swap_preemptions += 1;
                let copies = self.block_manager.swap_out(&group)?;
                plan.preemptions.push(PreemptionEvent {
                    request_id: group.request_id.clone(),
                    kind: PreemptionKind::Swap,
                    blocks_swapped_out: copies.len(),
                });
                group.set_status_all(SequenceStatus::Swapped);
                let pos = self
                    .swapped
                    .iter()
                    .position(|g| Self::ranks_after(g, &group))
                    .unwrap_or(self.swapped.len());
                self.swapped.insert(pos, group);
            }
            _ => {
                // Recompute: free all blocks and roll the sequences back to
                // the waiting state with their outputs merged into the prompt
                // (§4.5). Also the fallback when the CPU swap space is full.
                self.stats.num_recompute_preemptions += 1;
                plan.preemptions.push(PreemptionEvent {
                    request_id: group.request_id.clone(),
                    kind: PreemptionKind::Recompute,
                    blocks_swapped_out: 0,
                });
                let seq_ids: Vec<SeqId> = group.seqs().iter().map(|s| s.seq_id).collect();
                for seq_id in seq_ids {
                    self.block_manager.free(seq_id)?;
                    if let Some(seq) = group.get_mut(seq_id) {
                        if !seq.is_finished() {
                            seq.data.reset_for_recompute();
                            seq.status = SequenceStatus::Waiting;
                        }
                    }
                }
                let pos = self
                    .waiting
                    .iter()
                    .position(|g| Self::ranks_after(g, &group))
                    .unwrap_or(self.waiting.len());
                self.waiting.insert(pos, group);
            }
        }
        Ok(())
    }

    /// Frees a single sequence's blocks (beam-search drop, finished sample).
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors.
    pub fn free_seq(&mut self, seq_id: SeqId) -> Result<()> {
        self.block_manager.free(seq_id)
    }

    /// Forks `child` from `parent` in the block manager (engine-side fork).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the parent has no table.
    pub fn fork_seq(&mut self, parent: SeqId, child: SeqId) -> Result<()> {
        self.block_manager.fork(parent, child)
    }

    /// Removes finished groups from the running queue, frees any remaining
    /// blocks, and returns them together with previously aborted groups.
    ///
    /// # Errors
    ///
    /// Propagates block-accounting errors.
    pub fn reap_finished(&mut self) -> Result<Vec<SequenceGroup>> {
        let mut done: Vec<SequenceGroup> = std::mem::take(&mut self.finished);
        let mut still_running = Vec::with_capacity(self.running.len());
        for group in self.running.drain(..) {
            if group.is_finished() {
                done.push(group);
            } else {
                still_running.push(group);
            }
        }
        self.running = still_running;
        for group in &done {
            for seq in group.seqs() {
                self.block_manager.free(seq.seq_id)?;
            }
        }
        Ok(done)
    }

    /// Running groups, for the engine's batch construction and metrics.
    #[must_use]
    pub fn running_groups(&self) -> &[SequenceGroup] {
        &self.running
    }

    /// Rewrites the pinned prefix-block references cached on live groups
    /// after a pool compaction moved blocks. The block manager already
    /// rewrote its own tables; this keeps the shared-prefix ids a waiting
    /// group will hand to `allocate_with_prefix` in sync.
    pub fn remap_prefix_blocks(
        &mut self,
        mapping: &std::collections::HashMap<
            crate::block::PhysicalBlockId,
            crate::block::PhysicalBlockId,
        >,
    ) {
        if mapping.is_empty() {
            return;
        }
        for g in self
            .waiting
            .iter_mut()
            .chain(self.running.iter_mut())
            .chain(self.swapped.iter_mut())
        {
            for b in &mut g.prefix_blocks {
                if let Some(&nb) = mapping.get(b) {
                    *b = nb;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingParams;
    use crate::sequence::Sequence;

    const BS: usize = 4;

    fn make_scheduler(gpu_blocks: usize, cpu_blocks: usize) -> Scheduler {
        let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched_cfg = SchedulerConfig::new(2048, 64, 2048).unwrap();
        Scheduler::new(sched_cfg, &cache)
    }

    fn group(id: u64, prompt_len: usize, arrival: f64) -> SequenceGroup {
        let seq = Sequence::new(id, (0..prompt_len as u32).collect(), BS);
        SequenceGroup::new(
            format!("r{id}"),
            seq,
            SamplingParams::greedy(64).with_ignore_eos(),
            arrival,
        )
    }

    /// Appends a fake generated token to every running sequence of every
    /// running group (simulating one decode step's output).
    fn append_all(s: &mut Scheduler) {
        let ids: Vec<String> = s
            .running_groups()
            .iter()
            .map(|g| g.request_id.clone())
            .collect();
        for rid in ids {
            let g = s.group_mut(&rid).unwrap();
            for sid in g.seq_ids_with_status(SequenceStatus::Running) {
                let seq = g.get_mut(sid).unwrap();
                seq.data.append_token(1);
                let n = seq.len();
                seq.data.set_num_computed_tokens(n);
            }
        }
    }

    #[test]
    fn prompt_step_admits_fcfs() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(0, 4, 0.0));
        s.add_group(group(1, 4, 1.0));
        let out = s.schedule().unwrap();
        assert!(out.is_prompt_run);
        assert_eq!(out.scheduled.len(), 2);
        assert_eq!(out.scheduled[0].request_id, "r0");
        assert_eq!(out.budget.num_batched_tokens, 8);
        assert_eq!(s.num_running(), 2);
    }

    #[test]
    fn waiting_queue_sorted_by_arrival() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(1, 4, 5.0));
        s.add_group(group(0, 4, 1.0));
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled[0].request_id, "r0");
        assert_eq!(out.scheduled[1].request_id, "r1");
    }

    #[test]
    fn oversized_prompt_ignored() {
        let mut s = make_scheduler(2, 0);
        s.add_group(group(0, 100, 0.0));
        let out = s.schedule().unwrap();
        assert_eq!(out.ignored, vec!["r0".to_string()]);
        assert_eq!(s.num_running(), 0);
        let done = s.reap_finished().unwrap();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn decode_step_follows_prompt_step() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(0, 4, 0.0));
        let out = s.schedule().unwrap();
        assert!(out.is_prompt_run);
        append_all(&mut s);
        let out = s.schedule().unwrap();
        assert!(!out.is_prompt_run);
        assert_eq!(out.scheduled.len(), 1);
        assert_eq!(out.budget.num_batched_tokens, 1);
    }

    #[test]
    fn preempts_latest_arrival_with_recompute() {
        // 4 blocks of 4 slots; two requests of 8-token prompts fill the pool.
        let mut s = make_scheduler(4, 0);
        s.add_group(group(0, 8, 0.0));
        s.add_group(group(1, 8, 1.0));
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled.len(), 2);
        // Both prompts admitted; pool now full. Next decode needs new blocks
        // (prompts fill blocks exactly), so the later request is preempted.
        append_all(&mut s);
        let out = s.schedule().unwrap();
        assert!(!out.is_prompt_run);
        assert_eq!(out.num_preempted(), 1);
        assert_eq!(out.preemptions[0].kind, PreemptionKind::Recompute);
        assert_eq!(out.scheduled.len(), 1);
        assert_eq!(out.scheduled[0].request_id, "r0");
        assert_eq!(s.num_waiting(), 1);
        assert_eq!(s.stats().num_recompute_preemptions, 1);
        // The preempted sequence merged its output into the prompt.
        let g = s.group("r1").unwrap();
        assert_eq!(g.seqs()[0].data.prompt_len(), 9);
    }

    #[test]
    fn preempts_with_swap_when_configured() {
        let cache = CacheConfig::new(BS, 4, 8)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let cfg = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let mut s = Scheduler::new(cfg, &cache);
        s.add_group(group(0, 8, 0.0));
        s.add_group(group(1, 8, 1.0));
        s.schedule().unwrap();
        append_all(&mut s);
        let out = s.schedule().unwrap();
        assert_eq!(out.num_preempted(), 1);
        assert_eq!(out.preemptions[0].kind, PreemptionKind::Swap);
        assert_eq!(out.preemptions[0].blocks_swapped_out, 2);
        assert_eq!(s.num_swapped(), 1);
        assert_eq!(out.cache_ops.swap_out.len(), 2);
        assert_eq!(s.stats().num_swap_preemptions, 1);

        // Finish request 0; its blocks free and r1 swaps back in.
        {
            let g = s.group_mut("r0").unwrap();
            for sid in g.seq_ids_with_status(SequenceStatus::Running) {
                g.get_mut(sid).unwrap().status = SequenceStatus::FinishedStopped;
            }
        }
        s.reap_finished().unwrap();
        let out = s.schedule().unwrap();
        assert!(!out.cache_ops.swap_in.is_empty());
        assert_eq!(s.num_swapped(), 0);
        assert_eq!(s.num_running(), 1);
    }

    #[test]
    fn no_admission_while_swapped() {
        let cache = CacheConfig::new(BS, 4, 8)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let cfg = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let mut s = Scheduler::new(cfg, &cache);
        s.add_group(group(0, 8, 0.0));
        s.add_group(group(1, 8, 1.0));
        s.schedule().unwrap();
        append_all(&mut s);
        s.schedule().unwrap(); // r1 swapped out.
        assert_eq!(s.num_swapped(), 1);
        s.add_group(group(2, 4, 2.0));
        append_all(&mut s);
        let out = s.schedule().unwrap();
        // r2 must NOT be admitted while r1 is swapped.
        assert!(!out.is_prompt_run);
        assert!(out.scheduled.iter().all(|g| g.request_id != "r2"));
        assert_eq!(s.num_waiting(), 1);
    }

    #[test]
    fn token_budget_limits_prompt_batch() {
        let cache = CacheConfig::new(BS, 1024, 0).unwrap();
        let cfg = SchedulerConfig::new(2048, 64, 2048).unwrap();
        let mut s = Scheduler::new(cfg, &cache);
        s.add_group(group(0, 1500, 0.0));
        s.add_group(group(1, 1500, 1.0));
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled.len(), 1);
        assert_eq!(s.num_waiting(), 1);
    }

    #[test]
    fn max_num_seqs_limits_admission() {
        let cache = CacheConfig::new(BS, 1024, 0).unwrap();
        let cfg = SchedulerConfig::new(4096, 2, 2048).unwrap();
        let mut s = Scheduler::new(cfg, &cache);
        for i in 0..3 {
            s.add_group(group(i, 4, i as f64));
        }
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled.len(), 2);
    }

    #[test]
    fn abort_frees_blocks() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(0, 8, 0.0));
        s.schedule().unwrap();
        let free_before = s.block_manager().num_free_gpu_blocks();
        s.abort("r0").unwrap();
        assert_eq!(s.block_manager().num_free_gpu_blocks(), free_before + 2);
        assert!(!s.has_unfinished());
        assert!(s.abort("nope").is_err());
    }

    #[test]
    fn priority_outranks_arrival_in_admission() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(0, 4, 0.0));
        let mut urgent = group(1, 4, 5.0);
        urgent.priority = 3;
        s.add_group(urgent);
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled[0].request_id, "r1");
        assert_eq!(out.scheduled[1].request_id, "r0");
    }

    #[test]
    fn cancel_expired_frees_blocks_and_reports_miss() {
        let mut s = make_scheduler(16, 0);
        let mut g0 = group(0, 8, 0.0);
        g0.deadline = Some(1.0);
        s.add_group(g0);
        s.add_group(group(1, 4, 0.0));
        s.schedule().unwrap();
        assert!(s.cancel_expired(0.5).unwrap().is_empty());
        let cancelled = s.cancel_expired(1.25).unwrap();
        assert_eq!(cancelled.len(), 1);
        assert_eq!(cancelled[0].0, "r0");
        assert!((cancelled[0].1 - 0.25).abs() < 1e-9);
        let done = s.reap_finished().unwrap();
        assert!(done.iter().any(
            |g| g.request_id == "r0" && g.seqs()[0].status == SequenceStatus::FinishedDeadline
        ));
        // r1 keeps running; r0's blocks are back in the pool.
        assert_eq!(s.num_running(), 1);
        assert_eq!(s.block_manager().num_free_gpu_blocks(), 16 - 1);
    }

    #[test]
    fn abort_all_empties_every_queue_with_zero_leak() {
        let cache = CacheConfig::new(BS, 4, 8)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let cfg = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_preemption_mode(PreemptionMode::Swap);
        let mut s = Scheduler::new(cfg, &cache);
        s.add_group(group(0, 8, 0.0));
        s.add_group(group(1, 8, 1.0));
        s.add_group(group(2, 4, 2.0));
        s.schedule().unwrap();
        append_all(&mut s);
        s.schedule().unwrap(); // r1 swapped out, r2 still waiting.
        let ids = s.abort_all().unwrap();
        assert_eq!(ids.len(), 3);
        assert!(!s.has_unfinished());
        assert_eq!(s.block_manager().num_free_gpu_blocks(), 4);
        assert_eq!(s.reap_finished().unwrap().len(), 3);
    }

    fn make_chunked_scheduler(gpu_blocks: usize, cpu_blocks: usize, budget: usize) -> Scheduler {
        let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let sched_cfg = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_step_token_budget(Some(budget));
        Scheduler::new(sched_cfg, &cache)
    }

    /// Applies a chunked plan's effect on sequence state, mirroring the
    /// postprocess stage: non-final chunks advance the cursor, final chunks
    /// and decodes append a sampled token.
    fn apply_plan(s: &mut Scheduler, plan: &StepPlan) {
        for sg in &plan.scheduled {
            let rid = sg.request_id.clone();
            let chunk = sg.chunk;
            let g = s.group_mut(&rid).unwrap();
            for sid in sg.seq_ids.clone() {
                let seq = g.get_mut(sid).unwrap();
                if let Some(c) = chunk.filter(|c| !c.is_final) {
                    seq.data.set_num_computed_tokens(c.end);
                } else {
                    let n = seq.len();
                    seq.data.set_num_computed_tokens(n);
                    seq.data.append_token(1);
                }
            }
        }
    }

    #[test]
    fn chunked_prefill_splits_prompt_across_steps() {
        let mut s = make_chunked_scheduler(16, 0, 4);
        s.add_group(group(0, 10, 0.0));
        // Chunk 1: rows [0, 4).
        let out = s.schedule().unwrap();
        assert!(out.is_prompt_run);
        assert_eq!(out.scheduled.len(), 1);
        let c = out.scheduled[0].chunk.expect("chunked admission");
        assert_eq!(
            (c.start, c.end, c.is_first, c.is_final),
            (0, 4, true, false)
        );
        assert_eq!(out.scheduled[0].num_tokens, 4);
        assert_eq!(out.budget.num_batched_tokens, 4);
        // Full prompt allocation up front (10 tokens → 3 blocks).
        assert_eq!(s.block_manager().num_free_gpu_blocks(), 16 - 3);
        apply_plan(&mut s, &out);
        // Chunk 2: rows [4, 8).
        let out = s.schedule().unwrap();
        let c = out.scheduled[0].chunk.unwrap();
        assert_eq!(
            (c.start, c.end, c.is_first, c.is_final),
            (4, 8, false, false)
        );
        apply_plan(&mut s, &out);
        // Chunk 3 (final): rows [8, 10) samples the first token.
        let out = s.schedule().unwrap();
        let c = out.scheduled[0].chunk.unwrap();
        assert_eq!((c.start, c.end, c.is_final), (8, 10, true));
        apply_plan(&mut s, &out);
        // Next step is a plain decode.
        let out = s.schedule().unwrap();
        assert!(!out.is_prompt_run);
        assert!(out.scheduled[0].chunk.is_none());
        assert!(!out.scheduled[0].is_prompt);
    }

    #[test]
    fn chunked_prefill_cobatches_with_decodes() {
        let mut s = make_chunked_scheduler(32, 0, 6);
        s.add_group(group(0, 4, 0.0));
        // r0 prefills whole prompt in one (first+final) chunk.
        let out = s.schedule().unwrap();
        let c = out.scheduled[0].chunk.unwrap();
        assert!(c.is_first && c.is_final);
        apply_plan(&mut s, &out);
        // r1 arrives with a long prompt: decode for r0 co-batches with r1's
        // first chunk, and the chunk only gets the leftover budget.
        s.add_group(group(1, 20, 1.0));
        let out = s.schedule().unwrap();
        assert!(out.is_prompt_run, "mixed plan contains a prompt chunk");
        assert_eq!(out.scheduled.len(), 2);
        let decode = &out.scheduled[0];
        assert!(!decode.is_prompt);
        assert_eq!(decode.request_id, "r0");
        let chunk_sg = &out.scheduled[1];
        assert_eq!(chunk_sg.request_id, "r1");
        let c = chunk_sg.chunk.unwrap();
        assert_eq!(
            (c.start, c.end),
            (0, 5),
            "1 decode token + 5 chunk rows = budget 6"
        );
        assert_eq!(out.budget.num_batched_tokens, 6);
    }

    #[test]
    fn chunked_recompute_preemption_restarts_from_zero_without_leaks() {
        // Budget 2: r0 (4-token prompt) decodes 1 token/step while r1's
        // 20-token prompt crawls at 1 chunk row/step, so r0's decode growth
        // exhausts the pool while r1 is still mid-prefill.
        let mut s = make_chunked_scheduler(8, 0, 2);
        s.add_group(group(0, 4, 0.0));
        s.add_group(group(1, 20, 1.0));
        let mut preempted = false;
        for _ in 0..40 {
            let out = s.schedule().unwrap();
            if out.num_preempted() > 0 {
                assert_eq!(out.preemptions[0].request_id, "r1");
                assert_eq!(out.preemptions[0].kind, PreemptionKind::Recompute);
                let g = s.group("r1").unwrap();
                let seq = &g.seqs()[0];
                assert!(
                    seq.data.prompt_len() == 20 && seq.data.num_output_tokens() == 0,
                    "r1 was preempted mid-prefill, before any output"
                );
                assert_eq!(
                    seq.data.num_computed_tokens(),
                    0,
                    "recompute resets the chunk cursor"
                );
                preempted = true;
                break;
            }
            // r1 must be making chunk progress until the preemption.
            apply_plan(&mut s, &out);
        }
        assert!(
            preempted,
            "pool pressure must preempt the mid-prefill group"
        );
        // Zero leak: abort everything and the pool drains completely.
        s.abort_all().unwrap();
        assert_eq!(s.block_manager().num_free_gpu_blocks(), 8);
        s.block_manager().assert_consistent();
    }

    #[test]
    fn chunked_admission_respects_budget_before_new_prompts() {
        let mut s = make_chunked_scheduler(64, 0, 8);
        s.add_group(group(0, 32, 0.0));
        s.add_group(group(1, 4, 0.5));
        let out = s.schedule().unwrap();
        // FCFS: all budget goes to r0's first chunk; r1 waits.
        assert_eq!(out.scheduled.len(), 1);
        assert_eq!(out.scheduled[0].request_id, "r0");
        assert_eq!(out.scheduled[0].chunk.unwrap().end, 8);
        assert_eq!(s.num_waiting(), 1);
        apply_plan(&mut s, &out);
        // With r1 still waiting, the fairness cap halves r0's continuation
        // chunk and the leftover admits r1's whole (short) prompt — the
        // short request is not stuck behind the long in-flight prefill.
        let out = s.schedule().unwrap();
        assert_eq!(out.scheduled.len(), 2);
        assert_eq!(out.scheduled[0].request_id, "r0");
        let c0 = out.scheduled[0].chunk.unwrap();
        assert_eq!((c0.start, c0.end), (8, 12), "continuation capped at half");
        assert_eq!(out.scheduled[1].request_id, "r1");
        let c1 = out.scheduled[1].chunk.unwrap();
        assert!(c1.is_first && c1.is_final, "short prompt prefills whole");
        assert_eq!(s.num_waiting(), 0);
        apply_plan(&mut s, &out);
        // Queue drained: r0's next continuation reclaims the full budget
        // minus r1's mandatory decode token.
        let out = s.schedule().unwrap();
        let cont = out
            .scheduled
            .iter()
            .find(|sg| sg.request_id == "r0")
            .unwrap();
        assert_eq!(cont.chunk.unwrap().len(), 7, "budget 8 - 1 decode token");
        apply_plan(&mut s, &out);
    }

    #[test]
    fn reap_finished_frees_and_returns() {
        let mut s = make_scheduler(16, 0);
        s.add_group(group(0, 4, 0.0));
        s.schedule().unwrap();
        {
            let g = s.group_mut("r0").unwrap();
            g.get_mut(0).unwrap().status = SequenceStatus::FinishedStopped;
        }
        let done = s.reap_finished().unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(s.block_manager().num_free_gpu_blocks(), 16);
        assert!(!s.has_unfinished());
    }
}
