//! The KV cache manager: logical→physical block mapping, copy-on-write
//! sharing, and swap in/out (§4.2–§4.5).
//!
//! Each sequence owns a *block table* mapping its logical KV blocks (filled
//! left to right) to physical blocks in the GPU pool, or in the CPU pool
//! while swapped out. Physical blocks are reference counted; writing into a
//! block shared by several sequences triggers a block-granularity
//! copy-on-write (Fig. 8).

use std::collections::HashMap;

use crate::block::{BlockAllocator, Device, PhysicalBlock, PhysicalBlockId};
use crate::config::CacheConfig;
use crate::error::{Result, VllmError};
use crate::executor::{BlockMove, CacheOps};
use crate::sequence::{SeqId, Sequence, SequenceGroup, SequenceStatus};

/// Old→new block-id mappings produced by a compaction pass. Callers that
/// hold raw block ids outside the manager's tables (the engine's prefix
/// pool, the scheduler's admission-time prefix assignments) must remap
/// through this.
#[derive(Debug, Clone, Default)]
pub struct PoolRemap {
    /// GPU-pool migrations: old id → new id.
    pub gpu: HashMap<PhysicalBlockId, PhysicalBlockId>,
    /// CPU-pool migrations: old id → new id.
    pub cpu: HashMap<PhysicalBlockId, PhysicalBlockId>,
}

impl PoolRemap {
    /// Whether no block moved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpu.is_empty() && self.cpu.is_empty()
    }
}

/// Outcome of an admission check for a waiting group (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStatus {
    /// Enough free blocks right now.
    Ok,
    /// Not enough free blocks now, but the request can fit once memory frees.
    Later,
    /// The request can never fit (prompt larger than the whole pool).
    Never,
}

/// A pending block-to-block data movement the executor must perform before
/// running the step: copy-on-write copies and swap transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCopy {
    /// Source physical block.
    pub src: PhysicalBlockId,
    /// Destination physical block.
    pub dst: PhysicalBlockId,
}

/// Cached telemetry handles for the block manager's pool gauges and
/// data-movement counters; registered once, updated every step via
/// [`BlockSpaceManager::publish_metrics`].
#[derive(Debug, Clone)]
pub struct BlockManagerMetrics {
    /// `vllm_block_manager_gpu_blocks_free` gauge.
    pub gpu_blocks_free: vllm_telemetry::Gauge,
    /// `vllm_block_manager_gpu_blocks_used` gauge.
    pub gpu_blocks_used: vllm_telemetry::Gauge,
    /// `vllm_block_manager_gpu_blocks_total` gauge.
    pub gpu_blocks_total: vllm_telemetry::Gauge,
    /// `vllm_block_manager_cpu_blocks_free` gauge.
    pub cpu_blocks_free: vllm_telemetry::Gauge,
    /// `vllm_block_manager_logical_blocks` gauge.
    pub logical_blocks: vllm_telemetry::Gauge,
    /// `vllm_block_manager_fragmentation_ratio` gauge: fraction of allocated
    /// KV slots not holding token state (internal fragmentation, Fig. 2).
    pub fragmentation_ratio: vllm_telemetry::Gauge,
    /// `vllm_block_manager_sharing_savings` gauge (Fig. 15).
    pub sharing_savings: vllm_telemetry::Gauge,
    /// `vllm_block_manager_cow_copies_total` counter.
    pub cow_copies_total: vllm_telemetry::Counter,
    /// `vllm_block_manager_swapped_out_blocks_total` counter.
    pub swapped_out_blocks_total: vllm_telemetry::Counter,
    /// `vllm_block_manager_swapped_in_blocks_total` counter.
    pub swapped_in_blocks_total: vllm_telemetry::Counter,
    /// `vllm_block_pool_gpu_blocks` gauge: current (elastic) GPU pool size.
    pub pool_gpu_blocks: vllm_telemetry::Gauge,
    /// `vllm_block_pool_cpu_blocks` gauge: current (elastic) CPU pool size.
    pub pool_cpu_blocks: vllm_telemetry::Gauge,
    /// `vllm_block_pool_fragmentation_ratio` gauge: fraction of the live
    /// GPU-pool span (ids up to the highest live block) that is free holes —
    /// the compaction debt a shrink would have to migrate away.
    pub pool_fragmentation_ratio: vllm_telemetry::Gauge,
    /// `vllm_block_migrations_total` counter.
    pub block_migrations_total: vllm_telemetry::Counter,
}

impl BlockManagerMetrics {
    /// Registers the block manager's instruments in `telemetry`.
    #[must_use]
    pub fn register(telemetry: &vllm_telemetry::Telemetry) -> Self {
        let r = telemetry.registry();
        Self {
            gpu_blocks_free: r.gauge(
                "vllm_block_manager_gpu_blocks_free",
                "Free blocks in the GPU KV pool.",
            ),
            gpu_blocks_used: r.gauge(
                "vllm_block_manager_gpu_blocks_used",
                "Allocated blocks in the GPU KV pool.",
            ),
            gpu_blocks_total: r.gauge(
                "vllm_block_manager_gpu_blocks_total",
                "Total blocks in the GPU KV pool.",
            ),
            cpu_blocks_free: r.gauge(
                "vllm_block_manager_cpu_blocks_free",
                "Free blocks in the CPU swap pool.",
            ),
            logical_blocks: r.gauge(
                "vllm_block_manager_logical_blocks",
                "Sum over sequences of logical GPU blocks (sharing denominator).",
            ),
            fragmentation_ratio: r.gauge(
                "vllm_block_manager_fragmentation_ratio",
                "Fraction of allocated KV slots not holding token state.",
            ),
            sharing_savings: r.gauge(
                "vllm_block_manager_sharing_savings",
                "Fraction of logical blocks saved by copy-on-write sharing.",
            ),
            cow_copies_total: r.counter(
                "vllm_block_manager_cow_copies_total",
                "Copy-on-write block copies performed.",
            ),
            swapped_out_blocks_total: r.counter(
                "vllm_block_manager_swapped_out_blocks_total",
                "Blocks swapped GPU to CPU.",
            ),
            swapped_in_blocks_total: r.counter(
                "vllm_block_manager_swapped_in_blocks_total",
                "Blocks swapped CPU to GPU.",
            ),
            pool_gpu_blocks: r.gauge(
                "vllm_block_pool_gpu_blocks",
                "Current size of the (elastic) GPU KV block pool.",
            ),
            pool_cpu_blocks: r.gauge(
                "vllm_block_pool_cpu_blocks",
                "Current size of the (elastic) CPU KV block pool.",
            ),
            pool_fragmentation_ratio: r.gauge(
                "vllm_block_pool_fragmentation_ratio",
                "Fraction of the live GPU-pool span that is free holes.",
            ),
            block_migrations_total: r.counter(
                "vllm_block_migrations_total",
                "Live KV blocks migrated by pool compaction.",
            ),
        }
    }
}

/// Manages block tables for all sequences plus the GPU and CPU block pools.
#[derive(Debug)]
pub struct BlockSpaceManager {
    block_size: usize,
    /// Watermark as a fraction of the pool, kept so the block headroom can
    /// be recomputed when the pool is resized.
    watermark: f64,
    watermark_blocks: usize,
    gpu: BlockAllocator,
    cpu: BlockAllocator,
    block_tables: HashMap<SeqId, Vec<PhysicalBlock>>,
    /// Cumulative count of copy-on-write events (metrics).
    num_cow_copies: u64,
    /// Cumulative count of blocks swapped out / in (metrics).
    num_swapped_out_blocks: u64,
    num_swapped_in_blocks: u64,
    /// Cumulative count of blocks migrated by compaction (metrics).
    num_block_migrations: u64,
    /// Cache operations produced since the last [`Self::take_pending`]:
    /// every mutation that requires data movement (CoW splits, eager-copy
    /// forks, swaps) records its ops here, so the scheduler can batch them
    /// into the next [`crate::plan::StepPlan`] as data instead of callers
    /// threading side-channel copy lists around.
    pending: CacheOps,
    /// When block sharing is disabled (eager-copy ablation), admission must
    /// account for the full sequence fan-out of a request up front.
    pub fanout_admission: bool,
    /// When set, [`Self::can_swap_out`] reports no space regardless of the
    /// CPU pool, forcing the §4.5 recomputation fallback. Fault injection
    /// uses this to model an exhausted (or failed) swap device.
    swap_disabled: bool,
}

impl BlockSpaceManager {
    /// Creates a manager for the given cache configuration.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            block_size: config.block_size,
            watermark: config.watermark,
            watermark_blocks: config.watermark_blocks(),
            gpu: BlockAllocator::new(Device::Gpu, config.num_gpu_blocks),
            cpu: BlockAllocator::new(Device::Cpu, config.num_cpu_blocks),
            block_tables: HashMap::new(),
            num_cow_copies: 0,
            num_swapped_out_blocks: 0,
            num_swapped_in_blocks: 0,
            num_block_migrations: 0,
            pending: CacheOps::default(),
            fanout_admission: false,
            swap_disabled: false,
        }
    }

    /// Enables or disables the CPU swap pool. While disabled,
    /// [`Self::can_swap_out`] returns `false`, so preemption falls back to
    /// recomputation (§4.5); already-swapped blocks remain valid and can
    /// still swap back in.
    pub fn set_swap_disabled(&mut self, disabled: bool) {
        self.swap_disabled = disabled;
    }

    /// Whether the CPU swap pool is currently disabled.
    #[must_use]
    pub fn swap_disabled(&self) -> bool {
        self.swap_disabled
    }

    /// KV block size in tokens.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of free GPU blocks.
    #[must_use]
    pub fn num_free_gpu_blocks(&self) -> usize {
        self.gpu.num_free()
    }

    /// Number of free CPU (swap) blocks.
    #[must_use]
    pub fn num_free_cpu_blocks(&self) -> usize {
        self.cpu.num_free()
    }

    /// Number of allocated GPU blocks.
    #[must_use]
    pub fn num_allocated_gpu_blocks(&self) -> usize {
        self.gpu.num_allocated()
    }

    /// Total GPU blocks in the pool.
    #[must_use]
    pub fn num_total_gpu_blocks(&self) -> usize {
        self.gpu.num_blocks()
    }

    /// Cumulative number of copy-on-write copies performed.
    #[must_use]
    pub fn num_cow_copies(&self) -> u64 {
        self.num_cow_copies
    }

    /// Cumulative number of blocks swapped out to CPU.
    #[must_use]
    pub fn num_swapped_out_blocks(&self) -> u64 {
        self.num_swapped_out_blocks
    }

    /// Cumulative number of blocks swapped back in.
    #[must_use]
    pub fn num_swapped_in_blocks(&self) -> u64 {
        self.num_swapped_in_blocks
    }

    /// Total CPU (swap) blocks in the pool.
    #[must_use]
    pub fn num_total_cpu_blocks(&self) -> usize {
        self.cpu.num_blocks()
    }

    /// Cumulative number of live blocks migrated by compaction.
    #[must_use]
    pub fn num_block_migrations(&self) -> u64 {
        self.num_block_migrations
    }

    /// External-hole fragmentation of the GPU pool: the fraction of the
    /// span `[0, highest_live]` that is free. This is the compaction debt an
    /// elastic shrink to `num_allocated` blocks would have to migrate away;
    /// 0 when the pool is empty or perfectly packed.
    #[must_use]
    pub fn pool_fragmentation_ratio(&self) -> f64 {
        match self.gpu.highest_live() {
            None => 0.0,
            Some(top) => {
                let span = top + 1;
                let holes = span - self.gpu.num_allocated().min(span);
                holes as f64 / span as f64
            }
        }
    }

    /// Resizes the GPU and CPU block pools at runtime (elastic memory).
    ///
    /// Growth mints fresh block ids above the old bound. Shrinkage first
    /// compacts: every live block above the new bound migrates to a free
    /// hole below it, the data moves are journaled into the pending
    /// [`CacheOps`] (`moves` lane), and every sequence block table is
    /// remapped. The returned [`PoolRemap`] carries the old→new ids so
    /// callers holding raw ids elsewhere (prefix anchors) can follow.
    /// The admission watermark is rescaled to the new pool size.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if `gpu_blocks` is zero or
    /// smaller than the number of live GPU blocks (likewise for the CPU
    /// pool); the pool is left unchanged on error.
    pub fn resize(&mut self, gpu_blocks: usize, cpu_blocks: usize) -> Result<PoolRemap> {
        if gpu_blocks == 0 {
            return Err(VllmError::InvalidConfig(
                "GPU pool must keep at least one block".into(),
            ));
        }
        if gpu_blocks < self.gpu.num_allocated() {
            return Err(VllmError::InvalidConfig(format!(
                "cannot shrink GPU pool to {gpu_blocks} blocks: {} are live",
                self.gpu.num_allocated()
            )));
        }
        if cpu_blocks < self.cpu.num_allocated() {
            return Err(VllmError::InvalidConfig(format!(
                "cannot shrink CPU pool to {cpu_blocks} blocks: {} are live",
                self.cpu.num_allocated()
            )));
        }
        let mut remap = PoolRemap::default();
        if gpu_blocks > self.gpu.num_blocks() {
            self.gpu.grow(gpu_blocks)?;
            self.pending.gpu_capacity = Some(gpu_blocks);
        } else if gpu_blocks < self.gpu.num_blocks() {
            remap.gpu = self.compact_device(Device::Gpu, gpu_blocks)?;
            self.gpu.shrink(gpu_blocks)?;
            self.pending.gpu_capacity = Some(gpu_blocks);
        }
        if cpu_blocks > self.cpu.num_blocks() {
            self.cpu.grow(cpu_blocks)?;
            self.pending.cpu_capacity = Some(cpu_blocks);
        } else if cpu_blocks < self.cpu.num_blocks() {
            remap.cpu = self.compact_device(Device::Cpu, cpu_blocks)?;
            self.cpu.shrink(cpu_blocks)?;
            self.pending.cpu_capacity = Some(cpu_blocks);
        }
        self.watermark_blocks = (self.watermark * gpu_blocks as f64) as usize;
        Ok(remap)
    }

    /// Fully defragments both pools without changing their size: every live
    /// block migrates to the lowest free hole, so live blocks end up packed
    /// at ids `[0, num_allocated)`. The data moves are journaled into the
    /// pending [`CacheOps`]. Returns the old→new mapping.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors, which indicate corrupted accounting.
    pub fn compact(&mut self) -> Result<PoolRemap> {
        Ok(PoolRemap {
            gpu: self.compact_device(Device::Gpu, self.gpu.num_allocated())?,
            cpu: self.compact_device(Device::Cpu, self.cpu.num_allocated())?,
        })
    }

    /// Migrates every live block of `device` with id at or above `bound`
    /// into a free hole below `bound`, journaling the moves and rewriting
    /// every block-table entry. The caller guarantees feasibility
    /// (`num_allocated <= bound`).
    fn compact_device(
        &mut self,
        device: Device,
        bound: usize,
    ) -> Result<HashMap<PhysicalBlockId, PhysicalBlockId>> {
        let pool = match device {
            Device::Gpu => &mut self.gpu,
            Device::Cpu => &mut self.cpu,
        };
        let mut mapping = HashMap::new();
        for src in pool.live_at_or_above(bound) {
            let dst = pool.lowest_free_below(bound).ok_or(match device {
                Device::Gpu => VllmError::OutOfGpuBlocks,
                Device::Cpu => VllmError::OutOfCpuBlocks,
            })?;
            pool.relocate(src, dst)?;
            mapping.insert(src, dst);
            self.pending.moves.push(BlockMove { device, src, dst });
            self.num_block_migrations += 1;
        }
        if !mapping.is_empty() {
            // A shared block moved once; rewrite every table that names it.
            for table in self.block_tables.values_mut() {
                for b in table.iter_mut() {
                    if b.device == device {
                        if let Some(&dst) = mapping.get(&b.id) {
                            b.id = dst;
                        }
                    }
                }
            }
        }
        Ok(mapping)
    }

    /// Publishes the pool state to the cached telemetry handles.
    /// `used_slots` is the number of KV slots holding actual token state
    /// (the caller computes it from the live sequences, see
    /// [`Self::used_gpu_slots`]); the complement within allocated slots is
    /// internal fragmentation.
    pub fn publish_metrics(&self, m: &BlockManagerMetrics, used_slots: usize) {
        m.gpu_blocks_free.set(self.gpu.num_free() as f64);
        m.gpu_blocks_used.set(self.gpu.num_allocated() as f64);
        m.gpu_blocks_total.set(self.gpu.num_blocks() as f64);
        m.cpu_blocks_free.set(self.cpu.num_free() as f64);
        m.logical_blocks.set(self.num_logical_gpu_blocks() as f64);
        let allocated_slots = self.gpu.num_allocated() * self.block_size;
        let fragmentation = if allocated_slots == 0 {
            0.0
        } else {
            1.0 - (used_slots.min(allocated_slots) as f64 / allocated_slots as f64)
        };
        m.fragmentation_ratio.set(fragmentation);
        m.sharing_savings.set(self.sharing_savings());
        m.cow_copies_total.set_to_at_least(self.num_cow_copies);
        m.swapped_out_blocks_total
            .set_to_at_least(self.num_swapped_out_blocks);
        m.swapped_in_blocks_total
            .set_to_at_least(self.num_swapped_in_blocks);
        m.pool_gpu_blocks.set(self.gpu.num_blocks() as f64);
        m.pool_cpu_blocks.set(self.cpu.num_blocks() as f64);
        m.pool_fragmentation_ratio
            .set(self.pool_fragmentation_ratio());
        m.block_migrations_total
            .set_to_at_least(self.num_block_migrations);
    }

    /// Drains the cache operations accumulated since the last call. The
    /// scheduler calls this once per step to batch all pending data movement
    /// into the step's plan.
    pub fn take_pending(&mut self) -> CacheOps {
        std::mem::take(&mut self.pending)
    }

    /// Whether any cache operation is waiting to be drained.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Checks whether the prompt blocks of a waiting group can be allocated.
    ///
    /// A watermark of free blocks is kept in reserve so that a freshly
    /// admitted request is not immediately preempted.
    #[must_use]
    pub fn can_allocate(&self, group: &SequenceGroup) -> AllocStatus {
        let mut required: usize = group
            .seqs_with_status(SequenceStatus::Waiting)
            .iter()
            .map(|s| s.num_logical_blocks())
            .sum();
        if self.fanout_admission {
            // Without sharing, the prompt blocks will be replicated into
            // every forked sequence.
            required *= group.max_num_seqs();
        }
        if required > self.gpu.num_blocks() {
            return AllocStatus::Never;
        }
        if self.gpu.num_free() >= required + self.watermark_blocks {
            AllocStatus::Ok
        } else {
            AllocStatus::Later
        }
    }

    /// Allocates block tables for every waiting sequence in the group.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] if the pool runs out; call
    /// [`Self::can_allocate`] first.
    pub fn allocate(&mut self, group: &SequenceGroup) -> Result<()> {
        for seq in group.seqs_with_status(SequenceStatus::Waiting) {
            let n = seq.num_logical_blocks();
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                table.push(PhysicalBlock::gpu(self.gpu.allocate()?));
            }
            self.block_tables.insert(seq.seq_id, table);
        }
        Ok(())
    }

    /// Allocates the block table for a waiting sequence whose prompt starts
    /// with a cached shared prefix (§4.4 "shared prefix").
    ///
    /// The first `prefix_blocks.len()` logical blocks map to the cached
    /// physical blocks. If the prefix ends mid-block (`prefix_len` not a
    /// multiple of the block size) the last shared block must be writable by
    /// this request's prefill, so it is copy-on-write-split immediately and
    /// the returned [`BlockCopy`] must be executed before the step.
    ///
    /// # Errors
    ///
    /// Returns an allocation error if the GPU pool runs out, or
    /// [`VllmError::UnknownSequence`] if the sequence is not waiting.
    pub fn allocate_with_prefix(
        &mut self,
        group: &SequenceGroup,
        prefix_len: usize,
        prefix_blocks: &[PhysicalBlockId],
    ) -> Result<Vec<BlockCopy>> {
        debug_assert_eq!(prefix_len.div_ceil(self.block_size), prefix_blocks.len());
        let mut copies = Vec::new();
        let waiting = group.seq_ids_with_status(SequenceStatus::Waiting);
        for seq_id in waiting {
            let seq = group
                .get(seq_id)
                .ok_or(VllmError::UnknownSequence(seq_id))?;
            let n = seq.num_logical_blocks();
            debug_assert!(seq.len() >= prefix_len, "prompt must contain the prefix");
            let mut table = Vec::with_capacity(n);
            let prefix_partial = !prefix_len.is_multiple_of(self.block_size);
            for (j, &pb) in prefix_blocks.iter().enumerate() {
                let is_last = j == prefix_blocks.len() - 1;
                if is_last && prefix_partial {
                    // Partially-filled last prefix block: the prefill will
                    // write the remaining slots, so split it eagerly.
                    let fresh = self.gpu.allocate()?;
                    copies.push(BlockCopy {
                        src: pb,
                        dst: fresh,
                    });
                    self.num_cow_copies += 1;
                    table.push(PhysicalBlock::gpu(fresh));
                } else {
                    // Fully-filled prefix block: share read-only.
                    self.gpu.incr_ref(pb)?;
                    table.push(PhysicalBlock::gpu(pb));
                }
            }
            while table.len() < n {
                table.push(PhysicalBlock::gpu(self.gpu.allocate()?));
            }
            self.block_tables.insert(seq_id, table);
        }
        self.pending.copies.extend_from_slice(&copies);
        Ok(copies)
    }

    /// Allocates `n` GPU blocks owned by the prefix cache rather than any
    /// sequence (§4.4 "shared prefix": the provider reserves physical blocks
    /// for predefined prefixes in advance). The anchor reference keeps the
    /// blocks alive while requests map and unmap them.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] if the pool is exhausted.
    pub fn allocate_anchor_blocks(&mut self, n: usize) -> Result<Vec<PhysicalBlockId>> {
        if self.gpu.num_free() < n {
            return Err(VllmError::OutOfGpuBlocks);
        }
        (0..n).map(|_| self.gpu.allocate()).collect()
    }

    /// Converts a sequence's block table into prefix-cache anchors without
    /// copying or recomputing: the first `num_blocks` blocks keep this
    /// sequence's reference as the anchor reference; the rest are freed.
    /// Used to retain a finished request's KV cache across requests
    /// (conversation reuse, an extension of §4.4).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the sequence has no table
    /// and [`VllmError::InvalidBlock`] if any kept block is not
    /// GPU-resident (a swapped-out sequence cannot be promoted).
    pub fn take_table_as_anchor(
        &mut self,
        seq_id: SeqId,
        num_blocks: usize,
    ) -> Result<Vec<PhysicalBlockId>> {
        let table = self
            .block_tables
            .remove(&seq_id)
            .ok_or(VllmError::UnknownSequence(seq_id))?;
        let mut anchors = Vec::with_capacity(num_blocks.min(table.len()));
        for (j, block) in table.into_iter().enumerate() {
            if block.device != Device::Gpu {
                return Err(VllmError::InvalidBlock(block.id));
            }
            if j < num_blocks {
                anchors.push(block.id);
            } else {
                self.gpu.free(block.id)?;
            }
        }
        Ok(anchors)
    }

    /// Releases prefix-cache anchor blocks allocated with
    /// [`Self::allocate_anchor_blocks`].
    ///
    /// # Errors
    ///
    /// Propagates double-free errors.
    pub fn free_anchor_blocks(&mut self, blocks: &[PhysicalBlockId]) -> Result<()> {
        for &b in blocks {
            self.gpu.free(b)?;
        }
        Ok(())
    }

    /// Whether every running sequence in the group could receive one more
    /// block (worst case for the next decode step).
    #[must_use]
    pub fn can_append_slot(&self, group: &SequenceGroup) -> bool {
        let running = group.seqs_with_status(SequenceStatus::Running).len();
        self.gpu.num_free() >= running
    }

    /// Ensures the slot for the sequence's newest token exists, returning a
    /// copy-on-write operation if the last block had to be split (Fig. 8).
    ///
    /// Called once per running sequence per decode iteration, before the
    /// model step, so the step can write the new KV entry.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the sequence has no block
    /// table and [`VllmError::OutOfGpuBlocks`] if the pool is exhausted
    /// (the scheduler must preempt in that case).
    pub fn append_slot(&mut self, seq: &Sequence) -> Result<Option<BlockCopy>> {
        let required = seq.num_logical_blocks();
        let table = self
            .block_tables
            .get_mut(&seq.seq_id)
            .ok_or(VllmError::UnknownSequence(seq.seq_id))?;
        debug_assert!(
            table.len() + 1 >= required,
            "sequence grew by more than one block between steps"
        );
        if table.len() < required {
            // The new token starts a fresh logical block.
            let id = self.gpu.allocate()?;
            table.push(PhysicalBlock::gpu(id));
            return Ok(None);
        }
        // The new token lands in the last existing block; if that block is
        // shared, split it with copy-on-write.
        let last = *table.last().ok_or(VllmError::UnknownSequence(seq.seq_id))?;
        debug_assert_eq!(last.device, Device::Gpu);
        if self.gpu.ref_count(last.id)? > 1 {
            let fresh = self.gpu.allocate()?;
            self.gpu.free(last.id)?;
            let table = self
                .block_tables
                .get_mut(&seq.seq_id)
                .ok_or(VllmError::UnknownSequence(seq.seq_id))?;
            *table.last_mut().expect("table nonempty") = PhysicalBlock::gpu(fresh);
            self.num_cow_copies += 1;
            let copy = BlockCopy {
                src: last.id,
                dst: fresh,
            };
            self.pending.copies.push(copy);
            return Ok(Some(copy));
        }
        Ok(None)
    }

    /// Shares the parent's blocks with a forked child (the `fork` primitive
    /// of §5.2): the child's block table is a copy and every block's
    /// reference count is incremented.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the parent has no table.
    pub fn fork(&mut self, parent_id: SeqId, child_id: SeqId) -> Result<()> {
        let table = self
            .block_tables
            .get(&parent_id)
            .ok_or(VllmError::UnknownSequence(parent_id))?
            .clone();
        for block in &table {
            match block.device {
                Device::Gpu => self.gpu.incr_ref(block.id)?,
                Device::Cpu => self.cpu.incr_ref(block.id)?,
            }
        }
        self.block_tables.insert(child_id, table);
        Ok(())
    }

    /// Eager-copy fork (ablation): instead of sharing the parent's blocks,
    /// the child gets fresh blocks and the parent's contents are copied —
    /// what a contiguous-KV system must do. Returns the copies to perform.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the parent has no table and
    /// [`VllmError::OutOfGpuBlocks`] if the pool is exhausted.
    pub fn fork_eager(&mut self, parent_id: SeqId, child_id: SeqId) -> Result<Vec<BlockCopy>> {
        let table = self
            .block_tables
            .get(&parent_id)
            .ok_or(VllmError::UnknownSequence(parent_id))?
            .clone();
        let mut new_table = Vec::with_capacity(table.len());
        let mut copies = Vec::with_capacity(table.len());
        for block in &table {
            debug_assert_eq!(block.device, Device::Gpu, "eager fork of resident seq");
            let fresh = self.gpu.allocate()?;
            copies.push(BlockCopy {
                src: block.id,
                dst: fresh,
            });
            new_table.push(PhysicalBlock::gpu(fresh));
        }
        self.block_tables.insert(child_id, new_table);
        self.pending.copies.extend_from_slice(&copies);
        Ok(copies)
    }

    /// Frees all blocks of a sequence (the `free` primitive of §5.2).
    ///
    /// Freeing a sequence without a block table is a no-op so that waiting
    /// sequences can be aborted uniformly.
    ///
    /// # Errors
    ///
    /// Propagates double-free errors, which indicate corrupted accounting.
    pub fn free(&mut self, seq_id: SeqId) -> Result<()> {
        if let Some(table) = self.block_tables.remove(&seq_id) {
            for block in table {
                match block.device {
                    Device::Gpu => self.gpu.free(block.id)?,
                    Device::Cpu => self.cpu.free(block.id)?,
                };
            }
        }
        Ok(())
    }

    /// The physical blocks of a sequence, in logical order.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the sequence has no table.
    pub fn block_table(&self, seq_id: SeqId) -> Result<&[PhysicalBlock]> {
        self.block_tables
            .get(&seq_id)
            .map(Vec::as_slice)
            .ok_or(VllmError::UnknownSequence(seq_id))
    }

    /// Whether a sequence currently has a block table.
    #[must_use]
    pub fn has_table(&self, seq_id: SeqId) -> bool {
        self.block_tables.contains_key(&seq_id)
    }

    /// GPU block ids of a sequence (convenience for executors).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::UnknownSequence`] if the sequence has no table,
    /// or [`VllmError::InvalidBlock`] if any block is not GPU-resident.
    pub fn gpu_block_ids(&self, seq_id: SeqId) -> Result<Vec<PhysicalBlockId>> {
        let table = self.block_table(seq_id)?;
        table
            .iter()
            .map(|b| {
                if b.device == Device::Gpu {
                    Ok(b.id)
                } else {
                    Err(VllmError::InvalidBlock(b.id))
                }
            })
            .collect()
    }

    /// Whether the group's swapped-out blocks fit back into the GPU pool,
    /// keeping one extra block of headroom per sequence for the next token.
    #[must_use]
    pub fn can_swap_in(&self, group: &SequenceGroup) -> bool {
        let mut unique: Vec<PhysicalBlockId> = Vec::new();
        let mut num_seqs = 0;
        for seq in group.seqs_with_status(SequenceStatus::Swapped) {
            num_seqs += 1;
            if let Some(table) = self.block_tables.get(&seq.seq_id) {
                for b in table {
                    if b.device == Device::Cpu && !unique.contains(&b.id) {
                        unique.push(b.id);
                    }
                }
            }
        }
        self.gpu.num_free() >= unique.len() + num_seqs + self.watermark_blocks
    }

    /// Whether the group's GPU blocks fit into the CPU swap pool.
    #[must_use]
    pub fn can_swap_out(&self, group: &SequenceGroup) -> bool {
        if self.swap_disabled {
            return false;
        }
        let mut unique: Vec<PhysicalBlockId> = Vec::new();
        for seq in group.seqs() {
            if seq.is_finished() {
                continue;
            }
            if let Some(table) = self.block_tables.get(&seq.seq_id) {
                for b in table {
                    if b.device == Device::Gpu && !unique.contains(&b.id) {
                        unique.push(b.id);
                    }
                }
            }
        }
        self.cpu.num_free() >= unique.len()
    }

    /// Moves every running sequence's blocks to the CPU pool, preserving
    /// intra-group sharing (§4.5 swapping). Returns the (gpu → cpu) copies
    /// the executor must perform.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfCpuBlocks`] if the swap space is full; call
    /// [`Self::can_swap_out`] first.
    pub fn swap_out(&mut self, group: &SequenceGroup) -> Result<Vec<BlockCopy>> {
        // A GPU block shared by several sequences in the group maps to one
        // CPU block, keeping reference counts consistent.
        let mut mapping: HashMap<PhysicalBlockId, PhysicalBlockId> = HashMap::new();
        let mut copies = Vec::new();
        for seq in group.seqs() {
            if seq.is_finished() {
                continue;
            }
            let Some(table) = self.block_tables.get(&seq.seq_id).cloned() else {
                continue;
            };
            let mut new_table = Vec::with_capacity(table.len());
            for block in table {
                match block.device {
                    Device::Gpu => {
                        let cpu_id = match mapping.get(&block.id) {
                            Some(&cpu_id) => {
                                self.cpu.incr_ref(cpu_id)?;
                                cpu_id
                            }
                            None => {
                                let cpu_id = self.cpu.allocate()?;
                                mapping.insert(block.id, cpu_id);
                                copies.push(BlockCopy {
                                    src: block.id,
                                    dst: cpu_id,
                                });
                                cpu_id
                            }
                        };
                        self.gpu.free(block.id)?;
                        new_table.push(PhysicalBlock::cpu(cpu_id));
                    }
                    Device::Cpu => new_table.push(block),
                }
            }
            self.block_tables.insert(seq.seq_id, new_table);
        }
        self.num_swapped_out_blocks += copies.len() as u64;
        self.pending.swap_out.extend_from_slice(&copies);
        Ok(copies)
    }

    /// Brings a swapped group's blocks back into the GPU pool (§4.5).
    /// Returns the (cpu → gpu) copies the executor must perform.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::OutOfGpuBlocks`] if the pool is full; call
    /// [`Self::can_swap_in`] first.
    pub fn swap_in(&mut self, group: &SequenceGroup) -> Result<Vec<BlockCopy>> {
        let mut mapping: HashMap<PhysicalBlockId, PhysicalBlockId> = HashMap::new();
        let mut copies = Vec::new();
        for seq in group.seqs_with_status(SequenceStatus::Swapped) {
            let Some(table) = self.block_tables.get(&seq.seq_id).cloned() else {
                continue;
            };
            let mut new_table = Vec::with_capacity(table.len());
            for block in table {
                match block.device {
                    Device::Cpu => {
                        let gpu_id = match mapping.get(&block.id) {
                            Some(&gpu_id) => {
                                self.gpu.incr_ref(gpu_id)?;
                                gpu_id
                            }
                            None => {
                                let gpu_id = self.gpu.allocate()?;
                                mapping.insert(block.id, gpu_id);
                                copies.push(BlockCopy {
                                    src: block.id,
                                    dst: gpu_id,
                                });
                                gpu_id
                            }
                        };
                        self.cpu.free(block.id)?;
                        new_table.push(PhysicalBlock::gpu(gpu_id));
                    }
                    Device::Gpu => new_table.push(block),
                }
            }
            self.block_tables.insert(seq.seq_id, new_table);
        }
        self.num_swapped_in_blocks += copies.len() as u64;
        self.pending.swap_in.extend_from_slice(&copies);
        Ok(copies)
    }

    /// Sum over sequences of their logical block counts, for GPU-resident
    /// sequences. The difference to [`Self::num_allocated_gpu_blocks`] is the
    /// number of blocks saved by sharing (Fig. 15).
    #[must_use]
    pub fn num_logical_gpu_blocks(&self) -> usize {
        self.block_tables
            .values()
            .map(|t| t.iter().filter(|b| b.device == Device::Gpu).count())
            .sum()
    }

    /// Fraction of blocks saved by sharing: `(logical - physical) / logical`
    /// (Fig. 15). Returns 0 when nothing is allocated.
    #[must_use]
    pub fn sharing_savings(&self) -> f64 {
        let logical = self.num_logical_gpu_blocks();
        if logical == 0 {
            return 0.0;
        }
        // Pinned prefix-anchor blocks can make `physical` exceed `logical`;
        // they are provider-owned overhead, not sequence waste.
        let physical = self.gpu.num_allocated();
        logical.saturating_sub(physical) as f64 / logical as f64
    }

    /// Number of KV token slots actually holding token state in the GPU pool,
    /// given the sequences' current lengths (Fig. 2 "token states" metric).
    ///
    /// A shared physical block stores one copy of its token states, so fill
    /// counts are aggregated per physical block with `max`.
    #[must_use]
    pub fn used_gpu_slots<'a, I>(&self, seqs: I) -> usize
    where
        I: IntoIterator<Item = &'a Sequence>,
    {
        let mut fill: HashMap<PhysicalBlockId, usize> = HashMap::new();
        for seq in seqs {
            let Some(table) = self.block_tables.get(&seq.seq_id) else {
                continue;
            };
            let len = seq.len();
            for (j, block) in table.iter().enumerate() {
                if block.device != Device::Gpu {
                    continue;
                }
                let filled = len.saturating_sub(j * self.block_size).min(self.block_size);
                let e = fill.entry(block.id).or_insert(0);
                *e = (*e).max(filled);
            }
        }
        fill.values().sum()
    }

    /// Verifies internal consistency: every table entry points at an
    /// allocated block and the per-pool reference totals match the tables.
    /// Intended for tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if the accounting is inconsistent.
    pub fn assert_consistent(&self) {
        let mut gpu_refs: HashMap<PhysicalBlockId, u32> = HashMap::new();
        let mut cpu_refs: HashMap<PhysicalBlockId, u32> = HashMap::new();
        for table in self.block_tables.values() {
            for b in table {
                match b.device {
                    Device::Gpu => *gpu_refs.entry(b.id).or_insert(0) += 1,
                    Device::Cpu => *cpu_refs.entry(b.id).or_insert(0) += 1,
                }
            }
        }
        for (pool, refs, name) in [(&self.gpu, &gpu_refs, "gpu"), (&self.cpu, &cpu_refs, "cpu")] {
            for id in 0..pool.num_blocks() {
                let expected = refs.get(&id).copied().unwrap_or(0);
                // Prefix-cache blocks hold one extra anchor reference not
                // recorded in any sequence table, so allow `actual ==
                // expected + 1` only when expected count comes from tables.
                let actual = pool.ref_count(id).expect("in range");
                assert!(
                    actual == expected || actual == expected + 1,
                    "{name} block {id}: ref count {actual} != table references {expected}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingParams;
    use crate::sequence::Sequence;

    const BS: usize = 4;

    fn manager(gpu_blocks: usize, cpu_blocks: usize) -> BlockSpaceManager {
        let cfg = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        BlockSpaceManager::new(&cfg)
    }

    fn group_with_prompt(id: u64, prompt_len: usize) -> SequenceGroup {
        let seq = Sequence::new(id, (0..prompt_len as u32).collect(), BS);
        SequenceGroup::new(format!("r{id}"), seq, SamplingParams::greedy(64), 0.0)
    }

    #[test]
    fn allocate_prompt_blocks() {
        let mut m = manager(10, 0);
        let g = group_with_prompt(0, 7);
        assert_eq!(m.can_allocate(&g), AllocStatus::Ok);
        m.allocate(&g).unwrap();
        assert_eq!(m.block_table(0).unwrap().len(), 2);
        assert_eq!(m.num_free_gpu_blocks(), 8);
        m.assert_consistent();
    }

    #[test]
    fn can_allocate_never_for_oversized_prompt() {
        let m = manager(2, 0);
        let g = group_with_prompt(0, 100);
        assert_eq!(m.can_allocate(&g), AllocStatus::Never);
    }

    #[test]
    fn can_allocate_later_when_full() {
        let mut m = manager(2, 0);
        let g0 = group_with_prompt(0, 8);
        m.allocate(&g0).unwrap();
        let g1 = group_with_prompt(1, 4);
        assert_eq!(m.can_allocate(&g1), AllocStatus::Later);
    }

    #[test]
    fn append_slot_allocates_on_block_boundary() {
        let mut m = manager(10, 0);
        let mut g = group_with_prompt(0, 4);
        m.allocate(&g).unwrap();
        assert_eq!(m.block_table(0).unwrap().len(), 1);
        // Token 5 starts logical block 1.
        g.get_mut(0).unwrap().data.append_token(100);
        let cow = m.append_slot(g.get(0).unwrap()).unwrap();
        assert!(cow.is_none());
        assert_eq!(m.block_table(0).unwrap().len(), 2);
        // Tokens 6..8 stay in block 1.
        for t in 0..3 {
            g.get_mut(0).unwrap().data.append_token(101 + t);
            assert!(m.append_slot(g.get(0).unwrap()).unwrap().is_none());
        }
        assert_eq!(m.block_table(0).unwrap().len(), 2);
        m.assert_consistent();
    }

    #[test]
    fn fork_shares_blocks_and_cow_splits() {
        let mut m = manager(10, 0);
        let mut g = group_with_prompt(0, 6);
        m.allocate(&g).unwrap();
        let child = g.get(0).unwrap().fork(1);
        g.add(child);
        m.fork(0, 1).unwrap();
        // Both tables point at the same two blocks.
        assert_eq!(m.block_table(0).unwrap(), m.block_table(1).unwrap());
        assert_eq!(m.num_allocated_gpu_blocks(), 2);
        assert_eq!(m.num_logical_gpu_blocks(), 4);
        assert!(m.sharing_savings() > 0.49);

        // Child appends into the half-full last block: copy-on-write.
        g.get_mut(1).unwrap().data.append_token(7);
        let cow = m.append_slot(g.get(1).unwrap()).unwrap().unwrap();
        assert_eq!(m.num_allocated_gpu_blocks(), 3);
        let t0 = m.block_table(0).unwrap().to_vec();
        let t1 = m.block_table(1).unwrap().to_vec();
        assert_eq!(t0[0], t1[0]);
        assert_ne!(t0[1], t1[1]);
        assert_eq!(cow.src, t0[1].id);
        assert_eq!(cow.dst, t1[1].id);

        // Parent now appends into its (no longer shared) block: no copy.
        g.get_mut(0).unwrap().data.append_token(8);
        assert!(m.append_slot(g.get(0).unwrap()).unwrap().is_none());
        assert_eq!(m.num_cow_copies(), 1);
        m.assert_consistent();
    }

    #[test]
    fn free_releases_shared_blocks_gradually() {
        let mut m = manager(10, 0);
        let g = group_with_prompt(0, 8);
        m.allocate(&g).unwrap();
        m.fork(0, 1).unwrap();
        m.free(0).unwrap();
        assert_eq!(m.num_allocated_gpu_blocks(), 2);
        m.free(1).unwrap();
        assert_eq!(m.num_allocated_gpu_blocks(), 0);
        assert_eq!(m.num_free_gpu_blocks(), 10);
    }

    #[test]
    fn free_unknown_sequence_is_noop() {
        let mut m = manager(4, 0);
        assert!(m.free(42).is_ok());
    }

    #[test]
    fn swap_out_and_in_round_trip() {
        let mut m = manager(4, 4);
        let mut g = group_with_prompt(0, 8);
        m.allocate(&g).unwrap();
        g.set_status_all(SequenceStatus::Running);
        assert!(m.can_swap_out(&g));
        let out = m.swap_out(&g).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(m.num_free_gpu_blocks(), 4);
        assert_eq!(m.num_free_cpu_blocks(), 2);
        g.set_status_all(SequenceStatus::Swapped);

        assert!(m.can_swap_in(&g));
        let back = m.swap_in(&g).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(m.num_free_cpu_blocks(), 4);
        assert_eq!(m.num_free_gpu_blocks(), 2);
        assert_eq!(m.num_swapped_out_blocks(), 2);
        assert_eq!(m.num_swapped_in_blocks(), 2);
        m.assert_consistent();
    }

    #[test]
    fn swap_preserves_intra_group_sharing() {
        let mut m = manager(8, 8);
        let mut g = group_with_prompt(0, 8);
        m.allocate(&g).unwrap();
        let child = g.get(0).unwrap().fork(1);
        g.add(child);
        m.fork(0, 1).unwrap();
        g.set_status_all(SequenceStatus::Running);

        // 2 physical blocks shared by 2 sequences: swap copies only 2 blocks.
        let out = m.swap_out(&g).unwrap();
        assert_eq!(out.len(), 2);
        g.set_status_all(SequenceStatus::Swapped);
        assert_eq!(m.block_table(0).unwrap(), m.block_table(1).unwrap());

        let back = m.swap_in(&g).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(m.block_table(0).unwrap(), m.block_table(1).unwrap());
        assert_eq!(m.num_allocated_gpu_blocks(), 2);
        m.assert_consistent();
    }

    #[test]
    fn swap_out_fails_when_cpu_pool_too_small() {
        let mut m = manager(4, 1);
        let mut g = group_with_prompt(0, 8);
        m.allocate(&g).unwrap();
        g.set_status_all(SequenceStatus::Running);
        assert!(!m.can_swap_out(&g));
        assert!(m.swap_out(&g).is_err());
    }

    #[test]
    fn used_slots_counts_shared_blocks_once() {
        let mut m = manager(8, 0);
        let mut g = group_with_prompt(0, 6);
        m.allocate(&g).unwrap();
        let child = g.get(0).unwrap().fork(1);
        g.add(child);
        m.fork(0, 1).unwrap();
        let seqs: Vec<&Sequence> = g.seqs();
        // 6 tokens stored once despite two sharers.
        assert_eq!(m.used_gpu_slots(seqs.into_iter()), 6);
    }

    #[test]
    fn prefix_allocation_shares_full_blocks() {
        let mut m = manager(10, 0);
        // Fake a cached prefix of 8 tokens (2 full blocks).
        let pb0 = {
            let g = group_with_prompt(99, 8);
            m.allocate(&g).unwrap();
            m.gpu_block_ids(99).unwrap()
        };
        // New request: 14-token prompt starting with the 8-token prefix.
        let g = group_with_prompt(0, 14);
        let copies = m.allocate_with_prefix(&g, 8, &pb0).unwrap();
        assert!(copies.is_empty());
        let t = m.block_table(0).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].id, pb0[0]);
        assert_eq!(t[1].id, pb0[1]);
        m.assert_consistent();
    }

    #[test]
    fn pending_ops_mirror_returned_copies() {
        let mut m = manager(8, 8);
        let mut g = group_with_prompt(0, 6);
        m.allocate(&g).unwrap();
        assert!(!m.has_pending(), "plain allocation moves no data");
        let child = g.get(0).unwrap().fork(1);
        g.add(child);
        m.fork(0, 1).unwrap();

        // CoW split lands in the pending copy lane.
        g.get_mut(1).unwrap().data.append_token(7);
        let cow = m.append_slot(g.get(1).unwrap()).unwrap().unwrap();
        assert!(m.has_pending());
        let ops = m.take_pending();
        assert_eq!(ops.copies, vec![cow]);
        assert!(ops.swap_in.is_empty() && ops.swap_out.is_empty());
        assert!(!m.has_pending(), "take_pending drains");

        // Swap out/in land in their own lanes.
        g.set_status_all(SequenceStatus::Running);
        let out = m.swap_out(&g).unwrap();
        g.set_status_all(SequenceStatus::Swapped);
        let back = m.swap_in(&g).unwrap();
        let ops = m.take_pending();
        assert_eq!(ops.swap_out, out);
        assert_eq!(ops.swap_in, back);
        assert!(ops.copies.is_empty());
    }

    #[test]
    fn resize_grow_then_shrink_compacts_and_journals_moves() {
        let mut m = manager(6, 4);
        let g0 = group_with_prompt(0, 8); // Blocks 0, 1.
        let g1 = group_with_prompt(1, 8); // Blocks 2, 3.
        m.allocate(&g0).unwrap();
        m.allocate(&g1).unwrap();
        m.take_pending();

        // Grow: fresh ids appear above the old bound.
        m.resize(10, 4).unwrap();
        assert_eq!(m.num_total_gpu_blocks(), 10);
        assert_eq!(m.num_free_gpu_blocks(), 6);
        let ops = m.take_pending();
        assert_eq!(ops.gpu_capacity, Some(10));
        assert!(ops.moves.is_empty());

        // Free the low group: holes at 0 and 1, live blocks at 2 and 3.
        m.free(0).unwrap();
        assert!(m.pool_fragmentation_ratio() > 0.0);

        // Shrink past the live blocks: they migrate into the holes and the
        // surviving table is remapped.
        let remap = m.resize(2, 4).unwrap();
        assert_eq!(remap.gpu.len(), 2);
        assert_eq!(m.num_total_gpu_blocks(), 2);
        assert_eq!(m.num_free_gpu_blocks(), 0);
        let ids = m.gpu_block_ids(1).unwrap();
        assert_eq!(ids, vec![remap.gpu[&2], remap.gpu[&3]]);
        let ops = m.take_pending();
        assert_eq!(ops.moves.len(), 2);
        assert_eq!(ops.gpu_capacity, Some(2));
        for mv in &ops.moves {
            assert_eq!(mv.device, Device::Gpu);
            assert!(mv.src >= 2 && mv.dst < 2);
        }
        assert_eq!(m.num_block_migrations(), 2);
        assert_eq!(m.pool_fragmentation_ratio(), 0.0);
        m.assert_consistent();
    }

    #[test]
    fn resize_refuses_to_shrink_below_working_set() {
        let mut m = manager(4, 0);
        let g = group_with_prompt(0, 8);
        m.allocate(&g).unwrap();
        assert!(m.resize(1, 0).is_err());
        assert!(m.resize(0, 0).is_err());
        // Unchanged on error.
        assert_eq!(m.num_total_gpu_blocks(), 4);
        m.assert_consistent();
    }

    #[test]
    fn compact_moves_shared_blocks_once_and_keeps_sharing() {
        let mut m = manager(8, 0);
        let filler = group_with_prompt(9, 8); // Blocks 0, 1.
        m.allocate(&filler).unwrap();
        let g = group_with_prompt(0, 8); // Blocks 2, 3.
        m.allocate(&g).unwrap();
        m.fork(0, 1).unwrap(); // Shared by two sequences.
        m.free(9).unwrap(); // Holes at 0, 1.
        m.take_pending();

        let remap = m.compact().unwrap();
        assert_eq!(remap.gpu.len(), 2, "each shared block moves exactly once");
        assert_eq!(m.block_table(0).unwrap(), m.block_table(1).unwrap());
        assert_eq!(m.gpu_block_ids(0).unwrap(), vec![0, 1]);
        let ops = m.take_pending();
        assert_eq!(ops.moves.len(), 2);
        assert_eq!(ops.gpu_capacity, None, "compact alone never resizes");
        m.assert_consistent();
    }

    #[test]
    fn compact_remaps_swapped_out_cpu_blocks() {
        let mut m = manager(4, 6);
        let filler = group_with_prompt(9, 8);
        m.allocate(&filler).unwrap();
        let mut g = group_with_prompt(0, 8);
        m.swap_out(&filler).unwrap(); // CPU blocks 0, 1.
        m.allocate(&g).unwrap();
        g.set_status_all(SequenceStatus::Running);
        m.swap_out(&g).unwrap(); // CPU blocks 2, 3.
                                 // Free the first swapped group: CPU holes at 0, 1.
        m.free(9).unwrap();
        m.take_pending();

        let remap = m.resize(4, 2).unwrap();
        assert_eq!(remap.cpu.len(), 2);
        assert!(remap.gpu.is_empty());
        let table = m.block_table(0).unwrap();
        assert!(table.iter().all(|b| b.device == Device::Cpu && b.id < 2));
        let ops = m.take_pending();
        assert_eq!(ops.cpu_capacity, Some(2));
        assert!(ops.moves.iter().all(|mv| mv.device == Device::Cpu));
        m.assert_consistent();
    }

    #[test]
    fn resize_rescales_watermark() {
        let cfg = CacheConfig::new(BS, 100, 0)
            .unwrap()
            .with_watermark(0.1)
            .unwrap();
        let mut m = BlockSpaceManager::new(&cfg);
        let g = group_with_prompt(0, 4);
        // 10-block watermark: a 1-block prompt needs 11 free.
        assert_eq!(m.can_allocate(&g), AllocStatus::Ok);
        m.resize(200, 0).unwrap();
        // Watermark rescaled to 20 blocks of 200.
        assert_eq!(m.num_total_gpu_blocks(), 200);
        assert_eq!(m.can_allocate(&g), AllocStatus::Ok);
        m.resize(1, 0).unwrap();
        assert_eq!(m.can_allocate(&g), AllocStatus::Ok, "watermark is 0 of 1");
    }

    #[test]
    fn prefix_allocation_cow_splits_partial_block() {
        let mut m = manager(10, 0);
        // Cached prefix of 6 tokens: blocks 0 full, 1 half-full.
        let pb = {
            let g = group_with_prompt(99, 6);
            m.allocate(&g).unwrap();
            m.gpu_block_ids(99).unwrap()
        };
        let g = group_with_prompt(0, 10);
        let copies = m.allocate_with_prefix(&g, 6, &pb).unwrap();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].src, pb[1]);
        let t = m.block_table(0).unwrap();
        assert_eq!(t[0].id, pb[0]);
        assert_ne!(t[1].id, pb[1]);
        assert_eq!(t.len(), 3);
        m.assert_consistent();
    }
}
