//! Configuration for the KV cache, scheduler, and engine.

use serde::{Deserialize, Serialize};

use crate::error::{Result, VllmError};

/// Default KV block size in tokens (§7.2: block size 16 is the vLLM default).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Default fraction of GPU blocks kept free as a watermark to avoid
/// thrashing between allocation and immediate preemption.
pub const DEFAULT_WATERMARK: f64 = 0.01;

/// Configuration of the paged KV cache (§4.2).
///
/// The cache is split into a GPU pool (used for active sequences) and a CPU
/// pool (the swap space used by the swapping recovery mechanism of §4.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of tokens per KV block (`B` in the paper).
    pub block_size: usize,
    /// Number of physical blocks in the GPU pool.
    pub num_gpu_blocks: usize,
    /// Number of physical blocks in the CPU swap pool.
    pub num_cpu_blocks: usize,
    /// Fraction of GPU blocks kept free when admitting new prompts.
    pub watermark: f64,
}

impl CacheConfig {
    /// Creates a cache configuration, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if `block_size` is zero, the GPU
    /// pool is empty, or the watermark is outside `[0, 1)`.
    pub fn new(block_size: usize, num_gpu_blocks: usize, num_cpu_blocks: usize) -> Result<Self> {
        let cfg = Self {
            block_size,
            num_gpu_blocks,
            num_cpu_blocks,
            watermark: DEFAULT_WATERMARK,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Sets a custom watermark fraction.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if the watermark is outside `[0, 1)`.
    pub fn with_watermark(mut self, watermark: f64) -> Result<Self> {
        self.watermark = watermark;
        self.validate()?;
        Ok(self)
    }

    fn validate(&self) -> Result<()> {
        if self.block_size == 0 {
            return Err(VllmError::InvalidConfig("block_size must be > 0".into()));
        }
        if self.num_gpu_blocks == 0 {
            return Err(VllmError::InvalidConfig(
                "num_gpu_blocks must be > 0".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.watermark) {
            return Err(VllmError::InvalidConfig(
                "watermark must be in [0, 1)".into(),
            ));
        }
        Ok(())
    }

    /// Derives the cache configuration from a fixed GPU memory budget:
    /// `num_gpu_blocks = budget_bytes / bytes_per_block`, where
    /// `bytes_per_block` comes from the serving backend's KV element layout
    /// (§4.1 profiling step). A backend that stores KV more compactly —
    /// e.g. int8 with per-slot scales — therefore yields proportionally
    /// more blocks, and with them a larger schedulable batch, from the
    /// same memory budget. The CPU swap pool is sized to match the GPU
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if `bytes_per_block` is zero,
    /// the budget is smaller than one block, or `block_size` is invalid.
    pub fn from_memory_budget(
        block_size: usize,
        bytes_per_block: usize,
        budget_bytes: usize,
    ) -> Result<Self> {
        if bytes_per_block == 0 {
            return Err(VllmError::InvalidConfig(
                "bytes_per_block must be > 0".into(),
            ));
        }
        let num_gpu_blocks = budget_bytes / bytes_per_block;
        if num_gpu_blocks == 0 {
            return Err(VllmError::InvalidConfig(format!(
                "memory budget {budget_bytes} B holds no {bytes_per_block}-byte blocks"
            )));
        }
        Self::new(block_size, num_gpu_blocks, num_gpu_blocks)
    }

    /// Number of GPU blocks kept free as the admission watermark.
    #[must_use]
    pub fn watermark_blocks(&self) -> usize {
        (self.watermark * self.num_gpu_blocks as f64) as usize
    }

    /// Total number of KV token slots in the GPU pool.
    #[must_use]
    pub fn total_gpu_slots(&self) -> usize {
        self.num_gpu_blocks * self.block_size
    }
}

/// Environment variable carrying the per-step token budget that enables
/// scheduler-budgeted chunked prefill (`VLLM_STEP_TOKEN_BUDGET=256`).
/// Unset, empty, or `0` leaves chunking disabled (all-or-nothing prefill
/// admission, the paper's §4.5 behavior).
pub const STEP_TOKEN_BUDGET_ENV: &str = "VLLM_STEP_TOKEN_BUDGET";

/// Reads [`STEP_TOKEN_BUDGET_ENV`]: `None` when unset, empty, or zero.
///
/// # Panics
///
/// Panics on a non-numeric value — a typo'd budget silently disabling
/// chunked prefill would invalidate TTFT comparisons.
#[must_use]
pub fn step_token_budget_from_env() -> Option<usize> {
    match std::env::var(STEP_TOKEN_BUDGET_ENV) {
        Ok(s) if s.is_empty() => None,
        Ok(s) => {
            let v: usize = s.parse().unwrap_or_else(|_| {
                panic!("invalid {STEP_TOKEN_BUDGET_ENV} value `{s}` (expected a token count)")
            });
            (v > 0).then_some(v)
        }
        Err(_) => None,
    }
}

/// How a preempted sequence group is recovered (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionMode {
    /// Copy evicted blocks to the CPU pool and copy them back later.
    Swap,
    /// Discard the blocks and recompute the KV cache as one prompt run.
    Recompute,
}

/// Which running group is preempted first when memory runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// Preempt the latest-arrived group (the paper's FCFS-preserving
    /// policy: "the latest requests are preempted first").
    LatestArrival,
    /// Preempt the group holding the most KV blocks (ablation: frees the
    /// most memory per preemption but starves long requests).
    LargestFootprint,
}

/// Configuration of the iteration-level scheduler (§4.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum number of tokens processed in one iteration (prompt tokens for
    /// prompt-phase steps, one token per sequence for generation steps).
    pub max_num_batched_tokens: usize,
    /// Maximum number of sequences running in one iteration.
    pub max_num_seqs: usize,
    /// Maximum model context length; prompts longer than this are rejected.
    pub max_model_len: usize,
    /// How preempted groups are recovered.
    pub preemption_mode: PreemptionMode,
    /// Which group is preempted first.
    pub victim_policy: VictimPolicy,
    /// Per-step token budget enabling chunked prefill. `None` keeps the
    /// paper's all-or-nothing prompt admission; `Some(b)` makes the
    /// scheduler split prompts into chunks of at most `b` tokens that
    /// co-batch with decode sequences in the same step.
    pub step_token_budget: Option<usize>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_num_batched_tokens: 2560,
            max_num_seqs: 256,
            max_model_len: 2048,
            preemption_mode: PreemptionMode::Recompute,
            victim_policy: VictimPolicy::LatestArrival,
            step_token_budget: None,
        }
    }
}

impl SchedulerConfig {
    /// Creates a scheduler configuration, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if any limit is zero or if
    /// `max_num_batched_tokens < max_model_len` (a full-length prompt must be
    /// schedulable in one iteration).
    pub fn new(
        max_num_batched_tokens: usize,
        max_num_seqs: usize,
        max_model_len: usize,
    ) -> Result<Self> {
        if max_num_batched_tokens == 0 || max_num_seqs == 0 || max_model_len == 0 {
            return Err(VllmError::InvalidConfig(
                "scheduler limits must be > 0".into(),
            ));
        }
        if max_num_batched_tokens < max_model_len {
            return Err(VllmError::InvalidConfig(format!(
                "max_num_batched_tokens ({max_num_batched_tokens}) must be >= max_model_len ({max_model_len})"
            )));
        }
        Ok(Self {
            max_num_batched_tokens,
            max_num_seqs,
            max_model_len,
            preemption_mode: PreemptionMode::Recompute,
            victim_policy: VictimPolicy::LatestArrival,
            step_token_budget: None,
        })
    }

    /// Creates a chunked-prefill scheduler configuration: prompts are split
    /// into chunks of at most `step_token_budget` tokens, so — unlike
    /// [`Self::new`] — `max_num_batched_tokens` may be smaller than
    /// `max_model_len` (a full-length prompt no longer has to fit in one
    /// iteration).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidConfig`] if any limit is zero or the
    /// budget exceeds `max_num_batched_tokens`.
    pub fn new_chunked(
        max_num_batched_tokens: usize,
        max_num_seqs: usize,
        max_model_len: usize,
        step_token_budget: usize,
    ) -> Result<Self> {
        if max_num_batched_tokens == 0
            || max_num_seqs == 0
            || max_model_len == 0
            || step_token_budget == 0
        {
            return Err(VllmError::InvalidConfig(
                "scheduler limits must be > 0".into(),
            ));
        }
        if step_token_budget > max_num_batched_tokens {
            return Err(VllmError::InvalidConfig(format!(
                "step_token_budget ({step_token_budget}) must be <= max_num_batched_tokens ({max_num_batched_tokens})"
            )));
        }
        Ok(Self {
            max_num_batched_tokens,
            max_num_seqs,
            max_model_len,
            preemption_mode: PreemptionMode::Recompute,
            victim_policy: VictimPolicy::LatestArrival,
            step_token_budget: Some(step_token_budget),
        })
    }

    /// Sets (or clears) the chunked-prefill step token budget.
    #[must_use]
    pub fn with_step_token_budget(mut self, budget: Option<usize>) -> Self {
        self.step_token_budget = budget.filter(|&b| b > 0);
        self
    }

    /// Sets the preemption (recovery) mode.
    #[must_use]
    pub fn with_preemption_mode(mut self, mode: PreemptionMode) -> Self {
        self.preemption_mode = mode;
        self
    }

    /// Sets the preemption victim policy.
    #[must_use]
    pub fn with_victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_config_validates() {
        assert!(CacheConfig::new(16, 100, 100).is_ok());
        assert!(CacheConfig::new(0, 100, 100).is_err());
        assert!(CacheConfig::new(16, 0, 100).is_err());
        assert!(CacheConfig::new(16, 100, 0).is_ok());
    }

    #[test]
    fn from_memory_budget_scales_with_block_width() {
        // Equal budget, half the bytes per block → twice the blocks (the
        // quantized-KV capacity argument).
        let budget = 1 << 20;
        let wide = CacheConfig::from_memory_budget(16, 8192, budget).unwrap();
        let narrow = CacheConfig::from_memory_budget(16, 4096, budget).unwrap();
        assert_eq!(wide.num_gpu_blocks, 128);
        assert_eq!(narrow.num_gpu_blocks, 256);
        assert_eq!(narrow.num_cpu_blocks, narrow.num_gpu_blocks);
        assert!(CacheConfig::from_memory_budget(16, 0, budget).is_err());
        assert!(CacheConfig::from_memory_budget(16, budget + 1, budget).is_err());
    }

    #[test]
    fn watermark_blocks_rounds_down() {
        let cfg = CacheConfig::new(16, 1000, 0)
            .unwrap()
            .with_watermark(0.015)
            .unwrap();
        assert_eq!(cfg.watermark_blocks(), 15);
    }

    #[test]
    fn watermark_out_of_range_rejected() {
        let cfg = CacheConfig::new(16, 10, 0).unwrap();
        assert!(cfg.clone().with_watermark(1.0).is_err());
        assert!(cfg.with_watermark(-0.1).is_err());
    }

    #[test]
    fn scheduler_config_requires_full_prompt_budget() {
        assert!(SchedulerConfig::new(2048, 256, 2048).is_ok());
        assert!(SchedulerConfig::new(1024, 256, 2048).is_err());
        assert!(SchedulerConfig::new(0, 256, 2048).is_err());
    }

    #[test]
    fn chunked_scheduler_config_relaxes_prompt_budget() {
        // With a step budget, a prompt no longer has to fit one iteration.
        let cfg = SchedulerConfig::new_chunked(512, 64, 33_000, 256).unwrap();
        assert_eq!(cfg.step_token_budget, Some(256));
        assert!(cfg.max_num_batched_tokens < cfg.max_model_len);
        assert!(SchedulerConfig::new_chunked(512, 64, 2048, 0).is_err());
        assert!(SchedulerConfig::new_chunked(512, 64, 2048, 1024).is_err());
        let legacy = SchedulerConfig::new(2048, 64, 2048)
            .unwrap()
            .with_step_token_budget(Some(128));
        assert_eq!(legacy.step_token_budget, Some(128));
        assert_eq!(legacy.with_step_token_budget(None).step_token_budget, None);
    }

    #[test]
    fn total_gpu_slots() {
        let cfg = CacheConfig::new(16, 100, 0).unwrap();
        assert_eq!(cfg.total_gpu_slots(), 1600);
    }
}
