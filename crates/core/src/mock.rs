//! A deterministic scripted executor for tests and examples.
//!
//! [`MockExecutor`] produces tokens from a pure function of `(seed, seq_id,
//! position)`, so engine-level behaviours (forking, beam search, preemption,
//! recomputation) can be tested without a numeric model. Recomputation
//! determinism holds by construction: replaying the same positions yields
//! the same tokens.

use crate::error::Result;
use crate::executor::{KernelTiming, ModelExecutor, SeqStepOutput, StepResult};
use crate::plan::StepPlan;
use crate::sampling::TokenId;

/// Deterministic stand-in model executor.
#[derive(Debug, Clone)]
pub struct MockExecutor {
    /// Vocabulary size for generated token ids.
    pub vocab_size: u32,
    /// Modeled duration of every step, in seconds.
    pub step_time: f64,
    /// If set, sequences emit this token at positions where
    /// `position % eos_period == 0` (used to exercise eos stop paths).
    pub eos_token: Option<(TokenId, usize)>,
    /// Number of executed steps.
    pub steps: u64,
    /// Number of block copies observed (copy-on-write + swaps).
    pub copies_seen: u64,
    /// Number of KV-handoff block installations observed.
    pub installs_seen: u64,
    /// When set, tokens depend only on `(seed, position)` — not the
    /// engine-local `seq_id`. Real logits are a function of the tokens and
    /// positions, never of an engine's internal sequence counter, so this
    /// is the mode for cross-engine determinism tests (a request migrated
    /// to another replica must produce the identical continuation even
    /// though the target engine assigns it a different `seq_id`).
    pub seq_invariant: bool,
}

impl MockExecutor {
    /// Creates a mock with the given vocabulary size.
    #[must_use]
    pub fn new(vocab_size: u32) -> Self {
        Self {
            vocab_size,
            step_time: 0.01,
            eos_token: None,
            steps: 0,
            copies_seen: 0,
            installs_seen: 0,
            seq_invariant: false,
        }
    }

    /// Switches the mock into seq-invariant mode (tokens depend only on
    /// the sampling seed and position, like real logits).
    #[must_use]
    pub fn seq_invariant(mut self) -> Self {
        self.seq_invariant = true;
        self
    }

    fn token_at(&self, seed: u64, seq_id: u64, position: usize) -> TokenId {
        if let Some((eos, period)) = self.eos_token {
            if period > 0 && position.is_multiple_of(period) {
                return eos;
            }
        }
        let sid = if self.seq_invariant { 0 } else { seq_id };
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [sid, position as u64] {
            h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = h.rotate_left(31).wrapping_mul(0x94d0_49bb_1331_11eb);
        }
        (h % u64::from(self.vocab_size)) as TokenId
    }
}

impl ModelExecutor for MockExecutor {
    fn begin_step(&mut self, plan: &StepPlan) -> Result<StepResult> {
        self.steps += 1;
        self.copies_seen += (plan.cache_ops.copies.len()
            + plan.cache_ops.swap_in.len()
            + plan.cache_ops.swap_out.len()
            + plan.cache_ops.moves.len()) as u64;
        self.installs_seen += plan.cache_ops.installs.len() as u64;
        let mut outputs = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            let next_pos = item.context_len();
            let mut candidates = Vec::with_capacity(item.num_candidates);
            for c in 0..item.num_candidates {
                // Candidate `c` perturbs the seed so parallel samples differ.
                let token = self.token_at(item.seed.wrapping_add(c as u64), item.seq_id, next_pos);
                let logprob = -0.1 * (c as f32 + 1.0);
                candidates.push((token, logprob));
            }
            outputs.push(SeqStepOutput {
                seq_id: item.seq_id,
                candidates,
            });
        }
        Ok(StepResult {
            outputs,
            elapsed: self.step_time,
            kernels: vec![KernelTiming {
                name: "forward".to_string(),
                seconds: self.step_time,
            }],
        })
    }
}
