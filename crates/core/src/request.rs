//! Typed generation-request API.
//!
//! [`GenerationRequest`] is the serving-facing request description: what to
//! decode ([`GenerationMode`] + knobs), how much ([`max_tokens`], `n`), and
//! under which service constraints (deadline, priority). It replaces the
//! positional `GENERATE\t<max_tokens>\t<n>\t<mode>` wire fields with a
//! builder that all entry points share — the frontend parser, the replica
//! admission loop, and the simulator's trace loader — so validation and the
//! error taxonomy live in exactly one place.
//!
//! The request is *descriptive*: it is converted into the engine-internal
//! [`SamplingParams`] by [`GenerationRequest::sampling_params`], which is
//! where cross-field validation happens ([`VllmError::InvalidRequest`] on
//! conflict).

use std::str::FromStr;

use serde::{Deserialize, Serialize};
use vllm_telemetry::TraceContext;

use crate::error::{Result, VllmError};
use crate::sampling::{DecodingMode, SamplingParams, TokenId};

/// The decoding algorithm named on the wire (`mode=` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenerationMode {
    /// Argmax decoding of a single sequence.
    Greedy,
    /// Random sampling of `n` parallel sequences.
    Sample,
    /// Beam search with width `n`.
    Beam,
}

impl GenerationMode {
    /// The lowercase wire spelling (`greedy` / `sample` / `beam`).
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::Sample => "sample",
            Self::Beam => "beam",
        }
    }
}

impl std::fmt::Display for GenerationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl FromStr for GenerationMode {
    type Err = VllmError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "greedy" => Ok(Self::Greedy),
            "sample" => Ok(Self::Sample),
            "beam" => Ok(Self::Beam),
            other => Err(VllmError::InvalidRequest(format!("unknown mode {other:?}"))),
        }
    }
}

/// A typed, validated-on-conversion generation request.
///
/// Construct with [`greedy`](Self::greedy) / [`sample`](Self::sample) /
/// [`beam`](Self::beam) and chain `with_*` builders:
///
/// ```
/// use vllm_core::GenerationRequest;
/// let req = GenerationRequest::sample(4, 128)
///     .with_temperature(0.8)
///     .with_seed(7)
///     .with_deadline(2.5)
///     .with_priority(1);
/// let params = req.sampling_params().unwrap();
/// assert_eq!(params.n, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRequest {
    /// Maximum number of generated tokens per sequence.
    pub max_tokens: usize,
    /// Number of output sequences (samples, or beam width for beam search).
    pub n: usize,
    /// Decoding algorithm.
    pub mode: GenerationMode,
    /// Softmax temperature (`Sample` mode only).
    pub temperature: Option<f32>,
    /// Nucleus truncation in (0, 1] (`Sample` mode only).
    pub top_p: Option<f32>,
    /// Sampling RNG seed; `None` lets the caller derive one.
    pub seed: Option<u64>,
    /// Relative deadline in seconds of engine (virtual) time from arrival.
    /// The engine cancels the request with
    /// [`VllmError::DeadlineExceeded`] semantics if it is still unfinished
    /// when the deadline passes. `None` means no deadline.
    pub deadline: Option<f64>,
    /// Scheduling priority: higher values are admitted first; ties break by
    /// arrival time (FCFS). Default 0.
    pub priority: i32,
    /// End-of-sequence token id to stop on, if any.
    pub eos_token_id: Option<TokenId>,
    /// Forces sequences to ignore `eos` and run to `max_tokens` (trace
    /// replay with known output lengths).
    pub ignore_eos: bool,
    /// Distributed-tracing context to propagate. `None` lets the engine
    /// mint one at admission; routers set a per-attempt child context so
    /// retries appear as sibling spans under one request root.
    pub trace: Option<TraceContext>,
}

impl GenerationRequest {
    fn base(mode: GenerationMode, n: usize, max_tokens: usize) -> Self {
        Self {
            max_tokens,
            n,
            mode,
            temperature: None,
            top_p: None,
            seed: None,
            deadline: None,
            priority: 0,
            eos_token_id: None,
            ignore_eos: false,
            trace: None,
        }
    }

    /// Greedy decoding of one sequence.
    #[must_use]
    pub fn greedy(max_tokens: usize) -> Self {
        Self::base(GenerationMode::Greedy, 1, max_tokens)
    }

    /// Random sampling of `n` parallel sequences.
    #[must_use]
    pub fn sample(n: usize, max_tokens: usize) -> Self {
        Self::base(GenerationMode::Sample, n, max_tokens)
    }

    /// Beam search with width `width`.
    #[must_use]
    pub fn beam(width: usize, max_tokens: usize) -> Self {
        Self::base(GenerationMode::Beam, width, max_tokens)
    }

    /// Sets the sampling temperature (`Sample` mode only; checked on
    /// conversion).
    #[must_use]
    pub fn with_temperature(mut self, t: f32) -> Self {
        self.temperature = Some(t);
        self
    }

    /// Sets nucleus truncation (`Sample` mode only; checked on conversion).
    #[must_use]
    pub fn with_top_p(mut self, p: f32) -> Self {
        self.top_p = Some(p);
        self
    }

    /// Sets the sampling RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets a relative deadline in seconds of engine time.
    #[must_use]
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline = Some(seconds);
        self
    }

    /// Sets the scheduling priority (higher runs first; default 0).
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the end-of-sequence token.
    #[must_use]
    pub fn with_eos(mut self, eos: TokenId) -> Self {
        self.eos_token_id = Some(eos);
        self
    }

    /// Forces sequences to ignore `eos` and run to `max_tokens`.
    #[must_use]
    pub fn with_ignore_eos(mut self) -> Self {
        self.ignore_eos = true;
        self
    }

    /// Sets the tracing context to propagate with this request.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Applies one wire `key=value` field in place. This is the single
    /// parser behind the frontend's optional `GENERATE` fields.
    ///
    /// Known keys: `temperature`, `top_p`, `seed`, `deadline`, `priority`,
    /// `trace` (a [`TraceContext`] wire encoding,
    /// `<trace_id:016x>-<span_id:016x>-<0|1>`).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidRequest`] for an unparseable value, or an
    /// *unknown field* error for any other key (unknown fields are rejected,
    /// never silently ignored).
    pub fn apply_field(&mut self, key: &str, value: &str) -> Result<()> {
        fn bad(key: &str, value: &str) -> VllmError {
            VllmError::InvalidRequest(format!("bad {key} {value:?}"))
        }
        match key {
            "temperature" => {
                self.temperature = Some(value.parse().map_err(|_| bad(key, value))?);
            }
            "top_p" => {
                self.top_p = Some(value.parse().map_err(|_| bad(key, value))?);
            }
            "seed" => {
                self.seed = Some(value.parse().map_err(|_| bad(key, value))?);
            }
            "deadline" => {
                let d: f64 = value.parse().map_err(|_| bad(key, value))?;
                if !d.is_finite() || d <= 0.0 {
                    return Err(bad(key, value));
                }
                self.deadline = Some(d);
            }
            "priority" => {
                self.priority = value.parse().map_err(|_| bad(key, value))?;
            }
            "trace" => {
                self.trace = Some(
                    TraceContext::from_wire(value)
                        .map_err(|e| VllmError::InvalidRequest(format!("bad trace: {e}")))?,
                );
            }
            other => {
                return Err(VllmError::InvalidRequest(format!(
                    "unknown field {other:?} (known: temperature, top_p, seed, deadline, \
                     priority, trace)"
                )));
            }
        }
        Ok(())
    }

    /// Converts to the engine-internal [`SamplingParams`], validating
    /// cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::InvalidRequest`] when greedy mode has `n != 1`,
    /// when `temperature`/`top_p` are set outside `Sample` mode, or when the
    /// resulting parameters fail [`SamplingParams::validate`].
    pub fn sampling_params(&self) -> Result<SamplingParams> {
        let mut params = match self.mode {
            GenerationMode::Greedy => {
                if self.n != 1 {
                    return Err(VllmError::InvalidRequest("greedy requires n=1".into()));
                }
                SamplingParams::greedy(self.max_tokens)
            }
            GenerationMode::Sample => SamplingParams::parallel(self.n, self.max_tokens),
            GenerationMode::Beam => SamplingParams::beam(self.n, self.max_tokens),
        };
        if let DecodingMode::Random {
            temperature, top_p, ..
        } = &mut params.mode
        {
            if let Some(t) = self.temperature {
                *temperature = t;
            }
            if let Some(p) = self.top_p {
                *top_p = p;
            }
        } else if self.temperature.is_some() || self.top_p.is_some() {
            return Err(VllmError::InvalidRequest(format!(
                "temperature/top_p require mode=sample, got \"{}\"",
                self.mode
            )));
        }
        if let Some(eos) = self.eos_token_id {
            params = params.with_eos(eos);
        }
        if self.ignore_eos {
            params = params.with_ignore_eos();
        }
        if let Some(seed) = self.seed {
            params = params.with_seed(seed);
        }
        params
            .validate()
            .map_err(|e| VllmError::InvalidRequest(e.to_string()))?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_round_trip_to_sampling_params() {
        let p = GenerationRequest::greedy(8).sampling_params().unwrap();
        assert_eq!(p.n, 1);
        assert_eq!(p.max_tokens, 8);
        assert!(matches!(p.mode, DecodingMode::Greedy));

        let p = GenerationRequest::sample(3, 16)
            .with_temperature(0.5)
            .with_top_p(0.9)
            .with_seed(42)
            .sampling_params()
            .unwrap();
        assert_eq!(p.n, 3);
        assert_eq!(p.seed, Some(42));
        match p.mode {
            DecodingMode::Random {
                temperature, top_p, ..
            } => {
                assert!((temperature - 0.5).abs() < 1e-6);
                assert!((top_p - 0.9).abs() < 1e-6);
            }
            other => panic!("expected Random, got {other:?}"),
        }

        let p = GenerationRequest::beam(4, 16).sampling_params().unwrap();
        assert!(p.is_beam_search());
        assert_eq!(p.n, 4);
    }

    #[test]
    fn greedy_with_n_gt_1_rejected() {
        let mut r = GenerationRequest::greedy(8);
        r.n = 2;
        let err = r.sampling_params().unwrap_err();
        assert!(err.to_string().contains("greedy requires n=1"));
        assert!(!err.is_retryable());
    }

    #[test]
    fn sampling_knobs_rejected_outside_sample_mode() {
        let err = GenerationRequest::greedy(8)
            .with_temperature(0.5)
            .sampling_params()
            .unwrap_err();
        assert!(err.to_string().contains("mode=sample"));
    }

    #[test]
    fn mode_from_str() {
        assert_eq!(
            "greedy".parse::<GenerationMode>().unwrap(),
            GenerationMode::Greedy
        );
        assert_eq!(
            "sample".parse::<GenerationMode>().unwrap(),
            GenerationMode::Sample
        );
        assert_eq!(
            "beam".parse::<GenerationMode>().unwrap(),
            GenerationMode::Beam
        );
        let err = "turbo".parse::<GenerationMode>().unwrap_err();
        assert!(err.to_string().contains("unknown mode"));
    }

    #[test]
    fn apply_field_parses_known_keys_and_rejects_unknown() {
        let mut r = GenerationRequest::sample(2, 8);
        r.apply_field("temperature", "0.7").unwrap();
        r.apply_field("top_p", "0.95").unwrap();
        r.apply_field("seed", "9").unwrap();
        r.apply_field("deadline", "1.5").unwrap();
        r.apply_field("priority", "-2").unwrap();
        assert_eq!(r.seed, Some(9));
        assert_eq!(r.deadline, Some(1.5));
        assert_eq!(r.priority, -2);

        let err = r.apply_field("tempature", "0.7").unwrap_err();
        assert!(err.to_string().contains("unknown field"));
        assert_eq!(err.kind(), crate::ErrorKind::Request);

        assert!(r.apply_field("deadline", "-1").is_err());
        assert!(r.apply_field("seed", "abc").is_err());
    }
}
