//! Property tests for the elastic block pool: runtime deflate / compact /
//! restore under live copy-on-write sharing (parallel sampling, beam
//! search, forked groups, shared prefixes) must leave token streams
//! bit-identical to a fixed-pool run, preserve every block-manager
//! invariant, and leak nothing once the engine drains.

use proptest::prelude::*;

use vllm_core::mock::MockExecutor;
use vllm_core::{
    CacheConfig, ElasticConfig, ElasticController, LlmEngine, SamplingParams, SchedulerConfig,
};

const BS: usize = 4;
const GPU_BLOCKS: usize = 96;
const CPU_BLOCKS: usize = 32;

fn engine() -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, GPU_BLOCKS, CPU_BLOCKS)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

/// One request of the generated workload.
#[derive(Debug, Clone)]
struct ReqSpec {
    prompt_len: usize,
    max_tokens: usize,
    /// 0 = greedy, 1 = parallel sampling (n=2), 2 = beam (width 2).
    mode: u8,
    /// Requests with the same seed share a prompt (and thus cached prefix
    /// blocks / CoW forks exercise shared physical blocks).
    prompt_seed: u8,
}

fn spec_strategy() -> impl Strategy<Value = ReqSpec> {
    (4usize..24, 1usize..10, 0u8..3, 0u8..4).prop_map(|(prompt_len, max_tokens, mode, seed)| {
        ReqSpec {
            prompt_len,
            max_tokens,
            mode,
            prompt_seed: seed,
        }
    })
}

fn add_workload(e: &mut LlmEngine<MockExecutor>, specs: &[ReqSpec]) {
    for (i, s) in specs.iter().enumerate() {
        let prompt: Vec<u32> = (0..s.prompt_len)
            .map(|p| 1 + u32::from(s.prompt_seed) * 1000 + p as u32)
            .collect();
        let params = match s.mode {
            0 => SamplingParams::greedy(s.max_tokens),
            1 => SamplingParams::parallel(2, s.max_tokens),
            _ => SamplingParams::beam(2, s.max_tokens),
        };
        e.add_request(format!("r{i}"), prompt, params).unwrap();
    }
}

/// Sorted (request id, token streams) of a finished run.
fn tokens_of(outs: &[vllm_core::RequestOutput]) -> Vec<(String, Vec<Vec<u32>>)> {
    let mut v: Vec<(String, Vec<Vec<u32>>)> = outs
        .iter()
        .map(|o| {
            (
                o.request_id.clone(),
                o.outputs.iter().map(|c| c.tokens.clone()).collect(),
            )
        })
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn assert_drained(e: &LlmEngine<MockExecutor>) {
    let bm = e.scheduler().block_manager();
    assert_eq!(
        bm.num_total_gpu_blocks() - bm.num_free_gpu_blocks(),
        0,
        "GPU blocks leaked after drain"
    );
    assert_eq!(
        bm.num_total_cpu_blocks() - bm.num_free_cpu_blocks(),
        0,
        "CPU blocks leaked after drain"
    );
    bm.assert_consistent();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A mid-run deflate (which compacts and journals migrations), an
    /// explicit compact, and a later restore must not change a single
    /// output token relative to an untouched fixed-pool run, and both
    /// engines drain without leaking a block.
    #[test]
    fn deflate_compact_restore_is_token_identical_and_leak_free(
        specs in proptest::collection::vec(spec_strategy(), 2..8),
        deflate_after in 1usize..6,
        fraction_pct in 0u32..80,
        restore in proptest::bool::ANY,
    ) {
        // Fixed-pool baseline.
        let mut fixed = engine();
        add_workload(&mut fixed, &specs);
        let baseline = tokens_of(&fixed.run_to_completion().unwrap());
        assert_drained(&fixed);

        // Elastic run: deflate mid-decode, compact, optionally restore.
        let mut elastic = engine();
        add_workload(&mut elastic, &specs);
        let mut outs = Vec::new();
        for _ in 0..deflate_after {
            if !elastic.has_unfinished() {
                break;
            }
            outs.extend(elastic.step().unwrap());
        }
        elastic.deflate_pool(f64::from(fraction_pct) / 100.0).unwrap();
        elastic.compact_pools().unwrap();
        elastic.scheduler().block_manager().assert_consistent();
        if restore {
            for _ in 0..2 {
                if !elastic.has_unfinished() {
                    break;
                }
                outs.extend(elastic.step().unwrap());
            }
            elastic.restore_pool().unwrap();
        }
        outs.extend(elastic.run_to_completion().unwrap());
        let migrated = tokens_of(&outs);

        prop_assert_eq!(baseline, migrated, "tokens diverged after pool migration");
        assert_drained(&elastic);
    }

    /// The hysteresis controller driving resizes autonomously inside
    /// `step()` must likewise keep outputs bit-identical to the fixed pool
    /// and drain leak-free (this is the engine-level determinism the
    /// lockstep fault harness and trace replay rely on).
    #[test]
    fn controller_driven_elasticity_is_token_identical(
        specs in proptest::collection::vec(spec_strategy(), 2..8),
        min_blocks in 8usize..32,
    ) {
        let mut fixed = engine();
        add_workload(&mut fixed, &specs);
        let baseline = tokens_of(&fixed.run_to_completion().unwrap());

        let mut elastic = engine();
        let cfg = ElasticConfig::new(min_blocks, GPU_BLOCKS).unwrap();
        elastic.resize_pools(min_blocks, CPU_BLOCKS).unwrap();
        elastic.set_elastic(Some(ElasticController::new(cfg)));
        add_workload(&mut elastic, &specs);
        let tokens = tokens_of(&elastic.run_to_completion().unwrap());

        prop_assert_eq!(baseline, tokens, "controller-driven run diverged");
        assert_drained(&elastic);
    }
}

/// Deterministic compaction scenario: a freed low region, an active beam
/// group, a CoW fork, and a shared prompt all live while the pool shrinks
/// around them. Shared blocks must migrate exactly once and every table
/// must follow.
#[test]
fn compact_under_active_beam_fork_and_shared_prefix() {
    let mut e = engine();
    // "low" occupies the lowest block ids and finishes first.
    e.add_request("low", (0..16).collect(), SamplingParams::greedy(2))
        .unwrap();
    // Two requests with an identical prompt (shared prefix candidates).
    e.add_request("s1", (500..532).collect(), SamplingParams::greedy(16))
        .unwrap();
    e.add_request("s2", (500..532).collect(), SamplingParams::greedy(16))
        .unwrap();
    // A beam group (CoW forks of a shared prompt allocation).
    e.add_request("beam", (700..724).collect(), SamplingParams::beam(2, 16))
        .unwrap();
    // A parallel-sampling group (forked sequences sharing prompt blocks).
    e.add_request("par", (800..824).collect(), SamplingParams::parallel(2, 16))
        .unwrap();

    // Run until "low" drains, leaving holes at the bottom of the pool.
    let mut outs = Vec::new();
    loop {
        let step = e.step().unwrap();
        let done = step.iter().any(|o| o.request_id == "low");
        outs.extend(step);
        if done {
            break;
        }
        assert!(e.has_unfinished());
    }

    let before = e.scheduler().block_manager().num_block_migrations();
    e.deflate_pool(0.0).unwrap();
    let bm = e.scheduler().block_manager();
    assert!(
        bm.num_block_migrations() > before,
        "shrinking around live groups must migrate blocks"
    );
    bm.assert_consistent();

    // Finish everything; nothing may leak and outputs must match a clean
    // fixed-pool replay of the same workload.
    outs.extend(e.run_to_completion().unwrap());
    assert_drained(&e);

    let mut fixed = engine();
    fixed
        .add_request("low", (0..16).collect(), SamplingParams::greedy(2))
        .unwrap();
    fixed
        .add_request("s1", (500..532).collect(), SamplingParams::greedy(16))
        .unwrap();
    fixed
        .add_request("s2", (500..532).collect(), SamplingParams::greedy(16))
        .unwrap();
    fixed
        .add_request("beam", (700..724).collect(), SamplingParams::beam(2, 16))
        .unwrap();
    fixed
        .add_request("par", (800..824).collect(), SamplingParams::parallel(2, 16))
        .unwrap();
    let mut fixed_outs = fixed.run_to_completion().unwrap();

    outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    fixed_outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    assert_eq!(tokens_of(&outs), tokens_of(&fixed_outs));
}
