//! Mid-prompt preemption under chunked prefill: a partially-prefilled
//! request that is preempted (recompute or swap) must restart cleanly from
//! its chunk cursor — same final outputs as an unpressured, unchunked run,
//! and exact block accounting afterwards (zero leaks on both pools).

use proptest::prelude::*;
use vllm_core::config::{CacheConfig, PreemptionMode, SchedulerConfig};
use vllm_core::engine::LlmEngine;
use vllm_core::mock::MockExecutor;
use vllm_core::sampling::SamplingParams;
use vllm_core::telemetry::EventKind;

const BS: usize = 4;

fn engine(
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
    budget: Option<usize>,
) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(256, 32, 256)
        .unwrap()
        .with_preemption_mode(mode);
    let mut e = LlmEngine::new(MockExecutor::new(500), cache, sched);
    e.set_step_token_budget(budget);
    e
}

/// Two requests: an older one that keeps growing (so it wins preemption
/// fights) and a younger long-prompt one whose prefill chunks under the
/// budget — the preemption victim is mid-prompt.
fn run(
    gpu_blocks: usize,
    mode: PreemptionMode,
    budget: Option<usize>,
    long_prompt: usize,
    old_output: usize,
) -> (Vec<Vec<u32>>, u64) {
    let mut e = engine(gpu_blocks, 32, mode, budget);
    e.add_request("old", (1..9).collect(), SamplingParams::greedy(old_output))
        .unwrap();
    e.add_request_at(
        "young",
        (100..100 + long_prompt as u32).collect(),
        SamplingParams::greedy(6),
        1e-6,
    )
    .unwrap();
    let mut outs = e.run_to_completion().unwrap();
    outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    let tokens: Vec<Vec<u32>> = outs.iter().map(|o| o.outputs[0].tokens.clone()).collect();
    let bm = e.scheduler().block_manager();
    assert_eq!(
        bm.num_free_gpu_blocks(),
        bm.num_total_gpu_blocks(),
        "GPU blocks leaked after chunked run under preemption"
    );
    assert_eq!(
        bm.num_free_cpu_blocks(),
        bm.num_total_cpu_blocks(),
        "CPU blocks leaked after chunked run under preemption"
    );
    (tokens, e.scheduler().stats().num_preemptions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random budgets, prompt lengths, growth, and preemption modes: the
    /// pressured chunked run must produce exactly the tokens of an
    /// unpressured, unchunked run, and leak nothing.
    #[test]
    fn chunked_run_under_pressure_matches_unchunked_reference(
        budget in 2usize..=10,
        long_prompt in 8usize..=32,
        old_output in 8usize..=24,
        swap in proptest::bool::ANY,
    ) {
        let mode = if swap { PreemptionMode::Swap } else { PreemptionMode::Recompute };
        // Ample pool, no budget: the ground truth.
        let (want, _) = run(64, mode, None, long_prompt, old_output);
        // Tight pool (12 blocks = 48 slots; each request alone fits, both
        // together do not once the old one grows), chunked prefill.
        let (got, _) = run(12, mode, Some(budget), long_prompt, old_output);
        prop_assert_eq!(want, got);
    }
}

/// Deterministic witness that the property run actually covers the case it
/// claims: the younger request is preempted *before* its first token (so
/// mid-prompt, between chunks), then restarts and finishes with the right
/// output — under both preemption modes.
#[test]
fn mid_prompt_preemption_restarts_from_chunk_cursor() {
    for mode in [PreemptionMode::Recompute, PreemptionMode::Swap] {
        // Budget 2: the old request's decode token plus one prompt token
        // per step, so the 28-token prefill spans ~28 steps — far longer
        // than it takes the old request's growth to exhaust the pool.
        let mut e = engine(12, 32, mode, Some(2));
        e.add_request("old", (1..9).collect(), SamplingParams::greedy(30))
            .unwrap();
        e.add_request_at(
            "young",
            (100..128).collect(),
            SamplingParams::greedy(6),
            1e-6,
        )
        .unwrap();
        let outs = e.run_to_completion().unwrap();
        assert!(
            e.scheduler().stats().num_preemptions > 0,
            "{mode:?}: the scenario must preempt"
        );
        let young = outs.iter().find(|o| o.request_id == "young").unwrap();
        assert_eq!(young.outputs[0].tokens.len(), 6);

        // The victim's lifecycle shows Preempted strictly before FirstToken:
        // it was mid-prompt when evicted.
        let events = e.telemetry().events().events_for("young");
        let preempted_at = events
            .iter()
            .position(|ev| matches!(ev.kind, EventKind::Preempted { .. }))
            .unwrap_or_else(|| panic!("{mode:?}: young must be preempted"));
        let first_token_at = events
            .iter()
            .position(|ev| matches!(ev.kind, EventKind::FirstToken))
            .expect("young must eventually sample");
        assert!(
            preempted_at < first_token_at,
            "{mode:?}: preemption must land mid-prompt, before the first token"
        );

        let bm = e.scheduler().block_manager();
        assert_eq!(bm.num_free_gpu_blocks(), bm.num_total_gpu_blocks());
        assert_eq!(bm.num_free_cpu_blocks(), bm.num_total_cpu_blocks());
    }
}
