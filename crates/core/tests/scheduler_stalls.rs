//! Stall-resolution tests: requests whose working set can never fit —
//! swapped groups that cannot resume, waiting groups squeezed out by pinned
//! prefix blocks — must be aborted rather than spin the scheduler forever.

use vllm_core::config::{CacheConfig, PreemptionMode, SchedulerConfig};
use vllm_core::engine::LlmEngine;
use vllm_core::mock::MockExecutor;
use vllm_core::sampling::SamplingParams;

fn engine(
    block_size: usize,
    gpu_blocks: usize,
    cpu_blocks: usize,
    mode: PreemptionMode,
) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(block_size, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(256, 32, 256)
        .unwrap()
        .with_preemption_mode(mode);
    LlmEngine::new(MockExecutor::new(500), cache, sched)
}

/// A parallel request whose fan-out can never fit in GPU memory: it swaps
/// out and can never swap back in. It must be aborted, not spin.
#[test]
fn oversized_parallel_request_aborted() {
    // 24 blocks of 1 slot; 3 sequences each generating 14 tokens need ~42.
    let mut e = engine(1, 24, 24, PreemptionMode::Recompute);
    e.add_request("big", vec![1], SamplingParams::parallel(3, 14))
        .unwrap();
    let mut outs = Vec::new();
    let mut steps = 0;
    while e.has_unfinished() {
        outs.extend(e.step().unwrap());
        steps += 1;
        assert!(steps < 10_000, "scheduler must not spin");
    }
    assert_eq!(outs.len(), 1);
    assert!(outs[0].outputs.is_empty(), "unservable request is aborted");
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 24);
    assert_eq!(e.scheduler().block_manager().num_free_cpu_blocks(), 24);
}

/// The same oversized request must not poison later, servable requests.
#[test]
fn abort_unblocks_later_requests() {
    let mut e = engine(1, 24, 24, PreemptionMode::Recompute);
    e.add_request("big", vec![1], SamplingParams::parallel(3, 14))
        .unwrap();
    e.add_request_at("small", vec![2, 3], SamplingParams::greedy(4), 1e-6)
        .unwrap();
    let outs = e.run_to_completion().unwrap();
    let small = outs.iter().find(|o| o.request_id == "small").unwrap();
    assert_eq!(small.outputs[0].tokens.len(), 4);
    let big = outs.iter().find(|o| o.request_id == "big").unwrap();
    assert!(big.outputs.is_empty());
}

/// A waiting request squeezed out by pinned prefix anchors (pool otherwise
/// idle) is aborted instead of waiting forever.
#[test]
fn prefix_pinned_squeeze_aborts_waiting_request() {
    let mut e = engine(4, 8, 0, PreemptionMode::Recompute);
    // Pin 6 of 8 blocks as a prefix.
    e.register_prefix((0..24).collect()).unwrap();
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 2);
    // A 3-block prompt that does NOT match the prefix: it can never be
    // admitted while the anchors hold 6 blocks.
    e.add_request("squeezed", (100..112).collect(), SamplingParams::greedy(4))
        .unwrap();
    let mut outs = Vec::new();
    let mut steps = 0;
    while e.has_unfinished() {
        outs.extend(e.step().unwrap());
        steps += 1;
        assert!(steps < 1_000, "scheduler must not spin");
    }
    assert_eq!(outs.len(), 1);
    assert!(outs[0].outputs.is_empty());
}

/// Two oversized groups must both abort eventually (no mutual ping-pong).
#[test]
fn multiple_unservable_requests_all_abort() {
    let mut e = engine(1, 16, 16, PreemptionMode::Swap);
    for i in 0..2 {
        e.add_request_at(
            format!("big{i}"),
            vec![1, 2],
            SamplingParams::parallel(4, 12),
            i as f64 * 1e-6,
        )
        .unwrap();
    }
    let mut outs = Vec::new();
    let mut steps = 0;
    while e.has_unfinished() {
        outs.extend(e.step().unwrap());
        steps += 1;
        assert!(steps < 50_000, "scheduler must not spin");
    }
    assert_eq!(outs.len(), 2);
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 16);
}

/// Control: a request that fits exactly is NOT aborted by stall resolution.
#[test]
fn borderline_request_completes() {
    // 3 seqs × (1 prompt + 6 tokens) = 21 slots ≤ 24.
    let mut e = engine(1, 24, 24, PreemptionMode::Swap);
    e.add_request("fits", vec![1], SamplingParams::parallel(3, 6))
        .unwrap();
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs[0].outputs.len(), 3);
    assert!(outs[0].outputs.iter().all(|c| c.tokens.len() == 6));
}
