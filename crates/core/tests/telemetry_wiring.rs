//! End-to-end wiring tests for the telemetry subsystem: engine counters,
//! block-manager gauges, latency histograms, and the sequence-lifecycle
//! event log must all agree with the engine's own state after real runs,
//! including preemption under memory pressure.

use vllm_core::mock::MockExecutor;
use vllm_core::telemetry::{EventKind, MetricValue, MetricsSnapshot};
use vllm_core::{CacheConfig, LlmEngine, PreemptionMode, SamplingParams, SchedulerConfig};

const BS: usize = 4;

fn engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

fn swap_engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048)
        .unwrap()
        .with_preemption_mode(PreemptionMode::Swap);
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

#[test]
fn counters_and_gauges_match_engine_state() {
    let mut e = engine(64, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(6))
        .unwrap();
    e.add_request("b", (100..108).collect(), SamplingParams::greedy(4))
        .unwrap();
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs.len(), 2);

    let snap = e.metrics_snapshot();
    assert_eq!(snap.counter("vllm_engine_requests_arrived_total"), Some(2));
    assert_eq!(snap.counter("vllm_engine_requests_finished_total"), Some(2));
    assert_eq!(
        snap.counter("vllm_engine_steps_total"),
        Some(e.trace_stats().num_steps())
    );
    assert_eq!(
        snap.counter("vllm_engine_tokens_scheduled_total"),
        Some(e.trace_stats().tokens_scheduled())
    );

    // End-of-run pool gauges: everything freed, nothing fragmented.
    let bm = e.scheduler().block_manager();
    assert_eq!(
        snap.gauge("vllm_block_manager_gpu_blocks_free"),
        Some(bm.num_free_gpu_blocks() as f64)
    );
    assert_eq!(
        snap.gauge("vllm_block_manager_gpu_blocks_total"),
        Some(bm.num_total_gpu_blocks() as f64)
    );
    assert_eq!(snap.gauge("vllm_block_manager_gpu_blocks_used"), Some(0.0));
    assert_eq!(
        snap.gauge("vllm_block_manager_fragmentation_ratio"),
        Some(0.0)
    );

    // Latency histograms saw exactly the finished requests; TTFT never
    // exceeds end-to-end latency.
    let ttft = snap.histogram("vllm_request_ttft_seconds").unwrap();
    let e2e = snap.histogram("vllm_request_e2e_seconds").unwrap();
    assert_eq!(ttft.count, 2);
    assert_eq!(e2e.count, 2);
    assert!(ttft.max <= e2e.max);
    let norm = snap
        .histogram("vllm_request_normalized_latency_seconds")
        .unwrap();
    assert_eq!(norm.count, 2);
    assert!(norm.min > 0.0);

    // Every histogram in the snapshot is internally consistent.
    for entry in &snap.metrics {
        if let MetricValue::Histogram(h) = &entry.value {
            assert!(h.is_consistent(), "{} inconsistent", entry.name);
        }
    }
}

#[test]
fn event_log_captures_request_lifecycle() {
    let mut e = engine(64, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(5))
        .unwrap();
    e.run_to_completion().unwrap();

    let events = e.telemetry().events().events_for("a");
    let labels: Vec<&str> = events.iter().map(|ev| ev.kind.label()).collect();
    assert_eq!(labels.first(), Some(&"arrived"));
    assert_eq!(labels.get(1), Some(&"scheduled"));
    assert_eq!(labels.get(2), Some(&"first_token"));
    assert_eq!(labels.last(), Some(&"finished"));
    assert!(labels.iter().filter(|l| **l == "decoded").count() >= 1);

    // Timestamps are monotone non-decreasing along the lifecycle.
    for w in events.windows(2) {
        assert!(w[1].time >= w[0].time);
    }
    // Scheduled carries the prompt length; finished carries the reason.
    assert!(matches!(
        events[1].kind,
        EventKind::Scheduled { prompt_tokens: 8 }
    ));
    match &events[events.len() - 1].kind {
        EventKind::Finished { reason } => assert_eq!(reason, "length_capped"),
        other => panic!("expected Finished, got {other:?}"),
    }
}

#[test]
fn ttft_closes_at_first_sampled_token_not_first_chunk_dispatch() {
    use vllm_core::telemetry::{trace_seed, TraceContext};
    // A 16-token prompt under a 4-token step budget prefills in 4 chunks.
    // TTFT must close when the final chunk samples the first token, not
    // when the first chunk is dispatched.
    let mut e = engine(64, 0);
    e.set_step_token_budget(Some(4));
    e.add_request("a", (0..16).collect(), SamplingParams::greedy(4))
        .unwrap();

    // The first three chunks are KV-only: no token, no first_token event,
    // nothing observed into the TTFT histogram.
    for _ in 0..3 {
        e.step().unwrap();
        assert!(
            e.telemetry()
                .events()
                .events_for("a")
                .iter()
                .all(|ev| ev.kind.label() != "first_token"),
            "first_token must not fire on a KV-only chunk"
        );
        assert_eq!(
            e.metrics_snapshot()
                .histogram("vllm_request_ttft_seconds")
                .unwrap()
                .count,
            0
        );
    }
    let t_before_final = e.clock();

    // The final chunk samples the first token and closes TTFT.
    e.step().unwrap();
    let events = e.telemetry().events().events_for("a");
    let ft = events
        .iter()
        .find(|ev| ev.kind.label() == "first_token")
        .expect("final chunk must emit first_token");
    assert!(ft.time >= t_before_final);
    let snap = e.metrics_snapshot();
    let ttft = snap.histogram("vllm_request_ttft_seconds").unwrap();
    assert_eq!(ttft.count, 1);
    assert!(
        ttft.min >= t_before_final,
        "TTFT {} must span all four chunks (>= {}), not close at dispatch",
        ttft.min,
        t_before_final
    );
    assert_eq!(snap.counter("vllm_engine_prefill_chunks_total"), Some(4));

    e.run_to_completion().unwrap();
    // The prefill span covers [first schedule, first token], with one
    // child span per chunk.
    let trace_id = TraceContext::mint(trace_seed("a"), true).trace_id;
    let spans = e.telemetry().spans().spans_for_trace(trace_id);
    let prefill = spans
        .iter()
        .find(|s| s.name == "prefill")
        .expect("prefill span");
    assert!((prefill.end - ft.time).abs() < 1e-12);
    let chunks: Vec<_> = spans.iter().filter(|s| s.name == "prefill.chunk").collect();
    assert_eq!(chunks.len(), 4, "one child span per chunk");
    assert!(chunks.iter().all(|c| c.parent_span_id == prefill.span_id));
}

#[test]
fn swap_preemption_reaches_metrics_and_events() {
    let mut e = swap_engine(6, 16);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    e.run_to_completion().unwrap();
    assert!(e.scheduler().stats().num_swap_preemptions > 0);

    let snap = e.metrics_snapshot();
    assert_eq!(
        snap.counter("vllm_scheduler_swap_preemptions_total"),
        Some(e.scheduler().stats().num_swap_preemptions)
    );
    assert_eq!(
        snap.counter("vllm_scheduler_preemptions_total"),
        Some(e.scheduler().stats().num_preemptions)
    );
    assert!(snap.counter("vllm_block_manager_swapped_out_blocks_total") > Some(0));
    assert_eq!(
        snap.counter("vllm_block_manager_swapped_out_blocks_total"),
        snap.counter("vllm_block_manager_swapped_in_blocks_total")
    );

    // The victim's lifecycle shows the preemption and the swap back in.
    let victim_events: Vec<_> = ["a", "b"]
        .iter()
        .flat_map(|id| e.telemetry().events().events_for(id))
        .collect();
    let preempted = victim_events
        .iter()
        .find(|ev| matches!(&ev.kind, EventKind::Preempted { mode, blocks } if mode == "swap" && *blocks > 0))
        .expect("a preempted event with mode=swap");
    assert!(victim_events
        .iter()
        .any(|ev| matches!(&ev.kind, EventKind::SwappedIn { blocks } if *blocks > 0)));
    assert!(preempted.time > 0.0);
}

#[test]
fn recompute_preemption_reaches_metrics_and_events() {
    let mut e = engine(6, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    e.run_to_completion().unwrap();

    let snap = e.metrics_snapshot();
    assert_eq!(
        snap.counter("vllm_scheduler_recompute_preemptions_total"),
        Some(e.scheduler().stats().num_recompute_preemptions)
    );
    assert!(snap.counter("vllm_scheduler_recompute_preemptions_total") > Some(0));
    assert_eq!(
        snap.counter("vllm_block_manager_swapped_out_blocks_total"),
        Some(0)
    );
    let any_preempt =
        ["a", "b"].iter().any(|id| {
            e.telemetry().events().events_for(id).iter().any(
                |ev| matches!(&ev.kind, EventKind::Preempted { mode, .. } if mode == "recompute"),
            )
        });
    assert!(any_preempt, "recompute preemption must be logged");
}

#[test]
fn elastic_pool_gauges_and_migration_counter_reach_exposition() {
    let mut e = engine(64, 8);
    // A short request that finishes first (freeing the lowest block ids)
    // and a longer one whose blocks end up above the compaction bound.
    e.add_request("a", (0..16).collect(), SamplingParams::greedy(2))
        .unwrap();
    e.add_request("b", (100..116).collect(), SamplingParams::greedy(20))
        .unwrap();
    while e.step().unwrap().iter().all(|out| out.request_id != "a") {
        assert!(e.has_unfinished(), "request a must finish");
    }

    // Deflate mid-decode: b's live blocks sit above the shrunken bound, so
    // the resize compacts and journals migrations.
    e.deflate_pool(0.0).unwrap();
    e.run_to_completion().unwrap();

    let bm = e.scheduler().block_manager();
    assert!(bm.num_block_migrations() > 0, "deflate must migrate blocks");
    let snap = e.metrics_snapshot();
    assert_eq!(
        snap.gauge("vllm_block_pool_gpu_blocks"),
        Some(bm.num_total_gpu_blocks() as f64)
    );
    assert!(
        snap.gauge("vllm_block_pool_gpu_blocks").unwrap() < 64.0,
        "pool gauge must reflect the deflated size"
    );
    assert_eq!(
        snap.gauge("vllm_block_pool_cpu_blocks"),
        Some(bm.num_total_cpu_blocks() as f64)
    );
    assert_eq!(
        snap.gauge("vllm_block_pool_fragmentation_ratio"),
        Some(bm.pool_fragmentation_ratio())
    );
    assert_eq!(
        snap.counter("vllm_block_migrations_total"),
        Some(bm.num_block_migrations())
    );
    // Migrations ride StepPlan cache ops and are aggregated by the trace
    // stats like any other plan-carried work.
    assert_eq!(e.trace_stats().blocks_migrated(), bm.num_block_migrations());

    // The new instruments survive both exposition round-trips.
    let text = snap.to_prometheus_text();
    let json = snap.to_json();
    for name in [
        "vllm_block_pool_gpu_blocks",
        "vllm_block_pool_cpu_blocks",
        "vllm_block_pool_fragmentation_ratio",
        "vllm_block_migrations_total",
    ] {
        assert!(text.contains(name), "{name} absent from Prometheus text");
        assert!(json.contains(name), "{name} absent from JSON exposition");
    }

    // Restoring the pool grows the gauge back to the configured size.
    e.restore_pool().unwrap();
    e.add_request("c", (0..8).collect(), SamplingParams::greedy(2))
        .unwrap();
    e.run_to_completion().unwrap();
    let snap = e.metrics_snapshot();
    assert_eq!(snap.gauge("vllm_block_pool_gpu_blocks"), Some(64.0));
}

#[test]
fn counters_are_monotone_across_runs_and_snapshot_round_trips() {
    let mut e = engine(64, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(4))
        .unwrap();
    e.run_to_completion().unwrap();
    let first = e.metrics_snapshot();

    e.add_request("b", (50..60).collect(), SamplingParams::greedy(4))
        .unwrap();
    e.run_to_completion().unwrap();
    let second = e.metrics_snapshot();

    for entry in &first.metrics {
        if let MetricValue::Counter(a) = entry.value {
            let b = second.counter(&entry.name).unwrap();
            assert!(b >= a, "{} regressed: {a} -> {b}", entry.name);
        }
    }

    // The golden exposition checks: Prometheus text parses back to the same
    // snapshot, and so does the JSON document.
    let text = second.to_prometheus_text();
    let reparsed = MetricsSnapshot::from_prometheus_text(&text).unwrap();
    assert_eq!(reparsed, second);
    let json = second.to_json();
    let reparsed = MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(reparsed, second);
}

#[test]
fn model_kernel_histograms_are_registered_and_observed() {
    // The real CPU executor must register the per-kernel timing histograms
    // — labeled with the serving backend — and observe into them on every
    // step (matmul + paged-attention + logits-projection seconds).
    use vllm_model::{BackendKind, CpuModelExecutor, ModelConfig};
    let cache = CacheConfig::new(BS, 64, 0)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 16, 2048).unwrap();
    let mut mc = ModelConfig::tiny();
    mc.backend = BackendKind::Scalar;
    let exec = CpuModelExecutor::from_config(mc, &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    e.add_request("a", vec![1, 2, 3, 4], SamplingParams::greedy(4))
        .unwrap();
    e.add_request("b", vec![5, 6, 7], SamplingParams::greedy(3))
        .unwrap();
    e.run_to_completion().unwrap();

    let snap = e.metrics_snapshot();
    for name in [
        "vllm_model_kernel_matmul_seconds{backend=\"scalar\"}",
        "vllm_model_kernel_paged_attention_seconds{backend=\"scalar\"}",
        "vllm_model_kernel_logits_seconds{backend=\"scalar\"}",
    ] {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert!(h.count > 0, "{name} registered but never observed");
    }

    // The backend label must survive both exposition formats round-trip.
    let reparsed = MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()).unwrap();
    assert_eq!(reparsed, snap);
    assert!(reparsed
        .histogram("vllm_model_kernel_matmul_seconds{backend=\"scalar\"}")
        .is_some());
    let reparsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(reparsed, snap);
    assert!(reparsed
        .histogram("vllm_model_kernel_logits_seconds{backend=\"scalar\"}")
        .is_some());
}

#[test]
fn span_pipeline_round_trips_and_validates() {
    use vllm_core::telemetry::{
        spans_to_chrome_trace, spans_to_json, trace_seed, validate_span_tree, Json, TraceContext,
    };
    let mut e = engine(64, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(6))
        .unwrap();
    e.add_request("b", (0..5).collect(), SamplingParams::greedy(4))
        .unwrap();
    e.run_to_completion().unwrap();

    // The engine mints trace contexts deterministically from the request
    // id, so the test can re-derive the trace to query it.
    let trace_id = TraceContext::mint(trace_seed("a"), true).trace_id;
    let spans = e.telemetry().spans().spans_for_trace(trace_id);
    assert!(!spans.is_empty(), "request a must leave spans");
    validate_span_tree(&spans).expect("request a's spans form a well-nested tree");
    for name in ["admit", "queue", "prefill", "decode", "attempt"] {
        assert!(spans.iter().any(|s| s.name == name), "missing {name} span");
    }
    // Kernel spans carry the executor's backend label.
    let kernel = spans
        .iter()
        .find(|s| s.name.starts_with("kernel:"))
        .expect("at least one kernel span");
    assert_eq!(
        kernel
            .attrs
            .iter()
            .find(|(k, _)| k == "backend")
            .map(|(_, v)| v.as_str()),
        Some("mock")
    );

    // Both span exporters emit parseable JSON with the expected shape.
    let tracks = vec![("engine".to_string(), spans)];
    let doc = Json::parse(&spans_to_json(&tracks).to_string()).unwrap();
    let parsed_tracks = doc.get("tracks").and_then(Json::as_arr).unwrap();
    assert_eq!(parsed_tracks.len(), 1);
    assert!(parsed_tracks[0]
        .get("spans")
        .and_then(Json::as_arr)
        .is_some_and(|s| !s.is_empty()));
    let perfetto = Json::parse(&spans_to_chrome_trace(&tracks).to_string()).unwrap();
    let events = perfetto.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(events.len() > 1, "metadata event plus span events");
    assert_eq!(
        perfetto.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );

    // No span was lost to ring-buffer eviction at default capacity.
    assert_eq!(e.telemetry().spans().total_dropped(), 0);
}

#[test]
fn slo_metrics_round_trip_with_replica_labels() {
    use vllm_core::telemetry::{BucketSpec, SloMonitor, SloObjectives, Telemetry};
    // Labeled per-replica histograms, as the cluster's merged snapshot
    // produces them: the monitor must merge both replicas' samples.
    let t = Telemetry::new();
    for (replica, ttft) in [("0", 0.05), ("1", 0.8)] {
        t.registry()
            .histogram(
                &format!("vllm_request_ttft_seconds{{replica=\"{replica}\"}}"),
                "TTFT.",
                BucketSpec::seconds(),
            )
            .observe(ttft);
        t.registry()
            .histogram(
                &format!("vllm_request_e2e_seconds{{replica=\"{replica}\"}}"),
                "E2E.",
                BucketSpec::seconds(),
            )
            .observe(ttft * 2.0);
    }
    let slo = SloMonitor::register(
        &t,
        SloObjectives::default()
            .with_ttft_p99(0.1)
            .with_e2e_p99(10.0),
    );
    let status = slo.evaluate(&t.registry().snapshot());
    assert!(
        status.ttft_breached,
        "replica 1's 0.8s TTFT must breach the 0.1s objective"
    );
    assert!(!status.e2e_breached);

    // The SLO instruments and the replica-labeled histograms survive both
    // exposition round-trips.
    let snap = t.registry().snapshot();
    assert_eq!(snap.counter("vllm_slo_ttft_breaches_total"), Some(1));
    assert!(snap.counter("vllm_slo_e2e_breaches_total") == Some(0));
    let from_text = MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()).unwrap();
    assert_eq!(from_text, snap);
    let from_json = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(from_json, snap);
    assert!(from_text
        .histogram("vllm_request_ttft_seconds{replica=\"1\"}")
        .is_some());
    assert!(from_json.counter("vllm_slo_ttft_breaches_total") == Some(1));
    let burn = from_json
        .metrics
        .iter()
        .find(|m| m.name == "vllm_slo_ttft_burn_ratio")
        .expect("burn-ratio gauge exported");
    assert!(matches!(burn.value, MetricValue::Gauge(v) if v > 1.0));
}
