//! Step-trace and preemption-event tests for the staged engine pipeline:
//! every `step()` emits a [`vllm_core::StepTrace`]; preemption via swap vs.
//! recompute surfaces as the matching trace events; stage timings are
//! monotone; preempted requests still produce bit-identical outputs.

use vllm_core::mock::MockExecutor;
use vllm_core::{
    CacheConfig, LlmEngine, PreemptionKind, PreemptionMode, SamplingParams, SchedulerConfig,
};

const BS: usize = 4;

fn engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048).unwrap();
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

fn swap_engine(gpu_blocks: usize, cpu_blocks: usize) -> LlmEngine<MockExecutor> {
    let cache = CacheConfig::new(BS, gpu_blocks, cpu_blocks)
        .unwrap()
        .with_watermark(0.0)
        .unwrap();
    let sched = SchedulerConfig::new(2048, 64, 2048)
        .unwrap()
        .with_preemption_mode(PreemptionMode::Swap);
    LlmEngine::new(MockExecutor::new(1000), cache, sched)
}

#[test]
fn recompute_preemption_preserves_output() {
    // Tiny pool: two requests cannot decode concurrently for long.
    let mut e = engine(6, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs.len(), 2);
    for o in &outs {
        assert_eq!(o.outputs[0].tokens.len(), 12, "request {}", o.request_id);
    }
    // At least one preemption must have occurred.
    assert!(e.scheduler().stats().num_preemptions > 0);
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 6);

    // Determinism: rerun without contention and compare request a.
    let mut e2 = engine(64, 0);
    e2.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    let base = e2.run_to_completion().unwrap();
    let a_out = outs.iter().find(|o| o.request_id == "a").unwrap();
    assert_eq!(a_out.outputs[0].tokens, base[0].outputs[0].tokens);
}

#[test]
fn swap_preemption_round_trip() {
    let mut e = swap_engine(6, 16);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    let outs = e.run_to_completion().unwrap();
    assert_eq!(outs.len(), 2);
    assert!(e.scheduler().stats().num_swap_preemptions > 0);
    for o in &outs {
        assert_eq!(o.outputs[0].tokens.len(), 12);
    }
    assert_eq!(e.scheduler().block_manager().num_free_gpu_blocks(), 6);
    assert_eq!(e.scheduler().block_manager().num_free_cpu_blocks(), 16);
}

/// Swap preemption must surface in the step traces as a `Swap` event with
/// its swapped-block count, and the same step's cache ops must carry the
/// swap-out transfers.
#[test]
fn swap_preemption_emits_trace_events() {
    let mut e = swap_engine(6, 16);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    let mut saw_swap_event = false;
    while e.has_unfinished() {
        e.step().unwrap();
        let trace = e.last_trace().expect("every step emits a trace");
        for p in &trace.preemptions {
            assert_eq!(p.kind, PreemptionKind::Swap);
            assert!(p.blocks_swapped_out > 0);
            assert_eq!(trace.blocks_swapped_out, p.blocks_swapped_out);
            saw_swap_event = true;
        }
    }
    assert!(saw_swap_event, "contended run must preempt via swap");
    assert!(e.trace_stats().num_preemptions() > 0);
    assert!(e.trace_stats().blocks_swapped_in() > 0);
    assert_eq!(
        e.trace_stats().blocks_swapped_in(),
        e.trace_stats().blocks_swapped_out()
    );
}

/// Recompute preemption must surface as a `Recompute` event with no swap
/// traffic.
#[test]
fn recompute_preemption_emits_trace_events() {
    let mut e = engine(6, 0);
    e.add_request("a", (0..8).collect(), SamplingParams::greedy(12))
        .unwrap();
    e.add_request_at("b", (100..108).collect(), SamplingParams::greedy(12), 0.1)
        .unwrap();
    let mut saw_recompute_event = false;
    while e.has_unfinished() {
        e.step().unwrap();
        let trace = e.last_trace().expect("every step emits a trace");
        for p in &trace.preemptions {
            assert_eq!(p.kind, PreemptionKind::Recompute);
            assert_eq!(p.blocks_swapped_out, 0);
            saw_recompute_event = true;
        }
        assert_eq!(trace.blocks_swapped_in, 0);
        assert_eq!(trace.blocks_swapped_out, 0);
    }
    assert!(saw_recompute_event, "contended run must preempt");
    assert_eq!(e.trace_stats().blocks_swapped_out(), 0);
}

/// Stage timings are non-negative and their cumulative ends are monotone for
/// every step of a mixed workload.
#[test]
fn trace_stage_timings_are_monotone() {
    let mut e = engine(64, 0);
    e.add_request("g", (0..5).collect(), SamplingParams::greedy(6))
        .unwrap();
    e.add_request_at(
        "p",
        (10..18).collect(),
        SamplingParams::parallel(3, 4),
        0.01,
    )
    .unwrap();
    e.add_request_at("b", (30..36).collect(), SamplingParams::beam(2, 4), 0.02)
        .unwrap();
    let mut steps = 0u64;
    while e.has_unfinished() {
        e.step().unwrap();
        let trace = e.last_trace().unwrap();
        assert_eq!(trace.step_index, steps);
        let s = &trace.stages;
        for d in [s.schedule, s.prepare, s.execute, s.postprocess] {
            assert!(d >= 0.0);
        }
        let ends = s.stage_ends();
        for w in ends.windows(2) {
            assert!(w[1] >= w[0], "stage ends must be monotone: {ends:?}");
        }
        assert!((ends[3] - s.total()).abs() < 1e-12);
        steps += 1;
    }
    assert_eq!(e.trace_stats().num_steps(), steps);
    assert!(e.trace_stats().tokens_scheduled() > 0);
}

/// Every step emits a trace, even when the scheduler finds no work.
#[test]
fn empty_step_still_emits_trace() {
    let mut e = engine(8, 0);
    assert!(e.last_trace().is_none());
    e.step().unwrap();
    let trace = e.last_trace().expect("empty step emits a trace");
    assert_eq!(trace.step_index, 0);
    assert_eq!(trace.tokens_scheduled, 0);
    assert_eq!(trace.num_seqs, 0);
    assert_eq!(e.trace_stats().num_steps(), 1);
}
