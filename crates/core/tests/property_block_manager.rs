//! Property tests over the block manager: arbitrary interleavings of
//! allocate / append / fork / copy-on-write / swap / free must preserve the
//! pool invariants — no leak, no double free, reference counts equal to
//! table references, and swap-space usage bounded by the GPU pool.

use proptest::prelude::*;

use vllm_core::{
    AllocStatus, BlockSpaceManager, CacheConfig, SamplingParams, Sequence, SequenceGroup,
    SequenceStatus,
};

#[derive(Debug, Clone)]
enum Op {
    /// Admit a new single-sequence group with this prompt length.
    Allocate(usize),
    /// Append one token to the i-th live sequence (mod live count).
    Append(usize),
    /// Fork the i-th live sequence.
    Fork(usize),
    /// Free the i-th live sequence.
    Free(usize),
    /// Swap the i-th live group out and immediately back in.
    SwapRoundTrip(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..40).prop_map(Op::Allocate),
        (0usize..16).prop_map(Op::Append),
        (0usize..16).prop_map(Op::Fork),
        (0usize..16).prop_map(Op::Free),
        (0usize..16).prop_map(Op::SwapRoundTrip),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_preserve_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        block_size in 1usize..9,
    ) {
        let gpu_blocks = 64;
        let cfg = CacheConfig::new(block_size, gpu_blocks, gpu_blocks)
            .unwrap()
            .with_watermark(0.0)
            .unwrap();
        let mut m = BlockSpaceManager::new(&cfg);
        // Live sequences, each wrapped in its own group for swap ops.
        let mut groups: Vec<SequenceGroup> = Vec::new();
        let mut next_id: u64 = 0;

        for op in ops {
            match op {
                Op::Allocate(prompt_len) => {
                    let seq = Sequence::new(next_id, vec![1; prompt_len], block_size);
                    let group = SequenceGroup::new(
                        format!("g{next_id}"),
                        seq,
                        SamplingParams::greedy(8),
                        0.0,
                    );
                    next_id += 1;
                    if m.can_allocate(&group) == AllocStatus::Ok {
                        m.allocate(&group).unwrap();
                        let mut group = group;
                        group.set_status_all(SequenceStatus::Running);
                        groups.push(group);
                    }
                }
                Op::Append(i) => {
                    if groups.is_empty() {
                        continue;
                    }
                    let idx = i % groups.len();
                    let group = &mut groups[idx];
                    let sid = group.seqs()[0].seq_id;
                    // Only append while the sequence is GPU-resident.
                    if !m.has_table(sid) || m.gpu_block_ids(sid).is_err() {
                        continue;
                    }
                    if m.num_free_gpu_blocks() == 0 {
                        // The scheduler would preempt here; skip the append
                        // so the sequence never outgrows its table.
                        continue;
                    }
                    group.get_mut(sid).unwrap().data.append_token(7);
                    let seq_ref = group.get(sid).unwrap();
                    let _ = m.append_slot(seq_ref).unwrap();
                }
                Op::Fork(i) => {
                    if groups.is_empty() || m.num_free_gpu_blocks() == 0 {
                        continue;
                    }
                    let idx = i % groups.len();
                    let parent_id = groups[idx].seqs()[0].seq_id;
                    if !m.has_table(parent_id) {
                        continue;
                    }
                    let child = groups[idx].get(parent_id).unwrap().fork(next_id);
                    next_id += 1;
                    let child_id = child.seq_id;
                    m.fork(parent_id, child_id).unwrap();
                    let mut g = SequenceGroup::new(
                        format!("g{child_id}"),
                        child,
                        SamplingParams::greedy(8),
                        0.0,
                    );
                    g.set_status_all(SequenceStatus::Running);
                    groups.push(g);
                }
                Op::Free(i) => {
                    if groups.is_empty() {
                        continue;
                    }
                    let idx = i % groups.len();
                    let g = groups.swap_remove(idx);
                    for s in g.seqs() {
                        m.free(s.seq_id).unwrap();
                    }
                }
                Op::SwapRoundTrip(i) => {
                    if groups.is_empty() {
                        continue;
                    }
                    let idx = i % groups.len();
                    let group = &mut groups[idx];
                    if !m.can_swap_out(group) {
                        continue;
                    }
                    let out = m.swap_out(group).unwrap();
                    group.set_status_all(SequenceStatus::Swapped);
                    prop_assert!(
                        out.len() <= gpu_blocks,
                        "swap-space bound violated: {} blocks",
                        out.len()
                    );
                    if m.can_swap_in(group) {
                        m.swap_in(group).unwrap();
                        group.set_status_all(SequenceStatus::Running);
                    } else {
                        // Leave it swapped; free it to keep the walk simple.
                        let g = groups.swap_remove(idx);
                        for s in g.seqs() {
                            m.free(s.seq_id).unwrap();
                        }
                    }
                }
            }
            m.assert_consistent();
        }

        // Drain everything; the pools must return to full.
        for g in groups {
            for s in g.seqs() {
                m.free(s.seq_id).unwrap();
            }
        }
        prop_assert_eq!(m.num_free_gpu_blocks(), gpu_blocks);
        prop_assert_eq!(m.num_free_cpu_blocks(), gpu_blocks);
        m.assert_consistent();
    }

    #[test]
    fn sharing_savings_bounded(
        prompt_len in 1usize..64,
        n_forks in 1usize..8,
    ) {
        let cfg = CacheConfig::new(4, 256, 0).unwrap();
        let mut m = BlockSpaceManager::new(&cfg);
        let seq = Sequence::new(0, vec![1; prompt_len], 4);
        let group = SequenceGroup::new("g", seq, SamplingParams::greedy(8), 0.0);
        m.allocate(&group).unwrap();
        for child in 1..=n_forks as u64 {
            m.fork(0, child).unwrap();
        }
        let savings = m.sharing_savings();
        // n+1 sequences sharing identical tables: savings = n/(n+1).
        let expected = n_forks as f64 / (n_forks + 1) as f64;
        prop_assert!((savings - expected).abs() < 1e-9, "{savings} vs {expected}");
        for id in 0..=n_forks as u64 {
            m.free(id).unwrap();
        }
        prop_assert_eq!(m.num_free_gpu_blocks(), 256);
    }
}
