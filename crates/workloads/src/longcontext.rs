//! Long-context workloads for chunked prefill (scheduler-budgeted prefill
//! admission).
//!
//! The paper's traces cap total length at the OPT 2048-token context
//! (§6.1); chunked prefill targets the regime those traces never reach —
//! prompts tens of thousands of tokens long that would monopolize whole
//! iterations under all-or-nothing prefill admission. This module
//! synthesizes that regime: deterministic 32k-token prompts built from
//! repeated pseudo-document segments, and mixed long/short traces where a
//! trickle of long-context requests rides on interactive short traffic.
//! Content never affects memory management, so synthetic token ids preserve
//! the evaluation exactly as the Fig. 11 length distributions do.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist::exponential;
use crate::trace::{Trace, TraceRequest};

/// Canonical long-context prompt length exercised by the prefill bench:
/// 32k tokens, 16× the paper's model context.
pub const LONG_CONTEXT_PROMPT_LEN: usize = 32_768;

/// Tokens per pseudo-document segment of a synthetic long prompt.
const SEGMENT_LEN: usize = 512;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic synthetic long-context prompt of `len` tokens.
///
/// The prompt is structured as a run of [`SEGMENT_LEN`]-token
/// pseudo-documents, each drawn from its own hash stream, separated by a
/// per-prompt sentinel token — mimicking retrieval-style contexts (many
/// stitched documents) rather than uniform noise, while staying fully
/// reproducible from `(seed, len, vocab_size)`.
#[must_use]
pub fn long_context_prompt(seed: u64, len: usize, vocab_size: u32) -> Vec<u32> {
    assert!(vocab_size > 1, "vocabulary too small");
    let vocab = u64::from(vocab_size);
    let sentinel = (mix64(seed ^ 0x5e11_71e1) % vocab) as u32;
    (0..len as u64)
        .map(|i| {
            let segment = i / SEGMENT_LEN as u64;
            let offset = i % SEGMENT_LEN as u64;
            if offset == 0 && segment > 0 {
                sentinel
            } else {
                (mix64(seed.rotate_left(17) ^ segment.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ offset)
                    % vocab) as u32
            }
        })
        .collect()
}

/// A mixed long/short trace: short interactive requests at `rate` req/s
/// with a `long_fraction` of requests carrying `long_len`-token prompts.
///
/// Short prompts draw uniformly from the `short_len` range; all requests
/// script `output_len` generated tokens, so paired chunked and unchunked
/// runs produce identical token counts (equal-throughput TTFT comparisons
/// need matched work). Requests are tagged long by a deterministic hash of
/// their id, so the same ids are long at every rate.
///
/// # Panics
///
/// Panics if `rate` is not positive, `long_fraction` is outside `[0, 1]`,
/// or the short-length range is inverted or starts at zero.
#[must_use]
pub fn synthesize_mixed_trace(
    rate: f64,
    n: usize,
    long_fraction: f64,
    long_len: usize,
    short_len: std::ops::RangeInclusive<usize>,
    output_len: usize,
    seed: u64,
) -> Trace {
    let (short_min, short_max) = (*short_len.start(), *short_len.end());
    assert!(rate > 0.0, "rate must be positive");
    assert!(
        (0.0..=1.0).contains(&long_fraction),
        "long_fraction must be in [0, 1]"
    );
    assert!(
        0 < short_min && short_min <= short_max,
        "invalid short-prompt bounds"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let long_cut = (long_fraction * 1_000_000.0) as u64;
    let requests = (0..n as u64)
        .map(|id| {
            t += exponential(&mut rng, rate);
            let is_long =
                mix64(seed ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1_000_000 < long_cut;
            let input_len = if is_long {
                long_len
            } else {
                short_min
                    + (mix64(seed ^ (id << 20) ^ 0xbeef) % (short_max - short_min + 1) as u64)
                        as usize
            };
            TraceRequest {
                id,
                arrival: t,
                input_len,
                output_len,
            }
        })
        .collect();
    Trace { requests, rate }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_prompt_deterministic_and_in_vocab() {
        let a = long_context_prompt(7, LONG_CONTEXT_PROMPT_LEN, 50_000);
        assert_eq!(a.len(), LONG_CONTEXT_PROMPT_LEN);
        assert_eq!(a, long_context_prompt(7, LONG_CONTEXT_PROMPT_LEN, 50_000));
        assert!(a.iter().all(|&t| t < 50_000));
        assert_ne!(a, long_context_prompt(8, LONG_CONTEXT_PROMPT_LEN, 50_000));
    }

    #[test]
    fn long_prompt_has_segment_structure() {
        let p = long_context_prompt(3, 4 * SEGMENT_LEN, 50_000);
        // Segment boundaries (after the first) carry the same sentinel.
        assert_eq!(p[SEGMENT_LEN], p[2 * SEGMENT_LEN]);
        assert_eq!(p[SEGMENT_LEN], p[3 * SEGMENT_LEN]);
        // Segment bodies differ from each other.
        assert_ne!(
            &p[1..SEGMENT_LEN],
            &p[SEGMENT_LEN + 1..2 * SEGMENT_LEN],
            "segments must draw from distinct streams"
        );
    }

    #[test]
    fn mixed_trace_hits_long_fraction_and_is_deterministic() {
        let t = synthesize_mixed_trace(4.0, 2_000, 0.1, 4096, 16..=128, 32, 11);
        assert_eq!(t.requests.len(), 2_000);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let long = t.requests.iter().filter(|r| r.input_len == 4096).count();
        let frac = long as f64 / t.requests.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "long fraction {frac}");
        assert!(t
            .requests
            .iter()
            .all(|r| r.input_len == 4096 || (16..=128).contains(&r.input_len)));
        let again = synthesize_mixed_trace(4.0, 2_000, 0.1, 4096, 16..=128, 32, 11);
        assert_eq!(t.requests, again.requests);
    }

    #[test]
    fn long_request_ids_stable_across_rates() {
        // Tagging is by id hash, not draw order: the same ids are long at
        // every rate, so rate sweeps compare matched request mixes.
        let a = synthesize_mixed_trace(1.0, 500, 0.2, 2048, 16..=64, 8, 5);
        let b = synthesize_mixed_trace(10.0, 500, 0.2, 2048, 16..=64, 8, 5);
        let longs = |t: &Trace| {
            t.requests
                .iter()
                .filter(|r| r.input_len == 2048)
                .map(|r| r.id)
                .collect::<Vec<_>>()
        };
        assert_eq!(longs(&a), longs(&b));
    }
}
