//! Shared-prefix translation workload (§6.4, Fig. 10/16): every prompt is
//! `system prefix + task sentence`, WMT16 En→De style. The prefix holds the
//! instruction plus 1 or 5 translation examples.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dist::{exponential, TruncatedLogNormal};
use crate::trace::{Trace, TraceRequest};

/// Prefix length of the 1-shot prompt (Fig. 16a: "1 example with 80
/// tokens").
pub const ONE_SHOT_PREFIX_LEN: usize = 80;
/// Prefix length of the 5-shot prompt (Fig. 16b: "5 examples with 341
/// tokens").
pub const FIVE_SHOT_PREFIX_LEN: usize = 341;

/// Few-shot configuration of the translation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefixKind {
    /// Instruction + one example (80 tokens).
    OneShot,
    /// Instruction + five examples (341 tokens).
    FiveShot,
}

impl PrefixKind {
    /// Prefix length in tokens.
    #[must_use]
    pub fn len(self) -> usize {
        match self {
            Self::OneShot => ONE_SHOT_PREFIX_LEN,
            Self::FiveShot => FIVE_SHOT_PREFIX_LEN,
        }
    }

    /// Prefixes are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The shared prefix tokens (deterministic per kind; the 5-shot prefix
    /// extends the 1-shot prefix so nested prefix caching can apply).
    #[must_use]
    pub fn tokens(self, vocab_size: u32) -> Vec<u32> {
        (0..self.len() as u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0xdead_beef;
                z = (z ^ (z >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (z % u64::from(vocab_size)) as u32
            })
            .collect()
    }
}

/// A translation trace: requests share the prefix; the trace stores only the
/// task-input and output lengths (prefix length kept separately).
#[derive(Debug, Clone)]
pub struct TranslationTrace {
    /// Underlying per-request trace; `input_len` covers prefix + sentence.
    pub trace: Trace,
    /// The shared-prefix configuration.
    pub prefix: PrefixKind,
}

/// Synthesizes a WMT-style translation trace: sentences average ~25 tokens
/// in and out, plus the shared prefix on every prompt.
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn synthesize_translation_trace(
    prefix: PrefixKind,
    rate: f64,
    n: usize,
    seed: u64,
) -> TranslationTrace {
    assert!(rate > 0.0, "rate must be positive");
    let sent_in = TruncatedLogNormal::from_mean(25.0, 0.5, 4.0, 128.0);
    let sent_out = TruncatedLogNormal::from_mean(28.0, 0.5, 4.0, 128.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let requests = (0..n as u64)
        .map(|id| {
            t += exponential(&mut rng, rate);
            TraceRequest {
                id,
                arrival: t,
                input_len: prefix.len() + sent_in.sample_len(&mut rng),
                output_len: sent_out.sample_len(&mut rng),
            }
        })
        .collect();
    TranslationTrace {
        trace: Trace { requests, rate },
        prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_lengths_match_paper() {
        assert_eq!(PrefixKind::OneShot.len(), 80);
        assert_eq!(PrefixKind::FiveShot.len(), 341);
    }

    #[test]
    fn five_shot_extends_one_shot() {
        let one = PrefixKind::OneShot.tokens(1000);
        let five = PrefixKind::FiveShot.tokens(1000);
        assert!(five.starts_with(&one));
    }

    #[test]
    fn inputs_include_prefix() {
        let t = synthesize_translation_trace(PrefixKind::FiveShot, 5.0, 500, 1);
        for r in &t.trace.requests {
            assert!(r.input_len > FIVE_SHOT_PREFIX_LEN);
            assert!(r.input_len <= FIVE_SHOT_PREFIX_LEN + 128);
            assert!(r.output_len >= 4);
        }
    }

    #[test]
    fn deterministic() {
        let a = synthesize_translation_trace(PrefixKind::OneShot, 5.0, 100, 3);
        let b = synthesize_translation_trace(PrefixKind::OneShot, 5.0, 100, 3);
        assert_eq!(a.trace.requests, b.trace.requests);
    }
}
