//! Request traces: Poisson arrivals over a dataset's length distribution
//! (§6.1: "we generate request arrival times using Poisson distribution with
//! different request rates").

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::dist::exponential;

/// One serving request of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Stable request id within the trace.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Scripted output length in tokens (from the dataset).
    pub output_len: usize,
}

impl TraceRequest {
    /// Deterministic prompt tokens for this request (content is irrelevant
    /// to memory management; ids are spread over the vocabulary).
    #[must_use]
    pub fn prompt_tokens(&self, vocab_size: u32) -> Vec<u32> {
        (0..self.input_len as u64)
            .map(|i| {
                let mut z = self.id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (z % u64::from(vocab_size)) as u32
            })
            .collect()
    }
}

/// A synthesized workload trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Requests, sorted by arrival time.
    pub requests: Vec<TraceRequest>,
    /// Request rate the trace was generated at (req/s).
    pub rate: f64,
}

impl Trace {
    /// Synthesizes a trace of `n` requests with Poisson arrivals at `rate`
    /// requests/second, drawing lengths from `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    #[must_use]
    pub fn synthesize(dataset: &Dataset, rate: f64, n: usize, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let requests = (0..n as u64)
            .map(|id| {
                t += exponential(&mut rng, rate);
                let (input_len, output_len) = dataset.sample(&mut rng);
                TraceRequest {
                    id,
                    arrival: t,
                    input_len,
                    output_len,
                }
            })
            .collect();
        Self { requests, rate }
    }

    /// Synthesizes a trace with *bursty* arrivals: log-normal inter-arrival
    /// times with the given coefficient of variation (CV). `cv = 1`
    /// approximates the Poisson process the paper uses; larger values model
    /// flash crowds (an extension beyond §6.1).
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `cv` is not positive.
    #[must_use]
    pub fn synthesize_bursty(dataset: &Dataset, rate: f64, cv: f64, n: usize, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(cv > 0.0, "cv must be positive");
        let mean_gap = 1.0 / rate;
        // For LogNormal(mu, sigma): CV^2 = exp(sigma^2) - 1.
        let sigma = (cv * cv + 1.0).ln().sqrt();
        let mu = mean_gap.ln() - sigma * sigma / 2.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let requests = (0..n as u64)
            .map(|id| {
                t += crate::dist::lognormal(&mut rng, mu, sigma);
                let (input_len, output_len) = dataset.sample(&mut rng);
                TraceRequest {
                    id,
                    arrival: t,
                    input_len,
                    output_len,
                }
            })
            .collect();
        Self { requests, rate }
    }

    /// Synthesizes a trace covering `duration` seconds at `rate` req/s.
    #[must_use]
    pub fn synthesize_for_duration(dataset: &Dataset, rate: f64, duration: f64, seed: u64) -> Self {
        let n = (rate * duration).ceil() as usize;
        let mut trace = Self::synthesize(dataset, rate, n.max(1), seed);
        trace.requests.retain(|r| r.arrival <= duration);
        trace
    }

    /// Duration spanned by the arrivals.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival)
    }

    /// Total prompt + output tokens of the trace.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.requests
            .iter()
            .map(|r| r.input_len + r.output_len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_sorted_and_rate_approximate() {
        let t = Trace::synthesize(&Dataset::alpaca(), 10.0, 5_000, 1);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let rate = t.requests.len() as f64 / t.duration();
        assert!((rate - 10.0).abs() < 1.0, "achieved rate {rate}");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = Trace::synthesize(&Dataset::sharegpt(), 2.0, 100, 42);
        let b = Trace::synthesize(&Dataset::sharegpt(), 2.0, 100, 42);
        assert_eq!(a.requests, b.requests);
        let c = Trace::synthesize(&Dataset::sharegpt(), 2.0, 100, 43);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn bursty_trace_matches_rate_and_cv() {
        let t = Trace::synthesize_bursty(&Dataset::alpaca(), 5.0, 4.0, 20_000, 0);
        let gaps: Vec<f64> = t
            .requests
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 0.2).abs() < 0.02, "mean gap {mean}");
        assert!((cv - 4.0).abs() < 0.6, "cv {cv}");
    }

    #[test]
    fn duration_synthesis_respects_bounds() {
        let t = Trace::synthesize_for_duration(&Dataset::alpaca(), 5.0, 60.0, 9);
        assert!(t.duration() <= 60.0);
        assert!(!t.requests.is_empty());
    }

    #[test]
    fn prompt_tokens_deterministic_and_in_vocab() {
        let r = TraceRequest {
            id: 3,
            arrival: 0.0,
            input_len: 50,
            output_len: 10,
        };
        let a = r.prompt_tokens(1000);
        assert_eq!(a.len(), 50);
        assert_eq!(a, r.prompt_tokens(1000));
        assert!(a.iter().all(|&t| t < 1000));
        let other = TraceRequest { id: 4, ..r.clone() };
        assert_ne!(a, other.prompt_tokens(1000));
    }
}
